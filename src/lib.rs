//! Reproduction of "Online Data-Race Detection via Coherency Guarantees" (OSDI 1996).
//!
//! This facade crate re-exports the workspace members; see the README for
//! the architecture and `DESIGN.md` for the experiment index.
//!
//! * [`cvm_race`] — the race detector (the paper's contribution);
//! * [`cvm_dsm`] — the CVM LRC software DSM substrate;
//! * [`cvm_apps`] — the four evaluation applications;
//! * [`cvm_vclock`], [`cvm_page`], [`cvm_net`], [`cvm_instrument`] — the
//!   supporting substrates.

#![forbid(unsafe_code)]

pub use cvm_apps as apps;
pub use cvm_dsm as dsm;
pub use cvm_instrument as instrument;
pub use cvm_net as net;
pub use cvm_page as page;
pub use cvm_race as race;
pub use cvm_vclock as vclock;
