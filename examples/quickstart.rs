//! Quickstart: run a tiny program on the CVM DSM and catch its data race.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Two processes increment a shared counter — first without
//! synchronization (a write-write race the detector reports at the next
//! barrier), then correctly under a lock (no reports).

use cvm_dsm::{Cluster, DsmConfig};

fn main() {
    // --- Racy version -----------------------------------------------------
    let report = Cluster::run(
        DsmConfig::new(2),
        |alloc| alloc.alloc("Counter", 8).unwrap(),
        |h, &counter| {
            // Unsynchronized read-modify-write on shared memory: a bug.
            let v = h.read(counter);
            h.write(counter, v + 1);
            h.barrier(); // Detection runs here, at the barrier master.
        },
    )
    .expect("cluster run");
    println!("== racy increment ==");
    for race in report.races.reports() {
        println!("  {}", race.render(&report.segments));
    }
    assert!(!report.races.is_empty(), "the race must be caught");

    // --- Fixed version ----------------------------------------------------
    let report = Cluster::run(
        DsmConfig::new(2),
        |alloc| alloc.alloc("Counter", 8).unwrap(),
        |h, &counter| {
            h.lock(1);
            let v = h.read(counter);
            h.write(counter, v + 1);
            h.unlock(1);
            h.barrier();
        },
    )
    .expect("cluster run");
    println!("== locked increment ==");
    println!(
        "  races: {} (lock ordering makes the accesses happen-before-1 ordered)",
        report.races.len()
    );
    assert!(report.races.is_empty());

    println!(
        "\nDetector work: {} interval pairs compared, {} bitmaps fetched — all online, no trace logs.",
        report.det_stats.pair_comparisons, report.det_stats.bitmaps_requested
    );
}
