//! Synchronization record & replay (§6.1), demonstrated directly.
//!
//! ```text
//! cargo run --example replay_debugging
//! ```
//!
//! Lock-racing programs are nondeterministic: two runs grant locks in
//! different orders.  CVM can record the grant order of a run and enforce
//! it in a second run — the prerequisite for gathering program-counter
//! information about a race found in run 1 (the race must recur *exactly*).

use cvm_dsm::{Cluster, DsmConfig, ProcHandle};
use cvm_page::GAddr;

fn chaotic_body(h: &ProcHandle, shared: &GAddr) {
    // Contended lock with jittered hold times: grant order varies by run.
    for i in 0..30 {
        h.lock(5);
        let v = h.read(*shared);
        if (v + i + h.proc() as u64).is_multiple_of(3) {
            std::thread::yield_now();
        }
        h.write(*shared, v + 1);
        h.unlock(5);
    }
    h.barrier();
}

fn main() {
    // Run A: record.
    let mut cfg = DsmConfig::new(4);
    cfg.record_sync = true;
    let a = Cluster::run(cfg, |al| al.alloc("n", 8).unwrap(), chaotic_body).expect("cluster run");
    let seq_a: Vec<u16> = a.schedule.sequence(5).iter().map(|p| p.0).collect();
    println!(
        "run A grant order (lock 5, first 20): {:?}...",
        &seq_a[..20.min(seq_a.len())]
    );

    // Run B: free-running — usually different.
    let mut cfg = DsmConfig::new(4);
    cfg.record_sync = true;
    let b = Cluster::run(cfg, |al| al.alloc("n", 8).unwrap(), chaotic_body).expect("cluster run");
    let seq_b: Vec<u16> = b.schedule.sequence(5).iter().map(|p| p.0).collect();
    println!(
        "run B grant order (free):             {:?}...",
        &seq_b[..20.min(seq_b.len())]
    );

    // Run C: replay run A's order.
    let mut cfg = DsmConfig::new(4);
    cfg.record_sync = true;
    cfg.replay = Some(a.schedule.clone());
    let c = Cluster::run(cfg, |al| al.alloc("n", 8).unwrap(), chaotic_body).expect("cluster run");
    let seq_c: Vec<u16> = c.schedule.sequence(5).iter().map(|p| p.0).collect();
    println!(
        "run C grant order (replaying A):      {:?}...",
        &seq_c[..20.min(seq_c.len())]
    );

    assert_eq!(seq_a, seq_c, "replay must reproduce run A exactly");
    println!(
        "\nreplay reproduced all {} grants of run A exactly{}",
        seq_a.len(),
        if seq_a == seq_b {
            " (run B happened to match too)"
        } else {
            "; free-running run B diverged"
        }
    );
}
