//! Online detection vs the post-mortem baseline, side by side.
//!
//! ```text
//! cargo run --example postmortem_baseline
//! ```
//!
//! The paper's closest related work (Adve et al.) writes trace logs during
//! the run and analyzes them offline.  This example runs the same racy
//! program both ways: the online detector reports at the barrier with
//! garbage-collected state; the baseline accumulates a trace and needs an
//! offline pass — same races, very different storage story.

use cvm_repro::dsm::{Cluster, DsmConfig, ProcHandle};
use cvm_repro::page::GAddr;
use cvm_repro::race::trace::analyze_trace;

fn body(h: &ProcHandle, state: &(GAddr, GAddr)) {
    let (locked, racy) = *state;
    for round in 0..6u64 {
        h.lock(1);
        let v = h.read(locked);
        h.write(locked, v + 1);
        h.unlock(1);
        // The bug: an unsynchronized read-modify-write.
        let v = h.read(racy);
        h.write(racy, v + round);
        h.barrier();
    }
}

fn main() {
    let mut cfg = DsmConfig::new(3);
    cfg.trace = true; // Record the baseline's trace alongside.
    let geometry = cfg.geometry;
    let report = Cluster::run(
        cfg,
        |alloc| {
            (
                alloc.alloc("LockedSum", 8).unwrap(),
                alloc.alloc("RacySum", 8).unwrap(),
            )
        },
        body,
    )
    .expect("cluster run");

    println!("== online (the paper's system) ==");
    println!(
        "  races on {} address(es); retained bitmaps high-water {} (GC'd each barrier)",
        report.races.distinct_addrs().len(),
        report
            .nodes
            .iter()
            .map(|n| n.stats.bitmap_high_water)
            .max()
            .unwrap_or(0)
    );
    for addr in report.races.distinct_addrs() {
        println!("  racy: {}", report.segments.symbolize(addr));
    }

    println!("\n== post-mortem baseline (Adve et al.) ==");
    let (pm, stats) = analyze_trace(&report.traces, geometry);
    let addrs: std::collections::BTreeSet<_> = pm.iter().map(|r| r.addr).collect();
    println!(
        "  trace: {} events, ~{:.1} KB on disk; offline pass compared {} event pairs",
        stats.events,
        stats.trace_bytes as f64 / 1024.0,
        stats.pairs_compared
    );
    for addr in &addrs {
        println!("  racy: {}", report.segments.symbolize(*addr));
    }

    let online: std::collections::BTreeSet<_> = report.races.distinct_addrs().into_iter().collect();
    assert_eq!(online, addrs, "the two analyses must agree");
    println!("\nSame races — but the online system needed no trace log and no second pass.");
}
