//! The paper's Figure 5 scenario: races that only happen on weak memory.
//!
//! ```text
//! cargo run --example weak_memory_races
//! ```
//!
//! A producer updates a queue pointer and clears the empty flag, but the
//! *release is missing*.  A consumer polls the flag and pointer without an
//! acquire.  Under lazy release consistency the consumer can observe the
//! new flag while still holding the *stale* pointer — on sequentially
//! consistent hardware, a system that delivered `qEmpty == 0` must also
//! have delivered `qPtr == 100`.  The consumer then writes through the
//! stale pointer, colliding with a third process's writes: element races
//! that exist *only* on weak memory.  The detector reports all of them
//! (the paper's system reports all races; §6.4 discusses restricting to
//! "first" races).

use cvm_dsm::{Cluster, DsmConfig};

fn main() {
    let report = Cluster::run(
        DsmConfig::new(3),
        |alloc| {
            (
                alloc.alloc("qPtr", 8).unwrap(),
                alloc.alloc("qEmpty", 8).unwrap(),
                alloc.alloc("qData", 8 * 256).unwrap(),
            )
        },
        |h, &(q_ptr, q_empty, data)| {
            // Establish the old queue state (ptr = 37) everywhere.
            if h.proc() == 0 {
                h.write(q_ptr, 37);
                h.write(q_empty, 1);
            }
            h.barrier();
            if h.proc() != 0 {
                let _ = h.read(q_ptr); // Cache the stale values.
                let _ = h.read(q_empty);
            }
            h.barrier();

            match h.proc() {
                0 => {
                    // Producer — the release that should follow is missing.
                    h.write(q_ptr, 100);
                    h.write(q_empty, 0);
                }
                1 => {
                    // Consumer — the acquire that should precede is missing.
                    let _empty = h.read(q_empty);
                    let ptr = h.read(q_ptr);
                    println!("consumer read qPtr = {ptr} (stale: producer wrote 100)");
                    h.write(data.word(ptr), 0xBEEF);
                    h.write(data.word(ptr + 1), 0xBEEF);
                }
                _ => {
                    // The third process legitimately owns slots 37..=40.
                    for w in 37..=40u64 {
                        h.write(data.word(w), 0xCAFE);
                    }
                }
            }
            h.barrier();
        },
    )
    .expect("cluster run");

    println!("\nraces detected:");
    for race in report.races.reports() {
        let name = report.segments.symbolize(race.addr);
        let tag = if name.starts_with("qData") {
            "weak-memory only"
        } else {
            "visible on SC too"
        };
        println!("  [{tag}] {}", race.render(&report.segments));
    }
    assert!(report.races.len() >= 4);
}
