//! The paper's Water finding: a write-write race that was a real bug.
//!
//! ```text
//! cargo run --release --example water_bug
//! ```
//!
//! The buggy variant accumulates the global virial without its lock —
//! lost updates corrupt the sum.  The detector reports the write-write
//! race; the fixed variant is clean and its virial matches the sequential
//! reference exactly.

use cvm_apps::water::{self, WaterParams};
use cvm_dsm::DsmConfig;
use cvm_race::RaceKind;

fn main() {
    let params = WaterParams {
        nmols: 64,
        iters: 4,
        npartitions: 16,
        seed: 1996,
        fixed: false,
    };
    let reference = water::reference(&params);

    let (buggy_report, buggy) = water::run(DsmConfig::new(4), params);
    println!("== buggy Water (unlocked virial accumulation) ==");
    println!("  sequential virial: {:+.6}", reference.virial);
    println!("  parallel virial:   {:+.6}", buggy.virial);
    let ww: Vec<_> = buggy_report
        .races
        .reports()
        .iter()
        .filter(|r| r.kind == RaceKind::WriteWrite)
        .collect();
    println!("  write-write race reports: {}", ww.len());
    if let Some(r) = ww.first() {
        println!("  e.g. {}", r.render(&buggy_report.segments));
    }
    assert!(!ww.is_empty(), "the VIR bug must be detected");

    let (fixed_report, fixed) = water::run(DsmConfig::new(4), params.as_fixed());
    println!("\n== fixed Water (locked virial accumulation) ==");
    println!("  parallel virial:   {:+.6}", fixed.virial);
    println!("  races reported:    {}", fixed_report.races.len());
    assert!(fixed_report.races.is_empty());
    assert!((fixed.virial - reference.virial).abs() < 1e-6);
    println!("\nThe same shape as the paper: the Splash2 race was a genuine bug,");
    println!("reported upstream and fixed in the authors' current version.");
}
