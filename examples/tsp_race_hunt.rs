//! The paper's TSP finding, end to end: detect the benign bound race,
//! then identify the exact access sites via record/replay (§6.1).
//!
//! ```text
//! cargo run --release --example tsp_race_hunt
//! ```
//!
//! Run 1 reports races on `MinTourLen` (address + interval indexes — what
//! the paper's system prints).  Run 2 sets a watchpoint on the racy
//! address and epoch and gathers the access-site ids ("program counters")
//! that touched it — turning the address-level report into an
//! instruction-level one.
//!
//! A note on replay: §6.1 enforces the recorded synchronization order in
//! run 2 so the race recurs *exactly* — but, as the paper itself points
//! out, that presumes the program's synchronization sequence does not
//! depend on racy data.  TSP is the counterexample: the racy bound
//! controls pruning, pruning controls how many work-queue lock
//! acquisitions happen, so a replayed schedule can diverge.  TSP's racy
//! epoch is structurally determined (the single work epoch between its
//! barriers), so the watchpoint works without replay; the
//! `replay_debugging` example demonstrates exact replay on a program
//! whose synchronization sequence is race-independent.

use cvm_apps::tsp::{self, TspParams};
use cvm_dsm::{DsmConfig, Watch};

fn main() {
    let params = TspParams {
        ncities: 12,
        seed: 1996,
        cutoff: 3,
        stack_capacity: 4096,
        synchronized_bound: false,
    };

    // ---- Run 1: detect --------------------------------------------------
    let cfg = DsmConfig::new(4);
    let (first, result) = tsp::run(cfg, params);
    println!(
        "optimal tour length {} found with {} node expansions",
        result.best_len, result.expansions
    );
    println!(
        "races: {} reports on {} distinct addresses",
        first.races.len(),
        first.races.distinct_addrs().len()
    );
    let bound = first
        .segments
        .segments()
        .iter()
        .find(|s| s.name == "MinTourLen")
        .expect("bound segment")
        .base;
    let bound_races = first.races.at(bound);
    assert!(!bound_races.is_empty(), "the tour-bound race must appear");
    println!("first report: {}", bound_races[0].render(&first.segments));

    // ---- Run 2: watchpoint on the racy address and epoch ------------------
    let race = bound_races[0].clone();
    let mut cfg2 = DsmConfig::new(4);
    cfg2.detect.watch = Some(Watch {
        addr: race.addr,
        epoch: race.epoch,
    });
    let (second, result2) = tsp::run(cfg2, params);
    assert_eq!(result2.best_len, result.best_len);

    let mut sites: Vec<u32> = second.watch_hits.iter().map(|hit| hit.site).collect();
    sites.sort_unstable();
    sites.dedup();
    println!("\naccess sites touching MinTourLen in the racy epoch (run 2):");
    for site in sites {
        let what = match site {
            tsp::site::BOUND_RACY_READ => "the UNSYNCHRONIZED pruning read  <-- racy",
            tsp::site::BOUND_UPDATE_READ => "the re-check read inside the update lock",
            tsp::site::BOUND_UPDATE_WRITE => "the bound write inside the update lock",
            _ => "other",
        };
        println!("  site {site}: {what}");
    }
    assert!(second
        .watch_hits
        .iter()
        .any(|hit| hit.site == tsp::site::BOUND_RACY_READ));
    println!("\nThe race is benign by design: a stale bound only causes redundant work.");
}
