//! Processor-count scaling smoke: every application stays correct and
//! keeps its race signature from 1 to 6 processes (the figures only show
//! 1–8; correctness must not depend on the count).

use cvm_repro::apps::{fft, sor, tsp, water};
use cvm_repro::dsm::DsmConfig;

#[test]
fn sor_scales() {
    let params = sor::SorParams { n: 16, iters: 3 };
    let expect = sor::reference(params);
    for nprocs in 1..=6 {
        let (report, result) = sor::run(DsmConfig::new(nprocs), params);
        assert_eq!(result.grid, expect, "{nprocs} procs");
        assert!(report.races.is_empty(), "{nprocs} procs");
    }
}

#[test]
fn fft_scales() {
    let params = fft::FftParams {
        m: 8,
        inverse: false,
    };
    let input = fft::input_signal(params.n());
    let expect = fft::dft_reference(&input, false);
    for nprocs in 1..=6 {
        let (report, result) = fft::run_on(DsmConfig::new(nprocs), params, &input);
        for (i, (a, b)) in result.data.iter().zip(&expect).enumerate() {
            assert!(
                (a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8,
                "{nprocs} procs, element {i}"
            );
        }
        assert!(report.races.is_empty(), "{nprocs} procs");
    }
}

#[test]
fn tsp_scales() {
    let params = tsp::TspParams::small();
    let dist = tsp::distance_matrix(params.ncities, params.seed);
    let (opt, _) = tsp::solve_reference(&dist, params.ncities);
    for nprocs in 1..=6 {
        let (report, result) = tsp::run(DsmConfig::new(nprocs), params);
        assert_eq!(result.best_len, opt, "{nprocs} procs");
        if nprocs > 1 {
            // With one process there is nobody to race with.
            assert!(!report.races.is_empty(), "{nprocs} procs: race lost");
        } else {
            assert!(report.races.is_empty(), "single proc cannot race");
        }
    }
}

#[test]
fn water_scales() {
    let params = water::WaterParams::small();
    let expect = water::reference(&params);
    for nprocs in [1, 2, 3, 5] {
        let (report, result) = water::run(DsmConfig::new(nprocs), params);
        for (i, (a, b)) in result.positions.iter().zip(&expect.positions).enumerate() {
            assert!((a - b).abs() < 1e-9, "{nprocs} procs, position {i}");
        }
        if nprocs > 1 {
            assert!(!report.races.is_empty(), "{nprocs} procs: VIR race lost");
        } else {
            assert!(report.races.is_empty());
        }
    }
}
