//! The paper's §5 headline results: races found in TSP and Water, none in
//! FFT and SOR (scaled-down inputs; the full-scale runs live in the
//! `cvm-bench` harness binaries).

use cvm_repro::apps::{fft, sor, tsp, water};
use cvm_repro::dsm::DsmConfig;
use cvm_repro::page::Geometry;
use cvm_repro::race::RaceKind;

fn cfg(nprocs: usize) -> DsmConfig {
    let mut cfg = DsmConfig::new(nprocs);
    // DECstation-style pages, as in the paper's testbed.
    cfg.geometry = Geometry::with_page_bytes(8192);
    cfg
}

#[test]
fn fft_is_race_free_with_false_sharing_dismissed() {
    let params = fft::FftParams {
        m: 16,
        inverse: false,
    };
    let (report, _) = fft::run(cfg(4), params);
    assert!(
        report.races.is_empty(),
        "FFT misreported: {:?}",
        report.races.reports()
    );
    // Its transpose-phase false sharing was examined, not skipped.
    assert!(report.det_stats.pairs_overlapping > 0);
}

#[test]
fn sor_is_race_free_with_no_unsynchronized_sharing() {
    let (report, _) = sor::run(cfg(4), sor::SorParams::small());
    assert!(report.races.is_empty());
    assert_eq!(report.det_stats.intervals_used, 0);
    assert_eq!(report.det_stats.bitmaps_requested, 0);
}

#[test]
fn tsp_bound_race_is_found_and_is_read_write() {
    let (report, result) = tsp::run(cfg(4), tsp::TspParams::small());
    let bound = report
        .segments
        .segments()
        .iter()
        .find(|s| s.name == "MinTourLen")
        .unwrap()
        .base;
    let races = report.races.at(bound);
    assert!(!races.is_empty(), "the paper's TSP finding");
    assert!(races.iter().any(|r| r.kind == RaceKind::ReadWrite));
    // And the race is benign: the tour is still optimal.
    let dist = tsp::distance_matrix(9, tsp::TspParams::small().seed);
    let (opt, _) = tsp::solve_reference(&dist, 9);
    assert_eq!(result.best_len, opt);
}

#[test]
fn water_write_write_bug_is_found_and_fix_clears_it() {
    let (buggy, _) = water::run(cfg(4), water::WaterParams::small());
    let vir = buggy
        .segments
        .segments()
        .iter()
        .find(|s| s.name == "VIR")
        .unwrap()
        .base;
    assert!(
        buggy
            .races
            .at(vir)
            .iter()
            .any(|r| r.kind == RaceKind::WriteWrite),
        "the paper's Water finding: {:?}",
        buggy.races.distinct_addrs()
    );
    let (fixed, _) = water::run(cfg(4), water::WaterParams::small().as_fixed());
    assert!(fixed.races.is_empty());
}

#[test]
fn overall_shape_across_the_four_apps() {
    // Clean apps stay clean and racy apps stay racy at several scales.
    for nprocs in [2, 3] {
        let (f, _) = fft::run(
            cfg(nprocs),
            fft::FftParams {
                m: 8,
                inverse: false,
            },
        );
        let (s, _) = sor::run(cfg(nprocs), sor::SorParams::small());
        let (t, _) = tsp::run(cfg(nprocs), tsp::TspParams::small());
        let (w, _) = water::run(cfg(nprocs), water::WaterParams::small());
        assert!(f.races.is_empty() && s.races.is_empty(), "{nprocs} procs");
        assert!(!t.races.is_empty(), "{nprocs} procs: TSP race lost");
        assert!(!w.races.is_empty(), "{nprocs} procs: Water race lost");
    }
}
