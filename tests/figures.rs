//! The paper's illustrative figures, as executable tests.

use std::collections::HashMap;

use cvm_repro::dsm::{Cluster, DsmConfig};
use cvm_repro::page::{Geometry, PageBitmaps, PageId};
use cvm_repro::race::{
    filter_first_races, make_interval, BitmapStore, EpochDetector, PairClass, RaceKind,
};
use cvm_repro::vclock::{IntervalId, IntervalStamp, ProcId, VClock};

/// Figure 1: with `flag == 0`, only `w1-r2` is an *actual* race; `w1-r3`
/// is ordered by the unlock/lock pair.
///
/// Modelled at the detector level: P1's write happens in its locked
/// interval; P2's first (unsynchronized) read is concurrent with it, while
/// P2's locked read happens after acquiring the lock P1 released.
#[test]
fn figure1_actual_vs_ordered_accesses() {
    let g = Geometry { page_words: 64 };
    // P1: interval 1 = lock..unlock containing w1(x); page 0, word 0.
    let w1 = make_interval(0, 1, vec![1, 0], &[0], &[]);
    // P2: interval 1 contains the unsynchronized r2(x).
    let r2 = make_interval(1, 1, vec![0, 1], &[], &[0]);
    // P2: interval 2 begins at the Lock(L) acquire (merging P1's release),
    // contains r3(x).
    let r3 = make_interval(1, 2, vec![1, 2], &[], &[0]);

    let d = EpochDetector::new();
    assert_eq!(d.classify_pair(&w1, &r2), PairClass::ConcurrentOverlap);
    assert_eq!(d.classify_pair(&w1, &r3), PairClass::Ordered);

    let mut plan = d.plan(&[w1.clone(), r2.clone(), r3.clone()]);
    let mut store = BitmapStore::new();
    let mut wbm = PageBitmaps::new(64);
    wbm.write.set(0);
    let mut rbm = PageBitmaps::new(64);
    rbm.read.set(0);
    store.insert(w1.id(), PageId(0), wbm);
    store.insert(r2.id(), PageId(0), rbm.clone());
    store.insert(r3.id(), PageId(0), rbm);
    let reports = d.compare(&mut plan, &store, g, 0).unwrap();
    // Exactly one actual race: w1-r2.
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].kind, RaceKind::ReadWrite);
    assert_eq!(
        (reports[0].a, reports[0].b),
        (w1.id(), r2.id()),
        "the race must pair w1 with r2, not r3"
    );
}

/// Figure 2: interval orderings of the two-process lock handoff.
#[test]
fn figure2_interval_orderings() {
    let s1_1 = IntervalStamp::new(IntervalId::new(ProcId(0), 1), VClock::from(vec![1, 0]));
    let s1_2 = IntervalStamp::new(IntervalId::new(ProcId(0), 2), VClock::from(vec![2, 0]));
    let s2_1 = IntervalStamp::new(IntervalId::new(ProcId(1), 1), VClock::from(vec![0, 1]));
    let s2_2 = IntervalStamp::new(IntervalId::new(ProcId(1), 2), VClock::from(vec![1, 2]));
    // The release in s1^1 pairs with the acquire beginning s2^2.
    assert!(s1_1.happens_before(&s2_2));
    // "if the second write of P1 were to x, it would constitute a data
    // race ... because intervals s1^2 and s2^2 are concurrent".
    assert!(s1_2.concurrent_with(&s2_2));
    assert!(s1_1.concurrent_with(&s2_1));
    assert!(s2_1.happens_before(&s2_2));
}

/// Figure 2 continued, end to end: the second write of P1 to x races with
/// the locked access of P2.
#[test]
fn figure2_end_to_end() {
    let report = Cluster::run(
        DsmConfig::new(2),
        |alloc| {
            (
                alloc.alloc("x", 8).unwrap(),
                alloc.alloc("turn", 8).unwrap(),
            )
        },
        |h, &(x, turn)| {
            if h.proc() == 0 {
                // sigma_1^1: the locked write, marking the turn.
                h.lock(9);
                h.write(x, 1);
                h.write(turn, 1);
                h.unlock(9);
                // sigma_1^2: the racy second write (after the release).
                h.write(x, 2);
            } else {
                // Poll under the lock until P1's critical section is
                // visible (deterministic handoff order, as in the figure).
                loop {
                    h.lock(9);
                    let t = h.read(turn);
                    if t == 1 {
                        h.write(x, 3); // sigma_2^2.
                        h.unlock(9);
                        break;
                    }
                    h.unlock(9);
                    std::thread::yield_now();
                }
            }
            h.barrier();
        },
    )
    .expect("cluster run");
    assert!(
        report.races.has_kind(RaceKind::WriteWrite),
        "s1^2 vs s2^2 write-write race expected: {:?}",
        report.races.reports()
    );
}

/// Figure 5: the weak-memory-only element races (see also
/// `examples/weak_memory_races.rs` and the `fig5` harness binary).
#[test]
fn figure5_weak_memory_races() {
    let report = Cluster::run(
        DsmConfig::new(3),
        |alloc| {
            (
                alloc.alloc("qPtr", 8).unwrap(),
                alloc.alloc("qEmpty", 8).unwrap(),
                alloc.alloc("qData", 8 * 128).unwrap(),
            )
        },
        |h, &(q_ptr, q_empty, data)| {
            if h.proc() == 0 {
                h.write(q_ptr, 37);
                h.write(q_empty, 1);
            }
            h.barrier();
            if h.proc() != 0 {
                let _ = h.read(q_ptr);
                let _ = h.read(q_empty);
            }
            h.barrier();
            match h.proc() {
                0 => {
                    h.write(q_ptr, 100);
                    h.write(q_empty, 0);
                }
                1 => {
                    let _ = h.read(q_empty);
                    let ptr = h.read(q_ptr);
                    assert_eq!(ptr, 37, "stale pointer expected under LRC");
                    h.write(data.word(ptr), 1);
                    h.write(data.word(ptr + 1), 1);
                }
                _ => {
                    for w in 37..=40u64 {
                        h.write(data.word(w), 2);
                    }
                }
            }
            h.barrier();
        },
    )
    .expect("cluster run");
    let data_races: Vec<_> = report
        .races
        .reports()
        .iter()
        .filter(|r| report.segments.symbolize(r.addr).starts_with("qData"))
        .collect();
    assert_eq!(
        data_races.len(),
        2,
        "w2(37)-w3(37) and w2(38)-w3(38): {:?}",
        report.races.reports()
    );
    assert!(data_races.iter().all(|r| r.kind == RaceKind::WriteWrite));
    // The pointer/flag races are visible too (the system reports all
    // races, §6.4).
    assert!(report.races.len() >= 4);
}

/// §6.4: first-race filtering confines reports to the earliest epoch.
#[test]
fn first_race_rule_all_first_races_in_one_epoch() {
    let stamps: HashMap<IntervalId, IntervalStamp> = HashMap::new();
    let mk = |addr: u64, epoch: u64| cvm_repro::race::RaceReport {
        addr: cvm_repro::page::GAddr(addr),
        kind: RaceKind::WriteWrite,
        a: IntervalId::new(ProcId(0), 1),
        b: IntervalId::new(ProcId(1), 1),
        epoch,
    };
    let filtered = filter_first_races(&[mk(8, 4), mk(16, 2), mk(24, 2), mk(32, 9)], &stamps);
    assert_eq!(filtered.len(), 2);
    assert!(filtered.iter().all(|r| r.epoch == 2));
}
