//! Cross-crate invariants exercised on whole cluster runs.

use cvm_repro::dsm::{Cluster, DetectConfig, DsmConfig, Protocol};
use cvm_repro::net::TrafficClass;
use cvm_repro::race::OverlapStrategy;

/// Every overlap strategy yields identical race sets on the same
/// deterministic program.
#[test]
fn overlap_strategies_agree_end_to_end() {
    let run = |overlap: OverlapStrategy| {
        let mut cfg = DsmConfig::new(3);
        cfg.detect.overlap = overlap;
        Cluster::run(
            cfg,
            |alloc| alloc.alloc("arr", 8 * 64).unwrap(),
            |h, &arr| {
                // Proc p writes words p, p+8, ... and reads word (p+1)*2:
                // a deterministic mix of races and false sharing.
                let me = h.proc() as u64;
                for k in 0..8u64 {
                    h.write(arr.word(me + k * 8), me);
                }
                let _ = h.read(arr.word((me + 1) * 2));
                h.barrier();
            },
        )
        .expect("cluster run")
    };
    let reference = run(OverlapStrategy::Quadratic);
    let mut ref_addrs = reference.races.distinct_addrs();
    ref_addrs.sort();
    for strategy in [
        OverlapStrategy::Auto,
        OverlapStrategy::SortedMerge,
        OverlapStrategy::PageBitmap,
    ] {
        let got = run(strategy);
        let mut addrs = got.races.distinct_addrs();
        addrs.sort();
        assert_eq!(addrs, ref_addrs, "{strategy:?} diverged");
    }
}

/// The same racy program under both protocols reports the same racy
/// addresses.
#[test]
fn protocols_agree_on_races() {
    let run = |protocol: Protocol| {
        let mut cfg = DsmConfig::new(2);
        cfg.protocol = protocol;
        Cluster::run(
            cfg,
            |alloc| alloc.alloc("xy", 16).unwrap(),
            |h, &xy| {
                if h.proc() == 0 {
                    h.write(xy, 1);
                    let _ = h.read(xy.word(1));
                } else {
                    h.write(xy.word(1), 2);
                    let _ = h.read(xy);
                }
                h.barrier();
            },
        )
        .expect("cluster run")
    };
    let sw = run(Protocol::SingleWriter);
    let mw = run(Protocol::MultiWriter);
    assert_eq!(sw.races.distinct_addrs(), mw.races.distinct_addrs());
    assert_eq!(sw.races.distinct_addrs().len(), 2);
}

/// The detector's bandwidth cost is visible and bounded: read notices and
/// bitmaps exist only with detection on, and page data dominates both.
#[test]
fn traffic_class_accounting_is_sane() {
    let run = |detect: DetectConfig| {
        let mut cfg = DsmConfig::new(4);
        cfg.detect = detect;
        Cluster::run(
            cfg,
            |alloc| alloc.alloc_page_aligned("grid", 4096 * 4).unwrap(),
            |h, &grid| {
                let me = h.proc() as u64;
                for k in 0..64 {
                    h.write(grid.offset(me * 4096).word(k), k);
                }
                h.barrier();
                let next = (me + 1) % h.nprocs() as u64;
                for k in 0..64 {
                    let _ = h.read(grid.offset(next * 4096).word(k));
                }
                h.barrier();
            },
        )
        .expect("cluster run")
    };
    let on = run(DetectConfig::on());
    assert!(on.net.class_bytes(TrafficClass::ReadNotice) > 0);
    assert!(on.net.class_bytes(TrafficClass::Data) > 0);
    let off = run(DetectConfig::off());
    assert_eq!(off.net.class_bytes(TrafficClass::ReadNotice), 0);
    assert_eq!(off.net.class_bytes(TrafficClass::Bitmap), 0);
    // Both runs move the same page data.
    assert_eq!(
        on.net.class_bytes(TrafficClass::Data),
        off.net.class_bytes(TrafficClass::Data)
    );
}

/// Virtual-time *accounting* is deterministic for deterministic
/// (barrier-only) programs: per-category cost totals, traffic bytes, and
/// detector statistics reproduce exactly.  The end-to-end critical path
/// picks up a few percent of jitter from service-thread interleaving
/// (see `cvm_dsm::simtime`), so it is only checked to a tolerance.
#[test]
fn virtual_time_is_reproducible() {
    let run = || {
        Cluster::run(
            DsmConfig::new(4),
            |alloc| alloc.alloc_page_aligned("g", 4096 * 4).unwrap(),
            |h, &g| {
                let me = h.proc() as u64;
                for i in 0..128 {
                    h.write(g.offset(me * 4096).word(i % 512), i);
                }
                h.barrier();
                let next = (me + 1) % 4;
                for i in 0..128 {
                    let _ = h.read(g.offset(next * 4096).word(i % 512));
                }
                h.barrier();
            },
        )
        .expect("cluster run")
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.cats_total(),
        b.cats_total(),
        "attributed costs must match"
    );
    assert_eq!(a.net.total_bytes(), b.net.total_bytes());
    assert_eq!(a.det_stats, b.det_stats);
    let (ta, tb) = (a.virtual_cycles() as f64, b.virtual_cycles() as f64);
    // The tolerance must absorb worst-case scheduling skew: on an
    // oversubscribed single-core host (e.g. CI running test binaries in
    // parallel) the service threads of the two runs interleave very
    // differently, and divergence beyond 20% has been observed while the
    // attributed totals above still match exactly.
    assert!(
        (ta - tb).abs() / ta.max(tb) < 0.35,
        "critical path diverged beyond jitter: {ta} vs {tb}"
    );
}

/// Memory accounting: the segment map records what setup allocated, and
/// race reports symbolize through it.
#[test]
fn segment_map_reflects_setup() {
    let report = Cluster::run(
        DsmConfig::new(2),
        |alloc| {
            let a = alloc.alloc("alpha", 100).unwrap();
            let _b = alloc.alloc("beta", 256).unwrap();
            a
        },
        |h, &a| {
            h.write(a, h.proc() as u64);
            h.barrier();
        },
    )
    .expect("cluster run");
    let names: Vec<&str> = report
        .segments
        .segments()
        .iter()
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(names, vec!["alpha", "beta"]);
    assert!(report.segments.used_bytes() >= 360);
    assert_eq!(report.races.len(), 1);
    assert!(report.races.reports()[0]
        .render(&report.segments)
        .contains("alpha"));
}

/// Consolidation (§6.3) and barrier detection find the same race in a
/// lock-only program.
#[test]
fn consolidation_equals_barrier_detection() {
    let run = |consolidate: bool| {
        Cluster::run(
            DsmConfig::new(2),
            |alloc| alloc.alloc("x", 8).unwrap(),
            |h, &x| {
                h.write(x, h.proc() as u64 + 1);
                if consolidate {
                    h.consolidate();
                } else {
                    h.barrier();
                }
            },
        )
        .expect("cluster run")
    };
    let via_barrier = run(false);
    let via_consolidation = run(true);
    assert_eq!(
        via_barrier.races.distinct_addrs(),
        via_consolidation.races.distinct_addrs()
    );
}
