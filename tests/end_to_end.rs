//! Cross-crate invariants exercised on whole cluster runs.

use std::time::Duration;

use cvm_repro::dsm::{
    Cluster, DetectConfig, DsmConfig, FaultPlan, Protocol, RecoveryPolicy, RunReport,
};
use cvm_repro::net::TrafficClass;
use cvm_repro::race::OverlapStrategy;
use cvm_repro::vclock::ProcId;

/// Every overlap strategy yields identical race sets on the same
/// deterministic program.
#[test]
fn overlap_strategies_agree_end_to_end() {
    let run = |overlap: OverlapStrategy| {
        let mut cfg = DsmConfig::new(3);
        cfg.detect.overlap = overlap;
        Cluster::run(
            cfg,
            |alloc| alloc.alloc("arr", 8 * 64).unwrap(),
            |h, &arr| {
                // Proc p writes words p, p+8, ... and reads word (p+1)*2:
                // a deterministic mix of races and false sharing.
                let me = h.proc() as u64;
                for k in 0..8u64 {
                    h.write(arr.word(me + k * 8), me);
                }
                let _ = h.read(arr.word((me + 1) * 2));
                h.barrier();
            },
        )
        .expect("cluster run")
    };
    let reference = run(OverlapStrategy::Quadratic);
    let mut ref_addrs = reference.races.distinct_addrs();
    ref_addrs.sort();
    for strategy in [
        OverlapStrategy::Auto,
        OverlapStrategy::SortedMerge,
        OverlapStrategy::PageBitmap,
    ] {
        let got = run(strategy);
        let mut addrs = got.races.distinct_addrs();
        addrs.sort();
        assert_eq!(addrs, ref_addrs, "{strategy:?} diverged");
    }
}

/// The same racy program under both protocols reports the same racy
/// addresses.
#[test]
fn protocols_agree_on_races() {
    let run = |protocol: Protocol| {
        let mut cfg = DsmConfig::new(2);
        cfg.protocol = protocol;
        Cluster::run(
            cfg,
            |alloc| alloc.alloc("xy", 16).unwrap(),
            |h, &xy| {
                if h.proc() == 0 {
                    h.write(xy, 1);
                    let _ = h.read(xy.word(1));
                } else {
                    h.write(xy.word(1), 2);
                    let _ = h.read(xy);
                }
                h.barrier();
            },
        )
        .expect("cluster run")
    };
    let sw = run(Protocol::SingleWriter);
    let mw = run(Protocol::MultiWriter);
    assert_eq!(sw.races.distinct_addrs(), mw.races.distinct_addrs());
    assert_eq!(sw.races.distinct_addrs().len(), 2);
}

/// The detector's bandwidth cost is visible and bounded: read notices and
/// bitmaps exist only with detection on, and page data dominates both.
#[test]
fn traffic_class_accounting_is_sane() {
    let run = |detect: DetectConfig| {
        let mut cfg = DsmConfig::new(4);
        cfg.detect = detect;
        Cluster::run(
            cfg,
            |alloc| alloc.alloc_page_aligned("grid", 4096 * 4).unwrap(),
            |h, &grid| {
                let me = h.proc() as u64;
                for k in 0..64 {
                    h.write(grid.offset(me * 4096).word(k), k);
                }
                h.barrier();
                let next = (me + 1) % h.nprocs() as u64;
                for k in 0..64 {
                    let _ = h.read(grid.offset(next * 4096).word(k));
                }
                h.barrier();
            },
        )
        .expect("cluster run")
    };
    let on = run(DetectConfig::on());
    assert!(on.net.class_bytes(TrafficClass::ReadNotice) > 0);
    assert!(on.net.class_bytes(TrafficClass::Data) > 0);
    let off = run(DetectConfig::off());
    assert_eq!(off.net.class_bytes(TrafficClass::ReadNotice), 0);
    assert_eq!(off.net.class_bytes(TrafficClass::Bitmap), 0);
    // Both runs move the same page data.
    assert_eq!(
        on.net.class_bytes(TrafficClass::Data),
        off.net.class_bytes(TrafficClass::Data)
    );
}

/// Virtual-time *accounting* is deterministic for deterministic
/// (barrier-only) programs: per-category cost totals, traffic bytes, and
/// detector statistics reproduce exactly.  The end-to-end critical path
/// picks up a few percent of jitter from service-thread interleaving
/// (see `cvm_dsm::simtime`), so it is only checked to a tolerance.
#[test]
fn virtual_time_is_reproducible() {
    let run = || {
        Cluster::run(
            DsmConfig::new(4),
            |alloc| alloc.alloc_page_aligned("g", 4096 * 4).unwrap(),
            |h, &g| {
                let me = h.proc() as u64;
                for i in 0..128 {
                    h.write(g.offset(me * 4096).word(i % 512), i);
                }
                h.barrier();
                let next = (me + 1) % 4;
                for i in 0..128 {
                    let _ = h.read(g.offset(next * 4096).word(i % 512));
                }
                h.barrier();
            },
        )
        .expect("cluster run")
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.cats_total(),
        b.cats_total(),
        "attributed costs must match"
    );
    assert_eq!(a.net.total_bytes(), b.net.total_bytes());
    assert_eq!(a.det_stats, b.det_stats);
    let (ta, tb) = (a.virtual_cycles() as f64, b.virtual_cycles() as f64);
    // The tolerance must absorb worst-case scheduling skew: on an
    // oversubscribed single-core host (e.g. CI running test binaries in
    // parallel) the service threads of the two runs interleave very
    // differently, and divergence beyond 20% has been observed while the
    // attributed totals above still match exactly.
    assert!(
        (ta - tb).abs() / ta.max(tb) < 0.35,
        "critical path diverged beyond jitter: {ta} vs {tb}"
    );
}

/// Memory accounting: the segment map records what setup allocated, and
/// race reports symbolize through it.
#[test]
fn segment_map_reflects_setup() {
    let report = Cluster::run(
        DsmConfig::new(2),
        |alloc| {
            let a = alloc.alloc("alpha", 100).unwrap();
            let _b = alloc.alloc("beta", 256).unwrap();
            a
        },
        |h, &a| {
            h.write(a, h.proc() as u64);
            h.barrier();
        },
    )
    .expect("cluster run");
    let names: Vec<&str> = report
        .segments
        .segments()
        .iter()
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(names, vec!["alpha", "beta"]);
    assert!(report.segments.used_bytes() >= 360);
    assert_eq!(report.races.len(), 1);
    assert!(report.races.reports()[0]
        .render(&report.segments)
        .contains("alpha"));
}

/// Consolidation (§6.3) and barrier detection find the same race in a
/// lock-only program.
#[test]
fn consolidation_equals_barrier_detection() {
    let run = |consolidate: bool| {
        Cluster::run(
            DsmConfig::new(2),
            |alloc| alloc.alloc("x", 8).unwrap(),
            |h, &x| {
                h.write(x, h.proc() as u64 + 1);
                if consolidate {
                    h.consolidate();
                } else {
                    h.barrier();
                }
            },
        )
        .expect("cluster run")
    };
    let via_barrier = run(false);
    let via_consolidation = run(true);
    assert_eq!(
        via_barrier.races.distinct_addrs(),
        via_consolidation.races.distinct_addrs()
    );
}

// ---------------------------------------------------------------------------
// Pipelined-vs-synchronous detection matrix.
//
// Pipelined mode defers each epoch's detection off the barrier critical
// path and delivers its reports one release late (flushed at run end), so
// the contract is: byte-identical race-report *content and ordering* to
// the synchronous run — across protocols, recovery policies, and scripted
// faults.  Virtual time is explicitly NOT compared: overlapping detection
// with the next epoch changes when costs are charged relative to message
// receipt, which is the entire point of the mode.
// ---------------------------------------------------------------------------

/// Sorted, rendered race lines: the canonical content+ordering fingerprint.
fn race_fingerprint(report: &RunReport) -> Vec<String> {
    let mut rendered: Vec<String> = report
        .races
        .reports()
        .iter()
        .map(|r| format!("{:?}@{} {}", r.kind, r.epoch, r.render(&report.segments)))
        .collect();
    rendered.sort();
    rendered
}

/// A deterministic barrier-only program racing in every one of 4 epochs:
/// each process owns a page-sized stripe but also writes a shared clash
/// word per epoch (true races) and straddles a neighbour's words (false
/// sharing the bitmap comparison must discard).
fn racy_epochs_body(h: &cvm_repro::dsm::ProcHandle, arr: &cvm_repro::page::GAddr) {
    let me = h.proc() as u64;
    let n = h.nprocs() as u64;
    // Recovery-aware: a restored process skips checkpointed phases, so the
    // killed runs report the same epochs as the clean ones.
    let mut epochs = h.epochs();
    for epoch in 0..4u64 {
        epochs.step(|| {
            for k in 0..24u64 {
                h.write(arr.word(me * 512 + (epoch * 24 + k) % 512), epoch);
            }
            // All processes collide on one word per epoch...
            h.write(arr.word(n * 512 + epoch), me);
            // ...and read the next process's stripe (ordered by the
            // previous barrier: concurrent only in epoch 0's interval).
            let _ = h.read(arr.word(((me + 1) % n) * 512 + epoch));
        });
    }
}

/// Tight RTO/backoff so a scripted corpse is declared dead in
/// milliseconds (same wire for both members of a compared pair).
/// `PIPELINE_SEED` (CI's matrix axis) shifts every wire seed so reruns
/// explore different loss/timing schedules without editing the test.
fn matrix_wire(seed: u64) -> FaultPlan {
    let base = std::env::var("PIPELINE_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    FaultPlan::clean(seed + base * 1000)
        .with_rto(Duration::from_millis(2), Duration::from_millis(16))
        .with_max_retransmits(8)
}

fn matrix_cfg(protocol: Protocol, pipelined: bool, seed: Option<u64>) -> DsmConfig {
    let mut cfg = DsmConfig::new(3);
    cfg.protocol = protocol;
    cfg.op_deadline = Duration::from_secs(5);
    cfg.detect = if pipelined {
        DetectConfig::pipelined()
    } else {
        DetectConfig::on()
    };
    if let Some(seed) = seed {
        cfg.net_loss = Some(matrix_wire(seed));
    }
    cfg
}

fn run_matrix_cell(cfg: DsmConfig) -> Result<RunReport, cvm_repro::dsm::RunError> {
    Cluster::run(
        cfg,
        |alloc| alloc.alloc_page_aligned("arr", 4096 * 4).unwrap(),
        racy_epochs_body,
    )
}

/// Clean runs: both protocols, Abort policy.  Pipelined reports must be
/// byte-identical to synchronous, and the pipeline must actually engage.
#[test]
fn pipelined_matches_synchronous_clean() {
    for protocol in [Protocol::SingleWriter, Protocol::MultiWriter] {
        let sync = run_matrix_cell(matrix_cfg(protocol, false, None)).expect("sync run");
        let piped = run_matrix_cell(matrix_cfg(protocol, true, None)).expect("pipelined run");
        assert!(
            !sync.races.is_empty(),
            "{protocol:?}: the program must actually race"
        );
        assert_eq!(
            race_fingerprint(&sync),
            race_fingerprint(&piped),
            "{protocol:?}: pipelined reports diverged"
        );
        // Same detection work, just moved off the critical path.
        assert_eq!(sync.det_stats, piped.det_stats, "{protocol:?}");
        assert_eq!(piped.nodes[0].stats.pipelined_epochs, 4, "{protocol:?}");
        assert_eq!(sync.nodes[0].stats.pipelined_epochs, 0, "{protocol:?}");
    }
}

/// Recovery runs: both protocols, `Recover` policy with a scripted worker
/// kill, under several wire seeds.  Checkpointing makes every barrier a
/// cut, so this also pins the gating rule: a cut must not commit before
/// its epoch's detection drains — otherwise the restored race log (and
/// hence the final report) would silently drop the gated epoch's races.
#[test]
fn pipelined_matches_synchronous_through_recovery() {
    for protocol in [Protocol::SingleWriter, Protocol::MultiWriter] {
        for seed in [11u64, 29, 47] {
            let recover = |pipelined: bool, kill: bool| {
                let mut cfg = matrix_cfg(protocol, pipelined, Some(seed));
                cfg.recovery = RecoveryPolicy::Recover { max_attempts: 3 };
                if kill {
                    cfg.net_loss = Some(matrix_wire(seed).with_kill(ProcId(2), 30));
                }
                run_matrix_cell(cfg).expect("recovered run")
            };
            let sync_clean = recover(false, false);
            let piped_clean = recover(true, false);
            assert_eq!(
                race_fingerprint(&sync_clean),
                race_fingerprint(&piped_clean),
                "{protocol:?}/seed {seed}: clean checkpointing runs diverged"
            );
            let sync_killed = recover(false, true);
            let piped_killed = recover(true, true);
            assert!(
                piped_killed.recovery.recoveries >= 1,
                "{protocol:?}/seed {seed}: the kill must trigger recovery"
            );
            assert_eq!(
                race_fingerprint(&sync_killed),
                race_fingerprint(&piped_killed),
                "{protocol:?}/seed {seed}: recovered runs diverged"
            );
            assert_eq!(
                race_fingerprint(&sync_clean),
                race_fingerprint(&sync_killed),
                "{protocol:?}/seed {seed}: recovery changed the sync report"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Barrier-master failover & the fault-hardened pipeline.
//
// Process 0 is the barrier master and, in pipelined mode, hosts the
// detection stage thread — killing it used to abort the whole attempt.
// Under `RecoveryPolicy::Recover` with the default
// `FailoverPolicy::Succession`, the lowest-numbered survivor now assumes
// the master seat (a `MasterHandoff` round pins cluster agreement on the
// seat and resume epoch), reconstructs detection state from the newest
// committed cut, and resumes.  Contract: race reports byte-identical to
// the fault-free run, with `RunReport.recovery.failovers` counting the
// seat changes.
// ---------------------------------------------------------------------------

/// Same wire as [`matrix_wire`], but shifted by `FAILOVER_SEED` (the CI
/// failover job's chaos axis) instead of `PIPELINE_SEED`, so the two
/// matrices explore loss/timing schedules independently.
fn failover_wire(seed: u64) -> FaultPlan {
    let base = std::env::var("FAILOVER_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    FaultPlan::clean(seed + base * 1000)
        .with_rto(Duration::from_millis(2), Duration::from_millis(16))
        .with_max_retransmits(8)
}

fn failover_cfg(protocol: Protocol, pipelined: bool, seed: u64) -> DsmConfig {
    let mut cfg = matrix_cfg(protocol, pipelined, None);
    cfg.net_loss = Some(failover_wire(seed));
    cfg.recovery = RecoveryPolicy::Recover { max_attempts: 3 };
    cfg
}

/// Tentpole acceptance: a scripted master kill under `Recover` completes
/// via failover — no full-attempt abort — with byte-identical race
/// reports in sync AND pipelined modes, and the recovery counters
/// (failovers, backoff waits) surfaced in the report.
#[test]
fn failover_master_kill_matches_clean() {
    for protocol in [Protocol::SingleWriter, Protocol::MultiWriter] {
        for pipelined in [false, true] {
            let clean = run_matrix_cell(failover_cfg(protocol, pipelined, 13))
                .expect("clean checkpointing run");
            assert_eq!(
                clean.recovery.failovers, 0,
                "{protocol:?}/pipelined={pipelined}: no faults, no failovers"
            );
            assert_eq!(clean.recovery.backoff_waits, 0);
            let mut cfg = failover_cfg(protocol, pipelined, 13);
            cfg.net_loss = Some(failover_wire(13).with_kill(ProcId(0), 30));
            let failed_over = run_matrix_cell(cfg).expect("master kill must fail over, not abort");
            assert!(
                failed_over.recovery.recoveries >= 1,
                "{protocol:?}/pipelined={pipelined}: the kill must trigger recovery"
            );
            assert!(
                failed_over.recovery.failovers >= 1,
                "{protocol:?}/pipelined={pipelined}: the master seat must move"
            );
            assert!(
                failed_over.recovery.backoff_waits >= 1,
                "{protocol:?}/pipelined={pipelined}: retries must back off"
            );
            assert_eq!(
                race_fingerprint(&clean),
                race_fingerprint(&failed_over),
                "{protocol:?}/pipelined={pipelined}: failover changed the report"
            );
        }
    }
}

/// Scripted `KillAtPhase` strikes: the victim self-destructs inside a
/// named protocol window — the master mid-(pipelined)-compare, a worker
/// answering the bitmap round an in-flight compare depends on, and either
/// role inside the CkptAck→CkptGo commit window (where, in pipelined
/// mode, the cut can be parked in the drain gate).  Every cell must
/// recover to a byte-identical report; the master cells must fail over.
#[test]
fn failover_phase_strikes_match_clean() {
    use cvm_repro::dsm::ProtocolPhase;
    let cells: [(u16, ProtocolPhase, u64, bool); 5] = [
        (0, ProtocolPhase::PipelinedCompare, 1, true), // master mid-compare
        (1, ProtocolPhase::BitmapRound, 1, true),      // worker mid-round
        (0, ProtocolPhase::CkptWindow, 1, true),       // master, cut in drain gate
        (1, ProtocolPhase::CkptWindow, 1, true),       // worker, cut in drain gate
        (0, ProtocolPhase::BitmapRound, 2, false),     // master, sync detection
    ];
    for protocol in [Protocol::SingleWriter, Protocol::MultiWriter] {
        for (victim, phase, hit, pipelined) in cells {
            let clean = run_matrix_cell(failover_cfg(protocol, pipelined, 19))
                .expect("clean checkpointing run");
            let mut cfg = failover_cfg(protocol, pipelined, 19);
            cfg.net_loss = Some(failover_wire(19).with_kill_at_phase(ProcId(victim), phase, hit));
            let struck = run_matrix_cell(cfg).expect("phase strike must recover");
            assert!(
                struck.recovery.recoveries >= 1,
                "{protocol:?} P{victim}@{phase:?}#{hit}: the strike must land"
            );
            if victim == 0 {
                assert!(
                    struck.recovery.failovers >= 1,
                    "{protocol:?} P{victim}@{phase:?}#{hit}: master strike must fail over"
                );
            } else {
                assert_eq!(
                    struck.recovery.failovers, 0,
                    "{protocol:?} P{victim}@{phase:?}#{hit}: worker strike must not move the seat"
                );
            }
            assert_eq!(
                race_fingerprint(&clean),
                race_fingerprint(&struck),
                "{protocol:?} P{victim}@{phase:?}#{hit}: strike changed the report"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Partition tolerance: healing partitions, quorum-fenced succession, and
// split-brain-safe rejoin.
//
// A transient partition cuts one node off the fabric for a window of its
// own wire-datagram stream and then heals.  Short outages are bridged by
// retransmission and never surface; long master-side outages depose the
// seat — the survivors elect a successor under a higher term, fenced by a
// strict-majority handoff quorum — and the deposed master rejoins from the
// agreed checkpoint cut as a worker, its stale-term seat re-assertion
// fenced and counted.  Contract: race reports byte-identical to the
// fault-free run across ALL heal timings, with the partition/fencing
// counters surfaced in `RunReport.recovery`.
// ---------------------------------------------------------------------------

/// Same wire as [`matrix_wire`], shifted by `PARTITION_SEED` (the CI
/// partition job's chaos axis) so the partition matrix explores
/// loss/timing schedules independently of the pipeline and failover jobs.
fn partition_wire(seed: u64) -> FaultPlan {
    let base = std::env::var("PARTITION_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    FaultPlan::clean(seed + base * 1000)
        .with_rto(Duration::from_millis(2), Duration::from_millis(16))
        .with_max_retransmits(8)
}

fn partition_cfg(protocol: Protocol, pipelined: bool, seed: u64) -> DsmConfig {
    let mut cfg = matrix_cfg(protocol, pipelined, None);
    cfg.net_loss = Some(partition_wire(seed));
    cfg.recovery = RecoveryPolicy::Recover { max_attempts: 3 };
    cfg
}

/// Tentpole acceptance: a transient master-side partition long enough to
/// depose the seat.  The run must complete under `Recover` via quorum-
/// fenced succession — partition, failover to the majority side, heal,
/// old master fenced and rejoined from the cut — with race reports
/// byte-identical to the fault-free run and every partition counter live.
#[test]
fn partition_master_failover_fences_and_rejoins() {
    for protocol in [Protocol::SingleWriter, Protocol::MultiWriter] {
        for pipelined in [false, true] {
            let tag = format!("{protocol:?}/pipelined={pipelined}");
            let clean = run_matrix_cell(partition_cfg(protocol, pipelined, 13))
                .expect("clean checkpointing run");
            assert_eq!(clean.recovery.partitions_healed, 0, "{tag}: clean wire");
            assert_eq!(clean.recovery.stale_msgs_fenced, 0, "{tag}: clean wire");
            let mut cfg = partition_cfg(protocol, pipelined, 13);
            // The heal point is far beyond the attempt's traffic: within
            // attempt 1 the outage is effectively permanent (the peers
            // declare the master dead), and the window is observed healed
            // during the recovery backoff pause.
            cfg.net_loss = Some(partition_wire(13).with_partition_healed(ProcId(0), 80, 100_000));
            let healed = run_matrix_cell(cfg)
                .expect("a transient master partition must fail over, not abort");
            assert!(
                healed.recovery.recoveries >= 1,
                "{tag}: the outage must trigger recovery"
            );
            assert!(
                healed.recovery.failovers >= 1,
                "{tag}: a cut master must lose the seat"
            );
            assert!(
                healed.recovery.partitions_healed >= 1,
                "{tag}: the transient window must be observed healed"
            );
            assert!(
                healed.recovery.stale_msgs_fenced >= 1,
                "{tag}: the deposed master's stale seat claim must be fenced"
            );
            assert!(
                healed.recovery.rejoin_restores >= 1,
                "{tag}: the deposed master must rejoin from the agreed cut"
            );
            assert_eq!(
                healed.recovery.quorum_losses, 0,
                "{tag}: the majority side never loses quorum"
            );
            assert_eq!(
                race_fingerprint(&clean),
                race_fingerprint(&healed),
                "{tag}: the healed partition changed the report"
            );
        }
    }
}

/// Byte-identity must hold across ALL heal timings, including outages
/// short enough that retransmission bridges them without any recovery
/// machinery engaging (the heal is then visible only in the counters).
#[test]
fn partition_reports_identical_across_heal_timings() {
    for protocol in [Protocol::SingleWriter, Protocol::MultiWriter] {
        for pipelined in [false, true] {
            let clean = run_matrix_cell(partition_cfg(protocol, pipelined, 29))
                .expect("clean checkpointing run");
            for (victim, heal_gap) in [(0u16, 12u64), (1, 12), (1, 100_000), (2, 400)] {
                let tag =
                    format!("{protocol:?}/pipelined={pipelined}/victim={victim}/gap={heal_gap}");
                let mut cfg = partition_cfg(protocol, pipelined, 29);
                cfg.net_loss = Some(partition_wire(29).with_partition_healed(
                    ProcId(victim),
                    40,
                    40 + heal_gap,
                ));
                let healed =
                    run_matrix_cell(cfg).expect("every heal timing must complete under Recover");
                assert!(
                    healed.recovery.partitions_healed >= 1,
                    "{tag}: the window must be observed healed"
                );
                assert_eq!(
                    race_fingerprint(&clean),
                    race_fingerprint(&healed),
                    "{tag}: heal timing changed the report"
                );
            }
        }
    }
}

/// A panic on the detection stage thread must surface as a *named*
/// protocol error within the op deadline — not hang the barrier waiters,
/// and not be retried (a deterministic panic would panic identically on
/// replay), regardless of recovery policy.
#[test]
fn failover_stage_panic_surfaces_named_error() {
    for recovery in [
        RecoveryPolicy::Abort,
        RecoveryPolicy::Recover { max_attempts: 3 },
    ] {
        let mut cfg = matrix_cfg(Protocol::SingleWriter, true, None);
        cfg.recovery = recovery;
        cfg.detect.stage_panic_epoch = Some(1);
        let deadline = cfg.op_deadline;
        let start = std::time::Instant::now();
        let err = run_matrix_cell(cfg).expect_err("injected stage panic must fail the run");
        assert_eq!(
            err.error,
            cvm_repro::dsm::DsmError::Protocol {
                context: "detection stage thread panicked"
            },
            "{recovery:?}"
        );
        assert!(
            start.elapsed() < deadline + Duration::from_secs(5),
            "{recovery:?}: the panic must be diagnosed promptly, not deadline out"
        );
    }
}

/// Abort policy with a scripted kill: both modes fail, and the pipelined
/// partial report is a subset of the clean run's (a drained pipeline never
/// invents races).
#[test]
fn pipelined_abort_kill_yields_partial_subset() {
    let clean = run_matrix_cell(matrix_cfg(Protocol::SingleWriter, false, Some(7)))
        .expect("clean baseline");
    let full: Vec<String> = race_fingerprint(&clean);
    for pipelined in [false, true] {
        let mut cfg = matrix_cfg(Protocol::SingleWriter, pipelined, Some(7));
        cfg.net_loss = Some(matrix_wire(7).with_kill(ProcId(1), 30));
        let err = run_matrix_cell(cfg).expect_err("the kill must fail an Abort run");
        for line in race_fingerprint(&err.partial) {
            assert!(
                full.contains(&line),
                "pipelined={pipelined}: partial report invented a race: {line}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Fingerprint stability: the canonical `RaceReport::fingerprint` is the
// race-hunt service's dedup key, so it must be invariant across every
// knob that is documented not to change detection output — worker counts
// and the sync-vs-pipelined master.
// ---------------------------------------------------------------------------

use proptest::prelude::*;

/// A deterministic mixed workload (true races + false sharing + a
/// race-free stripe) parameterized enough for the property to explore
/// different plans and report sets.
fn fingerprint_run(
    nprocs: usize,
    epochs: u64,
    stride: u64,
    workers: usize,
    pipelined: bool,
) -> std::collections::BTreeSet<u64> {
    let mut cfg = DsmConfig::new(nprocs);
    cfg.detect.workers = workers;
    cfg.detect.pipelined = pipelined;
    let report = Cluster::run(
        cfg,
        |alloc| alloc.alloc("arr", 8 * 128).unwrap(),
        |h, &arr| {
            let me = h.proc() as u64;
            for e in 0..epochs {
                for k in 0..4u64 {
                    h.write(arr.word((me * stride + k * 16 + e) % 128), me + e);
                }
                let _ = h.read(arr.word((me + e) % 32));
                h.barrier();
            }
        },
    )
    .expect("healthy run");
    report.races.distinct_fingerprints()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 8,
        .. ProptestConfig::default()
    })]

    #[test]
    fn fingerprints_invariant_across_workers_and_pipelining(
        nprocs in 2usize..=4,
        epochs in 1u64..=3,
        stride in 1u64..=5,
    ) {
        let reference = fingerprint_run(nprocs, epochs, stride, 1, false);
        for workers in [2usize, 4] {
            let got = fingerprint_run(nprocs, epochs, stride, workers, false);
            prop_assert_eq!(&got, &reference, "workers={} diverged", workers);
        }
        let piped = fingerprint_run(nprocs, epochs, stride, 0, true);
        prop_assert_eq!(&piped, &reference, "pipelined master diverged");
    }
}
