//! Litmus oracle: randomized end-to-end validation of the detector.
//!
//! Random small programs (reads, writes, lock-protected critical sections,
//! barriers) run on the full DSM stack with synchronization recording on.
//! An *independent* oracle then reconstructs the access-level
//! happens-before-1 relation — program order, barrier order, and
//! release-to-acquire edges in the recorded grant order — and derives the
//! ground-truth set of racy addresses (Definition 2 of the paper: same
//! word, at least one write, unordered).  The detector must report exactly
//! that set.
//!
//! To make the grant schedule a complete record of the per-lock critical
//! section order, generated programs never let a process reuse a cached
//! token: a lock's manager never uses it, and consecutive epochs use
//! disjoint user sets — every acquisition is therefore a recorded remote
//! grant.

#![allow(clippy::needless_range_loop)]

use std::collections::{BTreeMap, BTreeSet};

use cvm_repro::dsm::{Cluster, DsmConfig};
use cvm_repro::page::GAddr;
use proptest::prelude::*;

const NPROCS: usize = 4;
const NEPOCHS: usize = 3;
const NADDRS: usize = 6;
const NLOCKS: usize = 2;

/// One shared-memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Access {
    addr: usize,
    write: bool,
}

/// One process-epoch: plain accesses, optionally interleaved with critical
/// sections (at most one per lock per epoch).
#[derive(Clone, Debug, Default)]
struct ProcEpoch {
    /// Accesses before any critical section.
    pre: Vec<Access>,
    /// Per lock: `Some(accesses inside the critical section)`.
    cs: [Option<Vec<Access>>; NLOCKS],
    /// Accesses after the critical sections.
    post: Vec<Access>,
}

#[derive(Clone, Debug)]
struct Program {
    /// `[epoch][proc]`.
    epochs: Vec<Vec<ProcEpoch>>,
}

fn arb_access() -> impl Strategy<Value = Access> {
    (0..NADDRS, any::<bool>()).prop_map(|(addr, write)| Access { addr, write })
}

fn arb_accesses(max: usize) -> impl Strategy<Value = Vec<Access>> {
    proptest::collection::vec(arb_access(), 0..=max)
}

fn manager(lock: usize) -> usize {
    lock % NPROCS
}

fn arb_program() -> impl Strategy<Value = Program> {
    // For each lock and epoch, choose a user set from the eligible procs
    // (manager excluded), disjoint from the previous epoch's set.
    let per_proc_epoch = (
        arb_accesses(3),
        arb_accesses(3),
        proptest::collection::vec(arb_accesses(2), NLOCKS),
    );
    let epochs =
        proptest::collection::vec(proptest::collection::vec(per_proc_epoch, NPROCS), NEPOCHS);
    let lock_users = proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), NPROCS), NEPOCHS),
        NLOCKS,
    );
    (epochs, lock_users).prop_map(|(raw, users)| {
        let mut program = Program {
            epochs: vec![vec![ProcEpoch::default(); NPROCS]; NEPOCHS],
        };
        // For every acquisition to be a *recorded* remote grant, the
        // holder of the cached token (the last user of the lock in the
        // most recent epoch that used it at all, or the manager) must not
        // be a user.  Track the last non-empty user set per lock.
        let mut last_users: Vec<Option<BTreeSet<usize>>> = vec![None; NLOCKS];
        for (e, procs) in raw.into_iter().enumerate() {
            let mut epoch_users: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); NLOCKS];
            for (p, (pre, post, cs_bodies)) in procs.into_iter().enumerate() {
                program.epochs[e][p].pre = pre;
                program.epochs[e][p].post = post;
                for (l, body) in cs_bodies.into_iter().enumerate() {
                    let blocked_by_token = match &last_users[l] {
                        Some(prev) => prev.contains(&p),
                        None => false,
                    };
                    let eligible = p != manager(l) && users[l][e][p] && !blocked_by_token;
                    if eligible {
                        program.epochs[e][p].cs[l] = Some(body);
                        epoch_users[l].insert(p);
                    }
                }
            }
            for (l, set) in epoch_users.into_iter().enumerate() {
                if !set.is_empty() {
                    last_users[l] = Some(set);
                }
            }
        }
        program
    })
}

/// Runs the program on the cluster; returns (racy addr set, grant order
/// per lock).
fn run_on_dsm(program: &Program) -> (BTreeSet<usize>, Vec<Vec<usize>>) {
    let mut cfg = DsmConfig::new(NPROCS);
    cfg.record_sync = true;
    // Also record the post-mortem baseline's trace: its offline analysis
    // must agree with both the online detector and the oracle.
    cfg.trace = true;
    let geometry = cfg.geometry;
    let report = Cluster::run(
        cfg,
        |alloc| {
            // Addresses spread over two pages: 0..3 on page 0, 3.. on page
            // 1 (so the detector also exercises cross-page bookkeeping and
            // same-page false-sharing dismissal).
            let region = alloc.alloc_page_aligned("litmus", 2 * 4096).unwrap();
            let addrs: Vec<GAddr> = (0..NADDRS)
                .map(|i| {
                    if i < 3 {
                        region.word(i as u64)
                    } else {
                        region.word(512 + i as u64)
                    }
                })
                .collect();
            addrs
        },
        |h, addrs| {
            let me = h.proc();
            let run = |accesses: &[Access]| {
                for a in accesses {
                    if a.write {
                        h.write(addrs[a.addr], (me + 1) as u64);
                    } else {
                        let _ = h.read(addrs[a.addr]);
                    }
                }
            };
            for epoch in &program.epochs {
                let mine = &epoch[me];
                run(&mine.pre);
                for (l, cs) in mine.cs.iter().enumerate() {
                    if let Some(body) = cs {
                        h.lock(l as u32);
                        run(body);
                        h.unlock(l as u32);
                    }
                }
                run(&mine.post);
                h.barrier();
            }
        },
    )
    .expect("cluster run");
    let racy: BTreeSet<usize> = report
        .races
        .distinct_addrs()
        .into_iter()
        .map(|addr| {
            let off = addr.0 - report.segments.segments()[0].base.0;
            let word = (off / 8) as usize;
            if word < 3 {
                word
            } else {
                word - 512
            }
        })
        .collect();
    let grants: Vec<Vec<usize>> = (0..NLOCKS)
        .map(|l| {
            report
                .schedule
                .sequence(l as u32)
                .iter()
                .map(|p| p.index())
                .collect()
        })
        .collect();
    // Three-way differential: the post-mortem analyzer over the recorded
    // trace must find exactly the same racy addresses as the online
    // detector.
    let (pm_reports, _) = cvm_repro::race::trace::analyze_trace(&report.traces, geometry);
    let base = report.segments.segments()[0].base.0;
    let postmortem: BTreeSet<usize> = pm_reports
        .iter()
        .map(|r| {
            let word = ((r.addr.0 - base) / 8) as usize;
            if word < 3 {
                word
            } else {
                word - 512
            }
        })
        .collect();
    assert_eq!(
        racy, postmortem,
        "online detector and post-mortem baseline disagree"
    );
    (racy, grants)
}

/// The independent oracle: event-level happens-before-1 from program
/// structure + the recorded grant order.
fn oracle_races(program: &Program, grants: &[Vec<usize>]) -> BTreeSet<usize> {
    // Events: (global id) with per-event (proc, access option).
    #[derive(Clone, Copy)]
    enum Ev {
        Access(Access),
        Acquire,
        Release,
        Barrier,
    }
    let mut events: Vec<(usize, Ev)> = Vec::new(); // (proc, event)
                                                   // Per proc, list of event ids in program order.
    let mut by_proc: Vec<Vec<usize>> = vec![Vec::new(); NPROCS];
    // (lock, epoch, proc) -> (acquire event, release event).
    let mut cs_events: BTreeMap<(usize, usize, usize), (usize, usize)> = BTreeMap::new();
    let mut barrier_events: Vec<Vec<usize>> = vec![Vec::new(); NEPOCHS];

    let push =
        |proc: usize, ev: Ev, events: &mut Vec<(usize, Ev)>, by_proc: &mut Vec<Vec<usize>>| {
            let id = events.len();
            events.push((proc, ev));
            by_proc[proc].push(id);
            id
        };
    for (e, epoch) in program.epochs.iter().enumerate() {
        for (p, pe) in epoch.iter().enumerate() {
            for &a in &pe.pre {
                push(p, Ev::Access(a), &mut events, &mut by_proc);
            }
            for (l, cs) in pe.cs.iter().enumerate() {
                if let Some(body) = cs {
                    let acq = push(p, Ev::Acquire, &mut events, &mut by_proc);
                    for &a in body {
                        push(p, Ev::Access(a), &mut events, &mut by_proc);
                    }
                    let rel = push(p, Ev::Release, &mut events, &mut by_proc);
                    cs_events.insert((l, e, p), (acq, rel));
                }
            }
            for &a in &pe.post {
                push(p, Ev::Access(a), &mut events, &mut by_proc);
            }
            let b = push(p, Ev::Barrier, &mut events, &mut by_proc);
            barrier_events[e].push(b);
        }
    }

    let n = events.len();
    let mut reach = vec![vec![false; n]; n];
    // Program order.
    for ids in &by_proc {
        for w in ids.windows(2) {
            reach[w[0]][w[1]] = true;
        }
    }
    // Barrier order: every barrier event of epoch e precedes every proc's
    // first event after it; barriers join all processes, so edge from each
    // epoch-e barrier to each epoch-(e+1)-start. Simplest: from every
    // epoch-e barrier event to every OTHER proc's next event; since the
    // barrier event is in each proc's own program order, add edges between
    // all barrier events of epoch e and the successors of each. Easiest
    // correct encoding: all barrier events of one epoch are mutually
    // "simultaneous": connect each pair both ways through a virtual join
    // by adding edges barrier_i -> (next event of proc j after its own
    // barrier). Program order already links barrier_j to that next event,
    // so linking barrier_i -> barrier_j's *successor* is equivalent to
    // linking barrier_i -> barrier_j; do the latter via a cycle-free trick:
    // route through reachability on a DAG by treating the barrier of proc
    // 0 as the join point.
    for bars in &barrier_events {
        // join: b_i -> b_0' where we pick proc 0's barrier as the hub is
        // wrong (cycles). Instead: for each ordered pair (i, j), i != j,
        // add edge from b_i to the successor of b_j in j's program order.
        for &bi in bars {
            for &bj in bars {
                if bi == bj {
                    continue;
                }
                let (pj, _) = events[bj];
                // Successor of bj in pj's order:
                if let Some(pos) = by_proc[pj].iter().position(|&x| x == bj) {
                    if pos + 1 < by_proc[pj].len() {
                        reach[bi][by_proc[pj][pos + 1]] = true;
                    }
                }
            }
        }
    }
    // Lock order: within each epoch, critical sections in grant order.
    // The generator guarantees every acquisition is granted (recorded), so
    // the global grant sequence per lock, filtered to this epoch's users,
    // gives the order.
    for (l, seq) in grants.iter().enumerate() {
        let mut cursor = 0usize;
        for e in 0..NEPOCHS {
            let users: BTreeSet<usize> = (0..NPROCS)
                .filter(|&p| program.epochs[e][p].cs[l].is_some())
                .collect();
            let mut order = Vec::new();
            while order.len() < users.len() {
                assert!(cursor < seq.len(), "grant schedule shorter than CS count");
                let p = seq[cursor];
                cursor += 1;
                assert!(users.contains(&p), "grant for non-user P{p} in epoch {e}");
                order.push(p);
            }
            for w in order.windows(2) {
                let (_, rel) = cs_events[&(l, e, w[0])];
                let (acq, _) = cs_events[&(l, e, w[1])];
                reach[rel][acq] = true;
            }
        }
    }
    // Transitive closure.
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                for j in 0..n {
                    if reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
    }
    // Race extraction.
    let mut racy = BTreeSet::new();
    for i in 0..n {
        let (pi, Ev::Access(a)) = events[i] else {
            continue;
        };
        for j in i + 1..n {
            let (pj, Ev::Access(b)) = events[j] else {
                continue;
            };
            if pi == pj || a.addr != b.addr || !(a.write || b.write) {
                continue;
            }
            if !reach[i][j] && !reach[j][i] {
                racy.insert(a.addr);
            }
        }
    }
    racy
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn detector_matches_hb1_oracle(program in arb_program()) {
        let (detected, grants) = run_on_dsm(&program);
        let expected = oracle_races(&program, &grants);
        prop_assert_eq!(
            &detected, &expected,
            "program: {:#?}\ngrants: {:?}", program, grants
        );
    }
}

/// A couple of fixed regression programs (cheap smoke, non-random).
#[test]
fn fixed_litmus_cases() {
    // Everyone writes address 0 unsynchronized: racy.
    let mut epochs = vec![vec![ProcEpoch::default(); NPROCS]; NEPOCHS];
    for pe in &mut epochs[0] {
        pe.pre = vec![Access {
            addr: 0,
            write: true,
        }];
    }
    let program = Program {
        epochs: epochs.clone(),
    };
    let (detected, grants) = run_on_dsm(&program);
    assert_eq!(detected, oracle_races(&program, &grants));
    assert!(detected.contains(&0));

    // P1 and P2 (manager of lock 0 is P0) use lock 0 around address 1:
    // ordered, no race.
    let mut epochs = vec![vec![ProcEpoch::default(); NPROCS]; NEPOCHS];
    epochs[0][1].cs[0] = Some(vec![Access {
        addr: 1,
        write: true,
    }]);
    epochs[0][2].cs[0] = Some(vec![Access {
        addr: 1,
        write: true,
    }]);
    let program = Program { epochs };
    let (detected, grants) = run_on_dsm(&program);
    assert_eq!(detected, oracle_races(&program, &grants));
    assert!(detected.is_empty());
}
