//! Online detection vs the post-mortem baseline (Adve et al., the paper's
//! closest related work): identical executions must yield identical racy
//! addresses, while the baseline's trace storage grows without bound and
//! the online detector's retained state does not.

use std::collections::BTreeSet;

use cvm_repro::dsm::{Cluster, DsmConfig, ProcHandle};
use cvm_repro::page::{GAddr, Geometry};
use cvm_repro::race::trace::analyze_trace;

fn addrs(iter: impl IntoIterator<Item = GAddr>) -> BTreeSet<u64> {
    iter.into_iter().map(|a| a.0).collect()
}

/// Runs a body with both online detection and tracing, then checks the
/// offline analysis finds exactly the same racy addresses.
fn assert_equivalent<S: Sync>(
    nprocs: usize,
    setup: impl FnOnce(&mut cvm_repro::page::SharedAlloc) -> S,
    body: impl Fn(&ProcHandle, &S) + Sync,
) -> usize {
    let mut cfg = DsmConfig::new(nprocs);
    cfg.trace = true;
    let geometry = cfg.geometry;
    let report = Cluster::run(cfg, setup, body).expect("cluster run");
    let online = addrs(report.races.distinct_addrs());
    let (pm_reports, stats) = analyze_trace(&report.traces, geometry);
    let postmortem = addrs(pm_reports.iter().map(|r| r.addr));
    assert_eq!(
        online, postmortem,
        "online and post-mortem disagree (trace events: {})",
        stats.events
    );
    online.len()
}

#[test]
fn equivalent_on_unsynchronized_writes() {
    let n = assert_equivalent(
        3,
        |alloc| alloc.alloc("x", 8).unwrap(),
        |h, &x| {
            h.write(x, h.proc() as u64);
            h.barrier();
        },
    );
    assert_eq!(n, 1);
}

#[test]
fn equivalent_on_lock_ordered_program() {
    let n = assert_equivalent(
        3,
        |alloc| alloc.alloc("n", 8).unwrap(),
        |h, &counter| {
            for _ in 0..5 {
                h.lock(1);
                let v = h.read(counter);
                h.write(counter, v + 1);
                h.unlock(1);
            }
            h.barrier();
        },
    );
    assert_eq!(n, 0, "locked counter must be clean in both analyses");
}

#[test]
fn equivalent_on_mixed_racy_program() {
    let n = assert_equivalent(
        4,
        |alloc| {
            (
                alloc.alloc("locked", 8).unwrap(),
                alloc.alloc("racy", 8).unwrap(),
                alloc.alloc("scratch", 8 * 16).unwrap(),
            )
        },
        |h, &(locked, racy, scratch)| {
            let me = h.proc() as u64;
            for round in 0..3u64 {
                h.lock(2);
                let v = h.read(locked);
                h.write(locked, v + 1);
                h.unlock(2);
                // The bug: unsynchronized read-modify-write.
                let v = h.read(racy);
                h.write(racy, v + round);
                // Private-ish scratch: per-proc words (false sharing only).
                h.write(scratch.word(me), round);
                h.barrier();
            }
        },
    );
    assert_eq!(n, 1, "only the racy word is reported by both");
}

#[test]
fn equivalent_on_multi_epoch_tsp_style_contention() {
    let n = assert_equivalent(
        3,
        |alloc| {
            (
                alloc.alloc("bound", 8).unwrap(),
                alloc.alloc("queue", 8 * 8).unwrap(),
            )
        },
        |h, &(bound, queue)| {
            let me = h.proc() as u64;
            for _ in 0..4 {
                h.lock(0);
                let q = h.read(queue.word(me));
                h.write(queue.word(me), q + 1);
                h.unlock(0);
                let _ = h.read(bound); // Unsynchronized bound read.
                if me == 0 {
                    h.lock(1);
                    let b = h.read(bound);
                    h.write(bound, b + 1); // Locked update.
                    h.unlock(1);
                }
            }
            h.barrier();
        },
    );
    assert!(n >= 1, "bound race visible to both");
}

#[test]
fn trace_grows_with_execution_but_online_state_does_not() {
    let run = |epochs: usize| {
        let mut cfg = DsmConfig::new(2);
        cfg.trace = true;
        let geometry = cfg.geometry;
        let report = Cluster::run(
            cfg,
            |alloc| alloc.alloc_page_aligned("grid", 2 * 4096).unwrap(),
            |h, &grid| {
                let me = h.proc() as u64;
                for i in 0..epochs as u64 {
                    for w in 0..16 {
                        h.write(grid.offset(me * 4096).word(w), i + w);
                    }
                    let other = (me + 1) % 2;
                    let _ = h.read(grid.offset(other * 4096).word(0));
                    h.barrier();
                }
            },
        )
        .expect("cluster run");
        let (_, stats) = analyze_trace(&report.traces, geometry);
        let online_high_water: u64 = report
            .nodes
            .iter()
            .map(|n| n.stats.bitmap_high_water)
            .max()
            .unwrap_or(0);
        (stats.trace_bytes, online_high_water)
    };
    let (bytes_short, hw_short) = run(5);
    let (bytes_long, hw_long) = run(40);
    // The baseline's storage scales with execution length...
    assert!(
        bytes_long > bytes_short * 4,
        "trace bytes: {bytes_short} -> {bytes_long}"
    );
    // ...while the online detector's retained state plateaus (GC).
    assert_eq!(hw_short, hw_long, "online retained state grew");
}

#[test]
fn pure_baseline_mode_finds_races_without_online_detector() {
    // detect off + trace on: unmodified CVM messages, offline analysis
    // still finds the race — the Adve et al. deployment model.
    let mut cfg = DsmConfig::new(2);
    cfg.detect.enabled = false;
    cfg.trace = true;
    let geometry = cfg.geometry;
    let report = Cluster::run(
        cfg,
        |alloc| alloc.alloc("x", 8).unwrap(),
        |h, &x| {
            h.write(x, h.proc() as u64);
            h.barrier();
        },
    )
    .expect("cluster run");
    assert!(report.races.is_empty(), "no online detection configured");
    assert_eq!(
        report
            .net
            .class_bytes(cvm_repro::net::TrafficClass::ReadNotice),
        0,
        "tracing must not modify CVM's messages"
    );
    let (pm, _) = analyze_trace(&report.traces, geometry);
    assert_eq!(pm.len(), 1, "the offline analysis still finds the race");
}

#[test]
fn equivalence_holds_at_8kb_pages() {
    let mut cfg = DsmConfig::new(3);
    cfg.trace = true;
    cfg.geometry = Geometry::with_page_bytes(8192);
    let geometry = cfg.geometry;
    let report = Cluster::run(
        cfg,
        |alloc| alloc.alloc("words", 8 * 32).unwrap(),
        |h, &base| {
            let me = h.proc() as u64;
            // Races on word 0; false sharing on per-proc words.
            h.write(base, me);
            h.write(base.word(me + 1), me);
            h.barrier();
        },
    )
    .expect("cluster run");
    let online = addrs(report.races.distinct_addrs());
    let (pm, _) = analyze_trace(&report.traces, geometry);
    assert_eq!(online, addrs(pm.iter().map(|r| r.addr)));
    assert_eq!(online.len(), 1);
}
