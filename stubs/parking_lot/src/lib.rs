//! Offline drop-in subset of the `parking_lot` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the handful of external dependencies are replaced by local
//! stubs implementing exactly the API surface the workspace uses (see
//! `stubs/README.md`).  This one wraps `std::sync::Mutex` with
//! `parking_lot`'s panic-free, non-poisoning interface.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual exclusion primitive (non-poisoning `std::sync::Mutex` wrapper).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    ///
    /// Unlike `std`, a panic while holding the lock does not poison it:
    /// subsequent `lock` calls succeed (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
