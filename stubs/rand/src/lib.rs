//! Offline drop-in subset of the `rand` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the handful of external dependencies are replaced by local
//! stubs implementing exactly the API surface the workspace uses (see
//! `stubs/README.md`).  The generator is splitmix64: deterministic per
//! seed, statistically fine for synthetic workloads, and not a substitute
//! for a cryptographic RNG (nothing in the workspace needs one).
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`, so
//! seeded data differs in value (not in distribution) from what upstream
//! would produce.  Nothing in the workspace depends on the exact stream.

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// The standard deterministic generator (splitmix64 in this stub).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): one 64-bit mix per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + frac * (self.end - self.start)
    }
}

/// Convenience sampling methods (the `rand` 0.10 `Rng`/`RngExt` surface).
pub trait RngExt: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..1000)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-0.2..0.2);
            assert!((-0.2..0.2).contains(&v));
            let i = rng.random_range(1..30u8);
            assert!((1..30).contains(&i));
            let n: i32 = rng.random_range(0..4);
            assert!((0..4).contains(&n));
        }
    }

    #[test]
    fn bool_respects_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input unchanged");
    }
}
