//! Offline drop-in subset of the `criterion` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the handful of external dependencies are replaced by local
//! stubs implementing exactly the API surface the workspace uses (see
//! `stubs/README.md`).  Benchmarks run a calibration pass, then
//! `sample_size` timed samples, and print mean/median/min per benchmark
//! in both a human line and a machine-readable `CSV:` line:
//!
//! ```text
//! bench_name              mean 12_345 ns  median 12_001 ns  min 11_800 ns
//! CSV:bench_name,12345,12001,11800
//! ```
//!
//! No statistical analysis, outlier rejection, plots, or saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier (criterion's
/// `black_box` has been this re-export since 0.5).
pub use std::hint::black_box;

/// Benchmark driver: collects configuration and runs benchmark closures.
pub struct Criterion {
    sample_size: usize,
    /// Target wall-clock time for one measured sample.
    target_sample: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_sample: Duration::from_millis(25),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_sample: Duration,
    sample_size: usize,
}

/// Identifier for a parameterised benchmark (`group/function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters_per_sample: 0,
            samples: Vec::new(),
            target_sample: self.target_sample,
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&name, |b| f(b, input));
        self
    }

    /// Runs one unparameterised benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&name, f_adapter(&mut f));
        self
    }

    /// Ends the group (upstream writes reports here; the stub prints as
    /// it goes).
    pub fn finish(self) {}
}

fn f_adapter<F: FnMut(&mut Bencher)>(f: &mut F) -> impl FnMut(&mut Bencher) + '_ {
    move |b| f(b)
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Calibrate: how many iterations fill one target sample?
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_sample / 2 || iters >= 1 << 24 {
                if elapsed < self.target_sample && elapsed > Duration::ZERO {
                    let scale = self.target_sample.as_nanos() / elapsed.as_nanos().max(1);
                    iters = iters.saturating_mul(scale as u64).max(iters);
                }
                break;
            }
            iters = iters.saturating_mul(4);
        }
        self.iters_per_sample = iters.max(1);
        // Measure.
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} (no samples: closure never called iter)");
            return;
        }
        let per_iter_ns: Vec<u128> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() / u128::from(self.iters_per_sample))
            .collect();
        let mut sorted = per_iter_ns.clone();
        sorted.sort_unstable();
        let mean = per_iter_ns.iter().sum::<u128>() / per_iter_ns.len() as u128;
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        println!("{name:<48} mean {mean} ns  median {median} ns  min {min} ns");
        println!("CSV:{name},{mean},{median},{min}");
    }
}

/// Bundles benchmark functions under one group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` executes bench binaries with --test
            // expecting them to no-op; only run under `cargo bench`.
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        // Small samples so the stub's own tests stay fast.
        Criterion {
            sample_size: 3,
            target_sample: Duration::from_micros(200),
        }
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = quick();
        let mut calls = 0u64;
        c.bench_function("stub_smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = quick();
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("f", 8), &8u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
