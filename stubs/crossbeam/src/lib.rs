//! Offline drop-in subset of the `crossbeam` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the handful of external dependencies are replaced by local
//! stubs implementing exactly the API surface the workspace uses (see
//! `stubs/README.md`).  Channels are re-exports of `std::sync::mpsc`
//! (which has been backed by crossbeam's queue implementation since Rust
//! 1.72, including a `Sync` sender); `select!` is a polling
//! implementation specialised to the two-receivers-plus-timeout shape the
//! workspace uses.

/// Multi-producer single-consumer channels (`std::sync::mpsc` re-exports).
pub mod channel {
    use std::cell::Cell;

    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// Creates a channel with a capacity hint.
    ///
    /// The stub backs this with an unbounded queue: `send` never blocks.
    /// The workspace only uses `bounded(1)` for one-shot wakeup signals,
    /// where the capacity bound is irrelevant.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    // Re-export the polling select! under `crossbeam::channel::select!`,
    // matching crossbeam's module layout.
    pub use crate::select;

    thread_local! {
        static SELECT_SEQ: Cell<u64> = const { Cell::new(0) };
    }

    /// Per-thread invocation counter used by `select!` to rotate which
    /// receiver is polled first, so a permanently-ready operation (e.g. a
    /// disconnected channel) cannot starve the other arm across calls.
    #[doc(hidden)]
    pub fn __select_seq() -> u64 {
        SELECT_SEQ.with(|c| {
            let v = c.get();
            c.set(v.wrapping_add(1));
            v
        })
    }
}

/// Polling `select!` over two `recv` operations with a `default` timeout.
///
/// Semantics match crossbeam for this shape: blocks until one receiver is
/// ready (a message or a disconnect), binding the arm variable to
/// `Result<T, RecvError>`; if neither becomes ready within the timeout the
/// `default` arm runs.  Readiness is polled at 100 µs granularity, which
/// is far below the millisecond-scale timeouts the workspace passes.
#[macro_export]
macro_rules! select {
    (
        recv($r1:expr) -> $m1:ident => $a1:expr,
        recv($r2:expr) -> $m2:ident => $a2:expr,
        default($t:expr) => $ad:expr $(,)?
    ) => {{
        let __deadline = ::std::time::Instant::now() + $t;
        let mut __order = $crate::channel::__select_seq();
        loop {
            let __try1 = __order % 2 == 0;
            __order = __order.wrapping_add(1);
            let (__first, __second) = if __try1 { (0u8, 1u8) } else { (1u8, 0u8) };
            let mut __out = ::core::option::Option::None;
            for __which in [__first, __second] {
                if __out.is_some() {
                    break;
                }
                if __which == 0 {
                    // Bind the poll result first so the receiver borrow
                    // ends before the arm body (which may borrow the
                    // receiver's owner mutably) runs.  A single binding
                    // covers both the message and disconnect cases so the
                    // item type is inferred from the receiver.
                    let __polled = $r1.try_recv();
                    if !::core::matches!(
                        __polled,
                        ::core::result::Result::Err($crate::channel::TryRecvError::Empty)
                    ) {
                        let $m1 = __polled.map_err(|_| $crate::channel::RecvError);
                        __out = ::core::option::Option::Some($a1);
                    }
                } else {
                    let __polled = $r2.try_recv();
                    if !::core::matches!(
                        __polled,
                        ::core::result::Result::Err($crate::channel::TryRecvError::Empty)
                    ) {
                        let $m2 = __polled.map_err(|_| $crate::channel::RecvError);
                        __out = ::core::option::Option::Some($a2);
                    }
                }
            }
            if let ::core::option::Option::Some(__v) = __out {
                break __v;
            }
            if ::std::time::Instant::now() >= __deadline {
                // Bind before breaking so a unit default arm (`=> {}`)
                // does not expand to `break ()` (clippy::unused_unit).
                let __default = $ad;
                break __default;
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(100));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = channel::unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
    }

    #[test]
    fn sender_is_sync_and_clone() {
        fn assert_sync_clone<T: Sync + Clone>(_: &T) {}
        let (tx, _rx) = channel::unbounded::<u32>();
        assert_sync_clone(&tx);
    }

    #[test]
    fn select_receives_from_either_arm() {
        let (tx1, rx1) = channel::unbounded::<u32>();
        let (tx2, rx2) = channel::unbounded::<u32>();
        tx2.send(7).unwrap();
        let got = select! {
            recv(rx1) -> msg => msg.ok(),
            recv(rx2) -> msg => msg.ok().map(|v| v + 100),
            default(Duration::from_millis(50)) => None,
        };
        assert_eq!(got, Some(107));
        tx1.send(1).unwrap();
        let got = select! {
            recv(rx1) -> msg => msg.ok(),
            recv(rx2) -> msg => msg.ok().map(|v| v + 100),
            default(Duration::from_millis(50)) => None,
        };
        assert_eq!(got, Some(1));
    }

    #[test]
    fn select_times_out_to_default() {
        let (_tx1, rx1) = channel::unbounded::<u32>();
        let (_tx2, rx2) = channel::unbounded::<u32>();
        let got = select! {
            recv(rx1) -> msg => msg.ok(),
            recv(rx2) -> msg => msg.ok(),
            default(Duration::from_millis(5)) => Some(99),
        };
        assert_eq!(got, Some(99));
    }

    #[test]
    fn select_fires_disconnect_arms_fairly() {
        let (tx1, rx1) = channel::unbounded::<u32>();
        let (tx2, rx2) = channel::unbounded::<u32>();
        drop(tx1);
        tx2.send(3).unwrap();
        drop(tx2);
        // Across repeated calls, both the disconnected arm and the
        // message-bearing arm must fire.
        let mut saw_err1 = false;
        let mut saw_msg2 = false;
        for _ in 0..8 {
            select! {
                recv(rx1) -> msg => if msg.is_err() { saw_err1 = true; },
                recv(rx2) -> msg => if msg.is_ok() { saw_msg2 = true; },
                default(Duration::from_millis(1)) => {},
            }
        }
        assert!(saw_err1 && saw_msg2);
    }
}
