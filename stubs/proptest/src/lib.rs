//! Offline drop-in subset of the `proptest` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the handful of external dependencies are replaced by local
//! stubs implementing exactly the API surface the workspace uses (see
//! `stubs/README.md`).
//!
//! Differences from upstream proptest, deliberately accepted:
//!
//! - **No shrinking.**  A failing case reports its inputs (via the
//!   `prop_assert*` message) but is not minimised.
//! - **Deterministic seeding.**  Each test function derives its seed from
//!   its own name (overridable with `PROPTEST_SEED`), so runs are
//!   reproducible; upstream draws fresh entropy per run.
//! - **Strategies are samplers.**  `Strategy` here is just "generate a
//!   value from an RNG"; there is no value tree.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving all strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Builds a generator for a named test: FNV-1a of the name, XORed
    /// with `PROPTEST_SEED` if that environment variable is set.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.trim().parse::<u64>() {
                h ^= extra;
            }
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi as u64 - lo as u64 + 1)) as usize
    }
}

// ---------------------------------------------------------------------------
// Test-case plumbing
// ---------------------------------------------------------------------------

/// Failure raised by `prop_assert*` (or rejection by `prop_assume`).
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property does not hold.
    Fail(String),
    /// Case rejected (does not count as failure).
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected case with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; this stub never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; rejections simply skip the case.
    pub max_global_rejects: u32,
    /// Accepted for compatibility.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
            max_local_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// A default configuration overriding only the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` (dependent
    /// generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (resampling up to a bound
    /// rather than rejecting the whole case).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}): no accepted value in 1000 draws",
            self.reason
        );
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

// A Vec of strategies samples each element (upstream parity; used to
// build fixed-shape heterogeneous-per-index collections).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Arbitrary bit patterns: exercises NaN and infinities, matching
        // upstream's full-range float generation closely enough for codec
        // round-trip tests.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        const POOL: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '_', '-', '\n', 'é', 'λ', '中', '🦀',
        ];
        POOL[(rng.next_u64() % POOL.len() as u64) as usize]
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Vec<T> {
        let len = rng.usize_in(0, 32);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.usize_in(0, 32);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($s:ident),+);)*) => {$(
        impl<$($s: Arbitrary),+> Arbitrary for ($($s,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($s::arbitrary(rng),)+)
            }
        }
    )*};
}

impl_arbitrary_tuple! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u32>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

// ---------------------------------------------------------------------------
// prop_oneof / Union
// ---------------------------------------------------------------------------

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// collection / option modules
// ---------------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.min, self.size.max);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`weighted`].
    #[derive(Clone, Debug)]
    pub struct Weighted<S> {
        prob: f64,
        inner: S,
    }

    /// `Some(inner)` with probability `prob`, else `None`.
    pub fn weighted<S: Strategy>(prob: f64, inner: S) -> Weighted<S> {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        Weighted { prob, inner }
    }

    /// `Some(inner)` with probability 0.5.
    pub fn of<S: Strategy>(inner: S) -> Weighted<S> {
        weighted(0.5, inner)
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_f64() < self.prob {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn` runs `cases` times with fresh inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident( $($args:tt)* ) $body:block
    )* ) => {$(
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let __strat = $crate::__prop_arg_strats!(@acc () $($args)*);
            for __case in 0..__cfg.cases {
                let $crate::__prop_arg_names!(@acc () $($args)*) =
                    $crate::Strategy::sample(&__strat, &mut __rng);
                // Bound first (not called in place) so the body can use
                // `?` without tripping clippy::redundant_closure_call.
                let __run = || -> $crate::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                };
                let __result: $crate::TestCaseResult = __run();
                match __result {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(__m)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            __case,
                            __m
                        );
                    }
                }
            }
        }
    )*};
}

/// Builds the tuple of strategies for a proptest arg list.  Args are
/// either `name in strategy` or `name: Type` (shorthand for
/// `name in any::<Type>()`).
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_arg_strats {
    (@acc ($($acc:tt)*)) => { ($($acc)*) };
    (@acc ($($acc:tt)*) $n:ident in $s:expr) => {
        $crate::__prop_arg_strats!(@acc ($($acc)* ($s),))
    };
    (@acc ($($acc:tt)*) $n:ident in $s:expr, $($rest:tt)*) => {
        $crate::__prop_arg_strats!(@acc ($($acc)* ($s),) $($rest)*)
    };
    (@acc ($($acc:tt)*) $n:ident : $t:ty) => {
        $crate::__prop_arg_strats!(@acc ($($acc)* $crate::any::<$t>(),))
    };
    (@acc ($($acc:tt)*) $n:ident : $t:ty, $($rest:tt)*) => {
        $crate::__prop_arg_strats!(@acc ($($acc)* $crate::any::<$t>(),) $($rest)*)
    };
}

/// Builds the tuple pattern of binding names for a proptest arg list.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_arg_names {
    (@acc ($($acc:tt)*)) => { ($($acc)*) };
    (@acc ($($acc:tt)*) $n:ident in $s:expr) => {
        $crate::__prop_arg_names!(@acc ($($acc)* $n,))
    };
    (@acc ($($acc:tt)*) $n:ident in $s:expr, $($rest:tt)*) => {
        $crate::__prop_arg_names!(@acc ($($acc)* $n,) $($rest)*)
    };
    (@acc ($($acc:tt)*) $n:ident : $t:ty) => {
        $crate::__prop_arg_names!(@acc ($($acc)* $n,))
    };
    (@acc ($($acc:tt)*) $n:ident : $t:ty, $($rest:tt)*) => {
        $crate::__prop_arg_names!(@acc ($($acc)* $n,) $($rest)*)
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($s)),+];
        $crate::Union::new(__options)
    }};
}

/// Asserts a condition inside a proptest body (fails the case, with
/// inputs reported, rather than panicking outright).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($a),
            stringify!($b),
            __a,
            __b,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($a),
            stringify!($b),
            __a,
            format!($($fmt)*)
        );
    }};
}

/// Rejects the current case unless `cond` holds (does not fail the test).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..50).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 3u32..17) {
            prop_assert!((3..17).contains(&v));
        }

        #[test]
        fn typed_args_sample_any(v: u64, flag: bool) {
            // Both forms bind; nothing to assert beyond type-checking.
            let _ = (v, flag);
        }

        #[test]
        fn map_and_vec_compose(vs in crate::collection::vec(small_even(), 1..8)) {
            prop_assert!(!vs.is_empty() && vs.len() < 8);
            for v in &vs {
                prop_assert_eq!(v % 2, 0);
            }
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }

        #[test]
        fn weighted_option_mixes(vs in crate::collection::vec(crate::option::weighted(0.5, 0u8..5), 64)) {
            let some = vs.iter().filter(|v| v.is_some()).count();
            // With 256 cases of 64 draws at p=0.5, all-Some or all-None
            // would indicate a broken sampler.
            prop_assert!(some > 0 || vs.len() < 8);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case() {
        proptest! {
            #[allow(unused)]
            fn always_fails(v in 0u32..10) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}
