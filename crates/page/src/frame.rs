//! Per-node page frames and software protection state.
//!
//! A real CVM node write-protects pages with `mprotect` and catches
//! SIGSEGV; here the DSM consults [`Protection`] on every access and raises
//! a *software fault* into the protocol engine instead.  The protocol-level
//! behaviour (fault → fetch/upgrade) is identical; only the delivery
//! mechanism differs.

use std::collections::HashMap;

use crate::{Geometry, PageId};

/// Access rights a node currently holds on a page.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Protection {
    /// No valid local copy; any access faults.
    #[default]
    Invalid,
    /// Valid read-only copy; writes fault.
    Read,
    /// Valid writable copy.
    Write,
}

impl Protection {
    /// Returns `true` if reads are permitted.
    #[inline]
    pub fn readable(self) -> bool {
        !matches!(self, Protection::Invalid)
    }

    /// Returns `true` if writes are permitted.
    #[inline]
    pub fn writable(self) -> bool {
        matches!(self, Protection::Write)
    }
}

/// One page frame: the local copy of a shared page.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Page contents, one `u64` per word.
    pub data: Box<[u64]>,
    /// Current access rights.
    pub prot: Protection,
    /// Twin (pristine copy made at the first write of an interval) used by
    /// the multi-writer protocol to compute diffs.
    pub twin: Option<Box<[u64]>>,
}

impl Frame {
    /// Creates a zero-filled frame with the given protection.
    pub fn new(page_words: usize, prot: Protection) -> Self {
        Frame {
            data: vec![0; page_words].into_boxed_slice(),
            prot,
            twin: None,
        }
    }

    /// Creates a frame from received page contents.
    pub fn from_data(data: Vec<u64>, prot: Protection) -> Self {
        Frame {
            data: data.into_boxed_slice(),
            prot,
            twin: None,
        }
    }

    /// Makes a twin of the current contents if one is not already present.
    pub fn ensure_twin(&mut self) {
        if self.twin.is_none() {
            self.twin = Some(self.data.clone());
        }
    }

    /// Drops the twin, if any.
    pub fn discard_twin(&mut self) {
        self.twin = None;
    }
}

/// The set of page frames a node currently holds.
#[derive(Debug)]
pub struct PageStore {
    geometry: Geometry,
    frames: HashMap<PageId, Frame>,
}

impl PageStore {
    /// Creates an empty store.
    pub fn new(geometry: Geometry) -> Self {
        PageStore {
            geometry,
            frames: HashMap::new(),
        }
    }

    /// The store's page geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Current protection of `page` ([`Protection::Invalid`] if absent).
    pub fn protection(&self, page: PageId) -> Protection {
        self.frames
            .get(&page)
            .map_or(Protection::Invalid, |f| f.prot)
    }

    /// Immutable access to a frame.
    pub fn frame(&self, page: PageId) -> Option<&Frame> {
        self.frames.get(&page)
    }

    /// Mutable access to a frame.
    pub fn frame_mut(&mut self, page: PageId) -> Option<&mut Frame> {
        self.frames.get_mut(&page)
    }

    /// Installs (or replaces) a frame for `page`.
    pub fn install(&mut self, page: PageId, frame: Frame) {
        assert_eq!(
            frame.data.len(),
            self.geometry.page_words,
            "installing frame of wrong size"
        );
        self.frames.insert(page, frame);
    }

    /// Installs a zero-filled frame (used by the page's home node).
    pub fn install_zeroed(&mut self, page: PageId, prot: Protection) {
        let words = self.geometry.page_words;
        self.frames.insert(page, Frame::new(words, prot));
    }

    /// Invalidates `page`: drops rights but keeps the (stale) data around.
    ///
    /// LRC invalidates lazily at acquires; keeping the stale data mirrors a
    /// real implementation where the page stays mapped but protected.
    pub fn invalidate(&mut self, page: PageId) {
        if let Some(f) = self.frames.get_mut(&page) {
            f.prot = Protection::Invalid;
            f.twin = None;
        }
    }

    /// Sets the protection of an existing frame.
    ///
    /// # Panics
    ///
    /// Panics if the node holds no frame for `page`.
    pub fn protect(&mut self, page: PageId, prot: Protection) {
        self.frames
            .get_mut(&page)
            .expect("protect() on absent frame")
            .prot = prot;
    }

    /// Reads word `word` of `page`.
    ///
    /// # Panics
    ///
    /// Panics if the frame is absent or not readable — the DSM must fault
    /// and fetch first.
    #[inline]
    pub fn read_word(&self, page: PageId, word: usize) -> u64 {
        let f = self.frames.get(&page).expect("read of absent frame");
        assert!(f.prot.readable(), "read of unreadable frame {page:?}");
        f.data[word]
    }

    /// Writes word `word` of `page`.
    ///
    /// # Panics
    ///
    /// Panics if the frame is absent or not writable — the DSM must fault
    /// and obtain write rights first.
    #[inline]
    pub fn write_word(&mut self, page: PageId, word: usize, value: u64) {
        let f = self.frames.get_mut(&page).expect("write of absent frame");
        assert!(f.prot.writable(), "write of non-writable frame {page:?}");
        f.data[word] = value;
    }

    /// Iterates over resident pages.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.frames.keys().copied()
    }

    /// Number of resident frames.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> PageStore {
        PageStore::new(Geometry::default())
    }

    #[test]
    fn absent_page_is_invalid() {
        let s = store();
        assert_eq!(s.protection(PageId(0)), Protection::Invalid);
        assert!(s.frame(PageId(0)).is_none());
    }

    #[test]
    fn install_read_write_roundtrip() {
        let mut s = store();
        s.install_zeroed(PageId(3), Protection::Write);
        s.write_word(PageId(3), 17, 0xdead);
        assert_eq!(s.read_word(PageId(3), 17), 0xdead);
        assert_eq!(s.read_word(PageId(3), 16), 0);
    }

    #[test]
    fn invalidate_keeps_stale_data_but_blocks_access() {
        let mut s = store();
        s.install_zeroed(PageId(1), Protection::Write);
        s.write_word(PageId(1), 0, 7);
        s.invalidate(PageId(1));
        assert_eq!(s.protection(PageId(1)), Protection::Invalid);
        // Stale contents retained under the covers.
        assert_eq!(s.frame(PageId(1)).unwrap().data[0], 7);
    }

    #[test]
    #[should_panic(expected = "non-writable")]
    fn write_to_readonly_panics() {
        let mut s = store();
        s.install_zeroed(PageId(0), Protection::Read);
        s.write_word(PageId(0), 0, 1);
    }

    #[test]
    #[should_panic(expected = "unreadable")]
    fn read_of_invalid_panics() {
        let mut s = store();
        s.install_zeroed(PageId(0), Protection::Invalid);
        let _ = s.read_word(PageId(0), 0);
    }

    #[test]
    fn twin_lifecycle() {
        let mut f = Frame::new(8, Protection::Write);
        f.data[2] = 5;
        f.ensure_twin();
        f.data[2] = 9;
        assert_eq!(f.twin.as_ref().unwrap()[2], 5);
        // Second ensure_twin must not clobber the original twin.
        f.ensure_twin();
        assert_eq!(f.twin.as_ref().unwrap()[2], 5);
        f.discard_twin();
        assert!(f.twin.is_none());
    }

    #[test]
    fn protection_predicates() {
        assert!(!Protection::Invalid.readable());
        assert!(Protection::Read.readable());
        assert!(!Protection::Read.writable());
        assert!(Protection::Write.readable());
        assert!(Protection::Write.writable());
    }
}
