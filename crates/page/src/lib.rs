//! Paged global address space for the CVM software DSM.
//!
//! CVM exposes a single shared data segment to all processes, backed by
//! per-node page frames and kept coherent by the LRC protocol in `cvm-dsm`.
//! This crate provides the memory substrate:
//!
//! * [`Geometry`] — word and page sizing, address arithmetic;
//! * [`GAddr`]/[`PageId`] — global byte addresses and page ids;
//! * [`Bitmap`]/[`PageBitmaps`] — the word-granularity read/write access
//!   bitmaps set by the ATOM-inserted instrumentation (paper §4) and
//!   compared by the race detector;
//! * [`Frame`]/[`PageStore`] — per-node page frames with software
//!   protection state (standing in for `mprotect`-driven faults);
//! * [`Diff`] — run-length word diffs for the multi-writer protocol;
//! * [`SharedAlloc`]/[`SegmentMap`] — the shared-segment allocator, which
//!   doubles as the symbol table used to turn racy addresses back into
//!   variable names (paper §6.1).
//!
//! # Examples
//!
//! Word-granularity bitmaps distinguish false sharing from true sharing:
//!
//! ```
//! use cvm_page::Bitmap;
//!
//! let mut p0_writes = Bitmap::new(512);
//! let mut p1_writes = Bitmap::new(512);
//! p0_writes.set(4);
//! p1_writes.set(5);                          // Same page, different word.
//! assert!(!p0_writes.overlaps(&p1_writes));  // False sharing: no race.
//! p1_writes.set(4);
//! assert_eq!(p0_writes.overlap_words(&p1_writes).collect::<Vec<_>>(), vec![4]);
//! ```
//!
//! Named allocations symbolize race addresses:
//!
//! ```
//! use cvm_page::{Geometry, SharedAlloc};
//!
//! let mut alloc = SharedAlloc::new(Geometry::default(), 1 << 20);
//! let bound = alloc.alloc("MinTourLen", 8).unwrap();
//! let map = alloc.into_map();
//! assert_eq!(map.symbolize(bound), "MinTourLen");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod bitmap;
mod diff;
mod frame;
mod geometry;

pub use alloc::{AllocError, SegmentInfo, SegmentMap, SharedAlloc};
pub use bitmap::{Bitmap, OverlapChunks, PageBitmaps};
pub use diff::Diff;
pub use frame::{Frame, PageStore, Protection};
pub use geometry::{GAddr, Geometry, PageId, SHARED_BASE, WORD_BYTES};
