//! Shared-segment allocation and address symbolization.
//!
//! All CVM shared memory is dynamically allocated from one segment — the
//! fact the instrumentation pass exploits to prune accesses to statically
//! allocated data (paper §5.1).  Allocations are *named*, which lets race
//! reports be symbolized back to `variable + offset` the way the paper
//! combines segment addresses with symbol tables (§6.1).

use std::fmt;

use crate::{GAddr, Geometry, PageId, SHARED_BASE, WORD_BYTES};

/// Error returned when the shared segment is exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocError {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes remaining in the segment.
    pub remaining: u64,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shared segment exhausted: requested {} bytes, {} remaining",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for AllocError {}

/// Metadata of one named allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Allocation name (a variable name, e.g. `"MinTourLen"`).
    pub name: String,
    /// First byte address.
    pub base: GAddr,
    /// Length in bytes.
    pub len: u64,
}

impl SegmentInfo {
    /// Returns `true` if `addr` falls inside this allocation.
    pub fn contains(&self, addr: GAddr) -> bool {
        addr.0 >= self.base.0 && addr.0 < self.base.0 + self.len
    }
}

/// Bump allocator over the shared segment.
///
/// Deterministic and append-only: the same allocation sequence always
/// produces the same addresses, which keeps multi-node setups trivially
/// consistent (every node performs the same setup allocations) and makes
/// race reports reproducible across runs.
#[derive(Debug, Clone)]
pub struct SharedAlloc {
    geometry: Geometry,
    next: u64,
    limit: u64,
    segments: Vec<SegmentInfo>,
}

impl SharedAlloc {
    /// Creates an allocator over a shared segment of `capacity_bytes`.
    pub fn new(geometry: Geometry, capacity_bytes: u64) -> Self {
        SharedAlloc {
            geometry,
            next: SHARED_BASE,
            limit: SHARED_BASE + capacity_bytes,
            segments: Vec::new(),
        }
    }

    /// Allocates `len` bytes under `name`, word-aligned.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the segment cannot fit the request.
    pub fn alloc(&mut self, name: &str, len: u64) -> Result<GAddr, AllocError> {
        self.alloc_aligned(name, len, WORD_BYTES)
    }

    /// Allocates `len` bytes under `name`, aligned to the next page boundary.
    ///
    /// Page-aligned allocations let applications avoid false sharing between
    /// data structures, exactly as the original benchmarks laid out one row
    /// per VM page.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the segment cannot fit the request.
    pub fn alloc_page_aligned(&mut self, name: &str, len: u64) -> Result<GAddr, AllocError> {
        self.alloc_aligned(name, len, self.geometry.page_bytes())
    }

    fn alloc_aligned(&mut self, name: &str, len: u64, align: u64) -> Result<GAddr, AllocError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = self.next.next_multiple_of(align);
        let padded = len.max(1).next_multiple_of(WORD_BYTES);
        if base + padded > self.limit {
            return Err(AllocError {
                requested: padded,
                remaining: self.limit.saturating_sub(self.next),
            });
        }
        self.next = base + padded;
        let info = SegmentInfo {
            name: name.to_string(),
            base: GAddr(base),
            len: padded,
        };
        self.segments.push(info);
        Ok(GAddr(base))
    }

    /// Total bytes allocated so far (including alignment padding).
    pub fn used_bytes(&self) -> u64 {
        self.next - SHARED_BASE
    }

    /// Number of pages touched by allocations so far.
    pub fn used_pages(&self) -> u32 {
        (self.used_bytes().div_ceil(self.geometry.page_bytes())) as u32
    }

    /// Highest page id in use, if any allocation was made.
    pub fn last_page(&self) -> Option<PageId> {
        let pages = self.used_pages();
        pages.checked_sub(1).map(PageId)
    }

    /// Finishes allocation, producing the symbol map.
    pub fn into_map(self) -> SegmentMap {
        SegmentMap {
            segments: self.segments,
            used: self.next - SHARED_BASE,
        }
    }

    /// The allocations made so far.
    pub fn segments(&self) -> &[SegmentInfo] {
        &self.segments
    }
}

/// Immutable map from shared addresses back to named allocations.
#[derive(Debug, Clone, Default)]
pub struct SegmentMap {
    segments: Vec<SegmentInfo>,
    used: u64,
}

impl SegmentMap {
    /// Finds the allocation containing `addr`, with the byte offset into it.
    pub fn resolve(&self, addr: GAddr) -> Option<(&SegmentInfo, u64)> {
        // Segments are sorted by base (bump allocation); binary search.
        let idx = self
            .segments
            .partition_point(|s| s.base.0 + s.len <= addr.0);
        let seg = self.segments.get(idx)?;
        seg.contains(addr).then(|| (seg, addr.0 - seg.base.0))
    }

    /// Renders `addr` as `name+offset`, or the raw address if unmapped.
    pub fn symbolize(&self, addr: GAddr) -> String {
        match self.resolve(addr) {
            Some((seg, 0)) => seg.name.clone(),
            Some((seg, off)) => format!("{}+0x{:x}", seg.name, off),
            None => format!("{addr}"),
        }
    }

    /// Total shared bytes in use.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// All named allocations.
    pub fn segments(&self) -> &[SegmentInfo] {
        &self.segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> SharedAlloc {
        SharedAlloc::new(Geometry::default(), 1 << 20)
    }

    #[test]
    fn bump_allocation_is_contiguous_and_aligned() {
        let mut a = alloc();
        let x = a.alloc("x", 8).unwrap();
        let y = a.alloc("y", 12).unwrap();
        let z = a.alloc("z", 8).unwrap();
        assert_eq!(x.0, SHARED_BASE);
        assert_eq!(y.0, SHARED_BASE + 8);
        // 12 bytes pads to 16.
        assert_eq!(z.0, SHARED_BASE + 24);
        assert_eq!(a.used_bytes(), 32);
    }

    #[test]
    fn page_aligned_allocation_skips_to_boundary() {
        let mut a = alloc();
        let _ = a.alloc("small", 8).unwrap();
        let big = a.alloc_page_aligned("grid", 4096).unwrap();
        assert_eq!(big.0, SHARED_BASE + 4096);
        assert_eq!(a.used_pages(), 2);
        assert_eq!(a.last_page(), Some(PageId(1)));
    }

    #[test]
    fn exhaustion_returns_error() {
        let mut a = SharedAlloc::new(Geometry::default(), 64);
        assert!(a.alloc("fits", 64).is_ok());
        let err = a.alloc("nope", 8).unwrap_err();
        assert_eq!(err.remaining, 0);
        assert_eq!(err.requested, 8);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn resolve_and_symbolize() {
        let mut a = alloc();
        let x = a.alloc("bound", 8).unwrap();
        let arr = a.alloc("forces", 4096).unwrap();
        let map = a.into_map();
        assert_eq!(map.symbolize(x), "bound");
        assert_eq!(map.symbolize(arr.offset(16)), "forces+0x10");
        let (seg, off) = map.resolve(arr.offset(4088)).unwrap();
        assert_eq!(seg.name, "forces");
        assert_eq!(off, 4088);
        // One past the end of the last segment is unmapped.
        assert!(map.resolve(arr.offset(4096)).is_none());
        assert_eq!(
            map.symbolize(arr.offset(4096)),
            format!("{}", arr.offset(4096))
        );
    }

    #[test]
    fn zero_len_allocation_occupies_one_word() {
        let mut a = alloc();
        let x = a.alloc("empty", 0).unwrap();
        let y = a.alloc("next", 8).unwrap();
        assert_eq!(y.0 - x.0, 8);
    }

    #[test]
    fn used_pages_counts_partial_pages() {
        let mut a = alloc();
        let _ = a.alloc("tiny", 8).unwrap();
        assert_eq!(a.used_pages(), 1);
        let _ = a.alloc_page_aligned("two", 8192).unwrap();
        assert_eq!(a.used_pages(), 3);
    }
}
