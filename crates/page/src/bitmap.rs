//! Word-granularity access bitmaps.
//!
//! The instrumentation inserted by the ATOM pass sets one bit per accessed
//! word in a per-page bitmap (paper §4).  At barriers, the race detector
//! retrieves bitmaps for pages on the check list and intersects them; a
//! non-empty intersection of a write bitmap with another interval's read or
//! write bitmap is a data race, while page overlap without word overlap is
//! false sharing.

use core::fmt;

/// A fixed-width bitset, one bit per word of a page.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitmap {
    bits: Vec<u64>,
    nbits: usize,
}

impl Bitmap {
    /// Creates an empty bitmap covering `nbits` words.
    pub fn new(nbits: usize) -> Self {
        Bitmap {
            bits: vec![0; nbits.div_ceil(64)],
            nbits,
        }
    }

    /// Number of bits (words) covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// Returns `true` if the bitmap covers zero words.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.nbits, "bit {i} out of range ({})", self.nbits);
        self.bits[i / 64] |= 1u64 << (i % 64);
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.nbits, "bit {i} out of range ({})", self.nbits);
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Returns `true` if any bit is set.
    pub fn any(&self) -> bool {
        self.bits.iter().any(|&w| w != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if `self` and `other` share any set bit.
    ///
    /// This is the constant-time (in page size) bitmap comparison of the
    /// paper's step 5.
    ///
    /// # Panics
    ///
    /// Panics if the bitmaps have different widths.
    pub fn overlaps(&self, other: &Bitmap) -> bool {
        assert_eq!(self.nbits, other.nbits, "comparing bitmaps of different widths");
        self.bits.iter().zip(&other.bits).any(|(a, b)| a & b != 0)
    }

    /// Iterates over the indices of bits set in both `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the bitmaps have different widths.
    pub fn overlap_words<'a>(&'a self, other: &'a Bitmap) -> impl Iterator<Item = usize> + 'a {
        assert_eq!(self.nbits, other.nbits, "comparing bitmaps of different widths");
        self.bits
            .iter()
            .zip(&other.bits)
            .enumerate()
            .flat_map(|(wi, (a, b))| {
                let mut bits = a & b;
                core::iter::from_fn(move || {
                    if bits == 0 {
                        None
                    } else {
                        let tz = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        Some(wi * 64 + tz)
                    }
                })
            })
    }

    /// Iterates over the indices of set bits.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            core::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Unions `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the bitmaps have different widths.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.nbits, other.nbits, "merging bitmaps of different widths");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Encoded size in bytes on the wire (raw bit words, no compression).
    ///
    /// The paper transfers raw bitmaps in the extra barrier round; keeping
    /// the size exact lets the bandwidth accounting in `cvm-net` reproduce
    /// the paper's message-overhead metric.
    pub fn wire_bytes(&self) -> u64 {
        self.bits.len() as u64 * 8
    }

    /// Raw backing words (for wire encoding).
    pub fn raw(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a bitmap from raw backing words.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is not exactly the backing length for `nbits`.
    pub fn from_raw(nbits: usize, raw: Vec<u64>) -> Self {
        assert_eq!(raw.len(), nbits.div_ceil(64), "raw length mismatch");
        Bitmap { bits: raw, nbits }
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap[{}/{} set]", self.count(), self.nbits)
    }
}

/// The read and write access bitmaps an interval keeps for one page.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PageBitmaps {
    /// Words read during the interval.
    pub read: Bitmap,
    /// Words written during the interval.
    pub write: Bitmap,
}

impl PageBitmaps {
    /// Creates empty bitmaps for a page of `page_words` words.
    pub fn new(page_words: usize) -> Self {
        PageBitmaps {
            read: Bitmap::new(page_words),
            write: Bitmap::new(page_words),
        }
    }

    /// Returns `true` if either bitmap has a bit set.
    pub fn any(&self) -> bool {
        self.read.any() || self.write.any()
    }

    /// Encoded wire size of both bitmaps.
    pub fn wire_bytes(&self) -> u64 {
        self.read.wire_bytes() + self.write.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitmap::new(512);
        assert!(!b.any());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(511);
        for i in 0..512 {
            assert_eq!(b.get(i), matches!(i, 0 | 63 | 64 | 511), "bit {i}");
        }
        assert_eq!(b.count(), 4);
    }

    #[test]
    fn overlaps_and_overlap_words() {
        let mut a = Bitmap::new(256);
        let mut b = Bitmap::new(256);
        a.set(10);
        a.set(100);
        a.set(200);
        b.set(100);
        b.set(201);
        assert!(a.overlaps(&b));
        let common: Vec<usize> = a.overlap_words(&b).collect();
        assert_eq!(common, vec![100]);
    }

    #[test]
    fn disjoint_bitmaps_do_not_overlap() {
        let mut a = Bitmap::new(128);
        let mut b = Bitmap::new(128);
        a.set(1);
        b.set(2);
        assert!(!a.overlaps(&b));
        assert_eq!(a.overlap_words(&b).count(), 0);
    }

    #[test]
    fn union_accumulates() {
        let mut a = Bitmap::new(64);
        let mut b = Bitmap::new(64);
        a.set(3);
        b.set(60);
        a.union_with(&b);
        assert!(a.get(3) && a.get(60));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn iter_set_yields_sorted_indices() {
        let mut b = Bitmap::new(300);
        for i in [7, 64, 65, 128, 299] {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_set().collect();
        assert_eq!(got, vec![7, 64, 65, 128, 299]);
    }

    #[test]
    fn raw_roundtrip() {
        let mut b = Bitmap::new(100);
        b.set(99);
        let r = Bitmap::from_raw(100, b.raw().to_vec());
        assert_eq!(b, r);
    }

    #[test]
    fn clear_resets() {
        let mut b = Bitmap::new(64);
        b.set(5);
        b.clear();
        assert!(!b.any());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut b = Bitmap::new(10);
        b.set(10);
    }

    #[test]
    fn wire_bytes_counts_backing_words() {
        assert_eq!(Bitmap::new(512).wire_bytes(), 64);
        assert_eq!(Bitmap::new(65).wire_bytes(), 16);
        assert_eq!(PageBitmaps::new(512).wire_bytes(), 128);
    }
}
