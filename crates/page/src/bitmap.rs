//! Word-granularity access bitmaps.
//!
//! The instrumentation inserted by the ATOM pass sets one bit per accessed
//! word in a per-page bitmap (paper §4).  At barriers, the race detector
//! retrieves bitmaps for pages on the check list and intersects them; a
//! non-empty intersection of a write bitmap with another interval's read or
//! write bitmap is a data race, while page overlap without word overlap is
//! false sharing.
//!
//! Each bitmap additionally maintains a one-`u64` *coarse summary word*:
//! bit `j` of the summary is set iff any backing word in block `j` is
//! non-zero (blocks partition the backing words evenly, one word per block
//! for pages up to 32 KB).  Intersections of disjoint bitmaps — the common
//! case, since page overlap is usually false sharing on different words —
//! short-circuit on `summary & summary == 0` without touching the backing
//! vectors at all.

use core::fmt;

/// A fixed-width bitset, one bit per word of a page.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitmap {
    bits: Vec<u64>,
    nbits: usize,
    /// Coarse summary: bit `j` set iff some word of block `j` is non-zero.
    ///
    /// The invariant is *exact* (no stale bits): bits are only ever set
    /// individually and cleared wholesale, so the summary never
    /// over-approximates.
    summary: u64,
}

impl Bitmap {
    /// Creates an empty bitmap covering `nbits` words.
    pub fn new(nbits: usize) -> Self {
        Bitmap {
            bits: vec![0; nbits.div_ceil(64)],
            nbits,
            summary: 0,
        }
    }

    /// Backing words per summary block (1 for bitmaps of up to 4096 bits).
    #[inline]
    fn block(&self) -> usize {
        self.bits.len().div_ceil(64).max(1)
    }

    /// Number of bits (words) covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// Returns `true` if the bitmap covers zero words.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// The coarse summary word (one bit per block of backing words).
    #[inline]
    pub fn summary(&self) -> u64 {
        self.summary
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.nbits, "bit {i} out of range ({})", self.nbits);
        self.bits[i / 64] |= 1u64 << (i % 64);
        self.summary |= 1u64 << ((i / 64) / self.block());
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.nbits, "bit {i} out of range ({})", self.nbits);
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.summary = 0;
    }

    /// Returns `true` if any bit is set.
    #[inline]
    pub fn any(&self) -> bool {
        self.summary != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if `self` and `other` share any set bit.
    ///
    /// This is the constant-time (in page size) bitmap comparison of the
    /// paper's step 5.  Disjoint summaries decide without reading the
    /// backing vectors; otherwise only the blocks both summaries flag are
    /// scanned.
    ///
    /// # Panics
    ///
    /// Panics if the bitmaps have different widths.
    pub fn overlaps(&self, other: &Bitmap) -> bool {
        assert_eq!(
            self.nbits, other.nbits,
            "comparing bitmaps of different widths"
        );
        let common = self.summary & other.summary;
        if common == 0 {
            return false;
        }
        if self.block() == 1 {
            // One backing word per summary bit: visit exactly the flagged
            // words.
            let mut blocks = common;
            while blocks != 0 {
                let wi = blocks.trailing_zeros() as usize;
                blocks &= blocks - 1;
                if self.bits[wi] & other.bits[wi] != 0 {
                    return true;
                }
            }
            false
        } else {
            self.bits.iter().zip(&other.bits).any(|(a, b)| a & b != 0)
        }
    }

    /// Number of bits set in both `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the bitmaps have different widths.
    pub fn count_overlap(&self, other: &Bitmap) -> usize {
        assert_eq!(
            self.nbits, other.nbits,
            "comparing bitmaps of different widths"
        );
        if self.summary & other.summary == 0 {
            return 0;
        }
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over `(backing-word index, intersection mask)` for every
    /// backing word where `self` and `other` share bits (mask is non-zero).
    ///
    /// This is the chunk-granularity view the word-level race comparison
    /// uses: callers combine masks across read/write bitmaps without
    /// re-deriving word indices bit by bit.
    ///
    /// Behind the summary short-circuit, the walk is a 4-lane SWAR kernel:
    /// backing words are ANDed four at a time (`u64x4`), the four lane
    /// results are ORed into one combined word, and a zero combined word
    /// skips the whole chunk with a single branch — the common false-sharing
    /// case where page overlap carries no word overlap.  The yielded
    /// sequence is identical, word for word, to the scalar walk
    /// ([`Bitmap::overlap_chunks_scalar`], the property-test oracle).
    ///
    /// # Panics
    ///
    /// Panics if the bitmaps have different widths.
    pub fn overlap_chunks<'a>(&'a self, other: &'a Bitmap) -> OverlapChunks<'a> {
        assert_eq!(
            self.nbits, other.nbits,
            "comparing bitmaps of different widths"
        );
        // Disjoint summaries: skip the scan entirely (empty sub-slice).
        let n = if self.summary & other.summary == 0 {
            0
        } else {
            self.bits.len()
        };
        OverlapChunks {
            a: &self.bits[..n],
            b: &other.bits[..n],
            next: 0,
            base: 0,
            lanes: [0; 4],
            live: 0,
        }
    }

    /// Reference scalar AND-walk: yields exactly the sequence of
    /// [`Bitmap::overlap_chunks`], one backing word at a time, behind the
    /// same summary guard.  Kept as the oracle the SWAR kernel is
    /// property-tested against (and as the readable specification of what
    /// the kernel computes).
    ///
    /// # Panics
    ///
    /// Panics if the bitmaps have different widths.
    pub fn overlap_chunks_scalar<'a>(
        &'a self,
        other: &'a Bitmap,
    ) -> impl Iterator<Item = (usize, u64)> + 'a {
        assert_eq!(
            self.nbits, other.nbits,
            "comparing bitmaps of different widths"
        );
        let n = if self.summary & other.summary == 0 {
            0
        } else {
            self.bits.len()
        };
        self.bits[..n]
            .iter()
            .zip(&other.bits[..n])
            .enumerate()
            .filter_map(|(wi, (a, b))| {
                let m = a & b;
                (m != 0).then_some((wi, m))
            })
    }

    /// Iterates over the indices of bits set in both `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the bitmaps have different widths.
    pub fn overlap_words<'a>(&'a self, other: &'a Bitmap) -> impl Iterator<Item = usize> + 'a {
        self.overlap_chunks(other).flat_map(|(wi, mut bits)| {
            core::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Iterates over the indices of set bits.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            core::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Unions `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the bitmaps have different widths.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(
            self.nbits, other.nbits,
            "merging bitmaps of different widths"
        );
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
        // Same width implies the same block size, so summaries align.
        self.summary |= other.summary;
    }

    /// Encoded size in bytes on the wire (raw bit words, no compression).
    ///
    /// The paper transfers raw bitmaps in the extra barrier round; keeping
    /// the size exact lets the bandwidth accounting in `cvm-net` reproduce
    /// the paper's message-overhead metric.  The summary word is local
    /// acceleration state and never crosses the wire.
    pub fn wire_bytes(&self) -> u64 {
        self.bits.len() as u64 * 8
    }

    /// Raw backing words (for wire encoding).
    pub fn raw(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a bitmap from raw backing words (recomputing the summary).
    ///
    /// # Panics
    ///
    /// Panics if `raw` is not exactly the backing length for `nbits`.
    pub fn from_raw(nbits: usize, raw: Vec<u64>) -> Self {
        assert_eq!(raw.len(), nbits.div_ceil(64), "raw length mismatch");
        let mut bm = Bitmap {
            bits: raw,
            nbits,
            summary: 0,
        };
        let block = bm.block();
        for (wi, w) in bm.bits.iter().enumerate() {
            if *w != 0 {
                bm.summary |= 1u64 << (wi / block);
            }
        }
        bm
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap[{}/{} set]", self.count(), self.nbits)
    }
}

/// Iterator returned by [`Bitmap::overlap_chunks`]: a 4-lane SWAR AND-walk
/// over two bitmaps' backing words.
///
/// Words are processed in `u64x4` chunks; a chunk whose four AND lanes OR
/// to zero is skipped with one branch, and the non-zero lanes of a hit
/// chunk are drained in ascending word order, so the yielded sequence is
/// identical to the scalar word-at-a-time walk.
pub struct OverlapChunks<'a> {
    a: &'a [u64],
    b: &'a [u64],
    /// Next backing-word index the chunked scan has not yet consumed.
    next: usize,
    /// Base word index of the chunk currently being drained.
    base: usize,
    /// AND lanes of the current chunk.
    lanes: [u64; 4],
    /// Bit `i` set ⇔ `lanes[i]` is non-zero and not yet yielded.
    live: u8,
}

impl Iterator for OverlapChunks<'_> {
    type Item = (usize, u64);

    fn next(&mut self) -> Option<(usize, u64)> {
        loop {
            // Drain the non-zero lanes of the current chunk first.
            if self.live != 0 {
                let i = self.live.trailing_zeros() as usize;
                self.live &= self.live - 1;
                return Some((self.base + i, self.lanes[i]));
            }
            if self.next + 4 <= self.a.len() {
                let w = self.next;
                self.next += 4;
                let m0 = self.a[w] & self.b[w];
                let m1 = self.a[w + 1] & self.b[w + 1];
                let m2 = self.a[w + 2] & self.b[w + 2];
                let m3 = self.a[w + 3] & self.b[w + 3];
                if m0 | m1 | m2 | m3 == 0 {
                    continue;
                }
                self.base = w;
                self.lanes = [m0, m1, m2, m3];
                self.live = u8::from(m0 != 0)
                    | u8::from(m1 != 0) << 1
                    | u8::from(m2 != 0) << 2
                    | u8::from(m3 != 0) << 3;
                continue;
            }
            // Scalar tail: fewer than four words remain.
            while self.next < self.a.len() {
                let w = self.next;
                self.next += 1;
                let m = self.a[w] & self.b[w];
                if m != 0 {
                    return Some((w, m));
                }
            }
            return None;
        }
    }
}

/// The read and write access bitmaps an interval keeps for one page.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PageBitmaps {
    /// Words read during the interval.
    pub read: Bitmap,
    /// Words written during the interval.
    pub write: Bitmap,
}

impl PageBitmaps {
    /// Creates empty bitmaps for a page of `page_words` words.
    pub fn new(page_words: usize) -> Self {
        PageBitmaps {
            read: Bitmap::new(page_words),
            write: Bitmap::new(page_words),
        }
    }

    /// Returns `true` if either bitmap has a bit set.
    pub fn any(&self) -> bool {
        self.read.any() || self.write.any()
    }

    /// Encoded wire size of both bitmaps.
    pub fn wire_bytes(&self) -> u64 {
        self.read.wire_bytes() + self.write.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recomputes what the summary word must be from the backing words.
    fn expected_summary(b: &Bitmap) -> u64 {
        let block = b.raw().len().div_ceil(64).max(1);
        let mut s = 0u64;
        for (wi, w) in b.raw().iter().enumerate() {
            if *w != 0 {
                s |= 1 << (wi / block);
            }
        }
        s
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitmap::new(512);
        assert!(!b.any());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(511);
        for i in 0..512 {
            assert_eq!(b.get(i), matches!(i, 0 | 63 | 64 | 511), "bit {i}");
        }
        assert_eq!(b.count(), 4);
        assert_eq!(b.summary(), expected_summary(&b));
    }

    #[test]
    fn overlaps_and_overlap_words() {
        let mut a = Bitmap::new(256);
        let mut b = Bitmap::new(256);
        a.set(10);
        a.set(100);
        a.set(200);
        b.set(100);
        b.set(201);
        assert!(a.overlaps(&b));
        let common: Vec<usize> = a.overlap_words(&b).collect();
        assert_eq!(common, vec![100]);
        assert_eq!(a.count_overlap(&b), 1);
    }

    #[test]
    fn disjoint_bitmaps_do_not_overlap() {
        let mut a = Bitmap::new(128);
        let mut b = Bitmap::new(128);
        a.set(1);
        b.set(2);
        assert!(!a.overlaps(&b));
        assert_eq!(a.overlap_words(&b).count(), 0);
        assert_eq!(a.count_overlap(&b), 0);
        assert_eq!(a.overlap_chunks(&b).count(), 0);
    }

    #[test]
    fn summary_short_circuits_different_blocks() {
        // Bits in different backing words: summaries are disjoint, so the
        // intersection decides without scanning.
        let mut a = Bitmap::new(512);
        let mut b = Bitmap::new(512);
        a.set(3);
        b.set(400);
        assert_eq!(a.summary() & b.summary(), 0);
        assert!(!a.overlaps(&b));
        // Same block, different bits: summaries collide but words decide.
        let mut c = Bitmap::new(512);
        c.set(4);
        assert_ne!(a.summary() & c.summary(), 0);
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn summary_invariant_after_mutations() {
        let mut b = Bitmap::new(300);
        for i in [0, 64, 65, 190, 299] {
            b.set(i);
            assert_eq!(b.summary(), expected_summary(&b), "after set({i})");
        }
        let mut other = Bitmap::new(300);
        other.set(128);
        b.union_with(&other);
        assert_eq!(b.summary(), expected_summary(&b), "after union");
        b.clear();
        assert_eq!(b.summary(), 0);
        assert!(!b.any());
    }

    #[test]
    fn summary_on_wide_bitmaps_groups_blocks() {
        // 8192 bits = 128 backing words = 2 words per summary block.
        let mut b = Bitmap::new(8192);
        b.set(0); // word 0, block 0
        b.set(8191); // word 127, block 63
        assert_eq!(b.summary(), (1 << 0) | (1 << 63));
        let mut c = Bitmap::new(8192);
        c.set(64); // word 1, block 0 — shares block 0 with b, not word 0.
        assert_ne!(b.summary() & c.summary(), 0);
        assert!(!b.overlaps(&c));
        assert_eq!(b.count_overlap(&c), 0);
    }

    #[test]
    fn empty_bitmap_is_inert() {
        let a = Bitmap::new(0);
        let b = Bitmap::new(0);
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert!(!a.any());
        assert_eq!(a.count(), 0);
        assert!(!a.overlaps(&b));
        assert_eq!(a.count_overlap(&b), 0);
        assert_eq!(a.overlap_words(&b).count(), 0);
        assert_eq!(a.wire_bytes(), 0);
        let r = Bitmap::from_raw(0, Vec::new());
        assert_eq!(a, r);
    }

    #[test]
    fn non_multiple_of_64_widths() {
        for nbits in [1, 63, 65, 100, 127, 129] {
            let mut b = Bitmap::new(nbits);
            b.set(nbits - 1);
            assert!(b.get(nbits - 1));
            assert_eq!(b.count(), 1);
            assert_eq!(b.summary(), expected_summary(&b), "nbits={nbits}");
            let r = Bitmap::from_raw(nbits, b.raw().to_vec());
            assert_eq!(b, r, "from_raw roundtrip nbits={nbits}");
            assert_eq!(r.summary(), b.summary());
        }
    }

    #[test]
    fn union_accumulates() {
        let mut a = Bitmap::new(64);
        let mut b = Bitmap::new(64);
        a.set(3);
        b.set(60);
        a.union_with(&b);
        assert!(a.get(3) && a.get(60));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn iter_set_yields_sorted_indices() {
        let mut b = Bitmap::new(300);
        for i in [7, 64, 65, 128, 299] {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_set().collect();
        assert_eq!(got, vec![7, 64, 65, 128, 299]);
    }

    #[test]
    fn overlap_chunks_match_overlap_words() {
        let mut a = Bitmap::new(256);
        let mut b = Bitmap::new(256);
        for i in [0, 1, 70, 130, 200] {
            a.set(i);
        }
        for i in [1, 70, 131, 200, 255] {
            b.set(i);
        }
        let from_chunks: Vec<usize> = a
            .overlap_chunks(&b)
            .flat_map(|(wi, m)| {
                (0..64)
                    .filter(move |j| m & (1 << j) != 0)
                    .map(move |j| wi * 64 + j)
            })
            .collect();
        let direct: Vec<usize> = a.overlap_words(&b).collect();
        assert_eq!(from_chunks, direct);
        assert_eq!(direct, vec![1, 70, 200]);
        assert_eq!(a.count_overlap(&b), 3);
    }

    #[test]
    fn swar_chunks_match_scalar_walk() {
        // Deterministic LCG-filled pairs across widths that exercise every
        // chunk shape: exact multiples of the 4-word lane width, a lone
        // tail word, and tails of 1–3 words.
        for nbits in [1usize, 63, 64, 65, 128, 192, 256, 257, 300, 511, 512, 1024] {
            let mut seed = nbits as u64 ^ 0x9E37_79B9_7F4A_7C15;
            let mut rng = move || {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (seed >> 33) as usize
            };
            let mut a = Bitmap::new(nbits);
            let mut b = Bitmap::new(nbits);
            for _ in 0..nbits / 2 + 1 {
                a.set(rng() % nbits);
                b.set(rng() % nbits);
            }
            let swar: Vec<(usize, u64)> = a.overlap_chunks(&b).collect();
            let scalar: Vec<(usize, u64)> = a.overlap_chunks_scalar(&b).collect();
            assert_eq!(swar, scalar, "nbits={nbits}");
            // The bit-level expansion agrees too.
            let words: Vec<usize> = a.overlap_words(&b).collect();
            let expanded: Vec<usize> = swar
                .iter()
                .flat_map(|&(wi, m)| {
                    (0..64)
                        .filter(move |j| m & (1 << j) != 0)
                        .map(move |j| wi * 64 + j)
                })
                .collect();
            assert_eq!(words, expanded, "nbits={nbits}");
        }
    }

    #[test]
    fn raw_roundtrip() {
        let mut b = Bitmap::new(100);
        b.set(99);
        let r = Bitmap::from_raw(100, b.raw().to_vec());
        assert_eq!(b, r);
        assert_eq!(r.summary(), b.summary());
    }

    #[test]
    fn clear_resets() {
        let mut b = Bitmap::new(64);
        b.set(5);
        b.clear();
        assert!(!b.any());
        assert_eq!(b.summary(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut b = Bitmap::new(10);
        b.set(10);
    }

    #[test]
    fn wire_bytes_counts_backing_words() {
        assert_eq!(Bitmap::new(512).wire_bytes(), 64);
        assert_eq!(Bitmap::new(65).wire_bytes(), 16);
        assert_eq!(PageBitmaps::new(512).wire_bytes(), 128);
    }
}
