//! Address arithmetic: words, pages, and the shared segment base.

use core::fmt;

/// Size of a machine word in bytes.
///
/// The paper's testbed was 64-bit DEC Alpha hardware; accesses are tracked
/// at word granularity ("typically a single word"), so one bitmap bit covers
/// one 8-byte word.
pub const WORD_BYTES: u64 = 8;

/// Base byte address of the shared data segment.
///
/// All shared memory in CVM is dynamically allocated from a dedicated
/// segment; the instrumentation's runtime access check distinguishes shared
/// from private accesses by comparing addresses against this segment
/// (paper §5.1).  Addresses below the base model private data.
pub const SHARED_BASE: u64 = 0x0001_0000_0000;

/// A global byte address in the simulated address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GAddr(pub u64);

impl GAddr {
    /// Returns the address offset by `bytes`.
    #[inline]
    #[must_use]
    pub fn offset(self, bytes: u64) -> GAddr {
        GAddr(self.0 + bytes)
    }

    /// Returns the address of the `i`-th word starting at `self`.
    #[inline]
    #[must_use]
    pub fn word(self, i: u64) -> GAddr {
        GAddr(self.0 + i * WORD_BYTES)
    }

    /// Returns `true` if the address lies inside the shared segment.
    #[inline]
    pub fn is_shared(self) -> bool {
        self.0 >= SHARED_BASE
    }
}

impl fmt::Debug for GAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for GAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// Identifier of a page within the shared segment (dense, starting at 0).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

/// Page geometry of the shared segment.
///
/// The DECstations in the paper used large (8 KB) pages, which exacerbated
/// false sharing under the single-writer protocol (§6.2); the default here
/// is 4 KB, and experiments can vary it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Geometry {
    /// Number of 8-byte words per page.
    pub page_words: usize,
}

impl Default for Geometry {
    fn default() -> Self {
        // 4 KB pages: 512 words of 8 bytes.
        Geometry { page_words: 512 }
    }
}

impl Geometry {
    /// Creates a geometry with the given page size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is zero or not a multiple of [`WORD_BYTES`].
    pub fn with_page_bytes(page_bytes: usize) -> Self {
        assert!(page_bytes > 0, "page size must be non-zero");
        assert_eq!(
            page_bytes as u64 % WORD_BYTES,
            0,
            "page size must be a whole number of words"
        );
        Geometry {
            page_words: page_bytes / WORD_BYTES as usize,
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_bytes(&self) -> u64 {
        self.page_words as u64 * WORD_BYTES
    }

    /// Splits a shared address into `(page, word-within-page)`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not in the shared segment or not word-aligned.
    #[inline]
    pub fn locate(&self, addr: GAddr) -> (PageId, usize) {
        assert!(addr.is_shared(), "locate() on private address {addr}");
        let off = addr.0 - SHARED_BASE;
        assert_eq!(off % WORD_BYTES, 0, "unaligned word access at {addr}");
        let word = off / WORD_BYTES;
        let page = word / self.page_words as u64;
        (
            PageId(u32::try_from(page).expect("page id overflow")),
            (word % self.page_words as u64) as usize,
        )
    }

    /// Returns the page containing a shared address (no alignment check).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not in the shared segment.
    #[inline]
    pub fn page_of(&self, addr: GAddr) -> PageId {
        assert!(addr.is_shared(), "page_of() on private address {addr}");
        let off = addr.0 - SHARED_BASE;
        PageId(u32::try_from(off / self.page_bytes()).expect("page id overflow"))
    }

    /// Reconstructs the address of word `word` on page `page`.
    #[inline]
    pub fn addr_of(&self, page: PageId, word: usize) -> GAddr {
        debug_assert!(word < self.page_words);
        GAddr(
            SHARED_BASE + (page.index() as u64 * self.page_words as u64 + word as u64) * WORD_BYTES,
        )
    }

    /// First address of `page`.
    #[inline]
    pub fn page_base(&self, page: PageId) -> GAddr {
        self.addr_of(page, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_4k() {
        let g = Geometry::default();
        assert_eq!(g.page_bytes(), 4096);
        assert_eq!(g.page_words, 512);
    }

    #[test]
    fn locate_roundtrips_with_addr_of() {
        let g = Geometry::with_page_bytes(4096);
        for (page, word) in [(0u32, 0usize), (0, 511), (1, 0), (7, 123), (1000, 500)] {
            let addr = g.addr_of(PageId(page), word);
            assert_eq!(g.locate(addr), (PageId(page), word));
            assert_eq!(g.page_of(addr), PageId(page));
        }
    }

    #[test]
    fn page_of_handles_unaligned_addresses() {
        let g = Geometry::default();
        let addr = GAddr(SHARED_BASE + 4097);
        assert_eq!(g.page_of(addr), PageId(1));
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn locate_rejects_unaligned() {
        let g = Geometry::default();
        let _ = g.locate(GAddr(SHARED_BASE + 3));
    }

    #[test]
    #[should_panic(expected = "private address")]
    fn locate_rejects_private() {
        let g = Geometry::default();
        let _ = g.locate(GAddr(128));
    }

    #[test]
    fn shared_base_discriminates() {
        assert!(!GAddr(0).is_shared());
        assert!(!GAddr(SHARED_BASE - 8).is_shared());
        assert!(GAddr(SHARED_BASE).is_shared());
        assert!(GAddr::is_shared(GAddr(SHARED_BASE).word(10)));
    }

    #[test]
    fn custom_page_size() {
        let g = Geometry::with_page_bytes(8192);
        assert_eq!(g.page_words, 1024);
        let addr = g.addr_of(PageId(3), 1023);
        assert_eq!(g.locate(addr), (PageId(3), 1023));
    }
}
