//! Word diffs for the multi-writer protocol.
//!
//! TreadMarks-style multi-writer LRC lets several nodes write one page
//! concurrently.  Each writer *twins* the page at its first write of an
//! interval and later summarizes its modifications as a diff — the list of
//! `(word, new value)` pairs where the page departs from the twin.  Faulting
//! readers fetch and apply the diffs of all writers in happens-before-1
//! order.
//!
//! §6.5 of the paper observes that diffs can replace store instrumentation
//! for write detection, at the cost of missing races that overwrite a value
//! with itself — `cvm-dsm` exposes exactly that trade-off.

use crate::PageId;

/// A diff: the words of one page modified relative to its twin.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diff {
    /// The page this diff applies to.
    pub page: PageId,
    /// `(word index, new value)` pairs, sorted by word index.
    pub entries: Vec<(u32, u64)>,
}

impl Diff {
    /// Computes the diff of `current` against `twin`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn make(page: PageId, twin: &[u64], current: &[u64]) -> Self {
        assert_eq!(twin.len(), current.len(), "twin/page length mismatch");
        let entries = twin
            .iter()
            .zip(current)
            .enumerate()
            .filter(|(_, (t, c))| t != c)
            .map(|(i, (_, c))| (i as u32, *c))
            .collect();
        Diff { page, entries }
    }

    /// Applies the diff to a page frame.
    ///
    /// # Panics
    ///
    /// Panics if an entry's word index is out of range for `data`.
    pub fn apply(&self, data: &mut [u64]) {
        for &(w, v) in &self.entries {
            data[w as usize] = v;
        }
    }

    /// Returns `true` if no words changed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of modified words.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over modified word indices.
    pub fn words(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries.iter().map(|&(w, _)| w as usize)
    }

    /// Encoded size in bytes: page id + count + 12 bytes per entry.
    pub fn wire_bytes(&self) -> u64 {
        8 + self.entries.len() as u64 * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_captures_only_changes() {
        let twin = vec![0, 1, 2, 3];
        let cur = vec![0, 9, 2, 7];
        let d = Diff::make(PageId(4), &twin, &cur);
        assert_eq!(d.entries, vec![(1, 9), (3, 7)]);
        assert_eq!(d.page, PageId(4));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn apply_reproduces_current() {
        let twin = vec![5u64; 32];
        let mut cur = twin.clone();
        cur[0] = 1;
        cur[31] = 2;
        let d = Diff::make(PageId(0), &twin, &cur);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn identical_pages_make_empty_diff() {
        let twin = vec![1, 2, 3];
        let d = Diff::make(PageId(0), &twin, &twin);
        assert!(d.is_empty());
        assert_eq!(d.wire_bytes(), 8);
    }

    #[test]
    fn same_value_overwrite_is_invisible() {
        // The documented weakness of diff-based write detection (§6.5):
        // writing a value equal to the old one leaves no trace in the diff.
        let twin = vec![42u64, 0];
        let mut cur = twin.clone();
        cur[0] = 42; // Overwrite with the same value.
        cur[1] = 1;
        let d = Diff::make(PageId(0), &twin, &cur);
        assert_eq!(d.words().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn overlapping_diffs_apply_in_order() {
        // Later (happens-after) diffs must win when applied in hb1 order.
        let base = vec![0u64; 4];
        let mut a = base.clone();
        a[2] = 10;
        let mut b = base.clone();
        b[2] = 20;
        let da = Diff::make(PageId(0), &base, &a);
        let db = Diff::make(PageId(0), &base, &b);
        let mut data = base.clone();
        da.apply(&mut data);
        db.apply(&mut data);
        assert_eq!(data[2], 20);
    }
}
