//! Property-based tests for bitmaps and diffs.

use cvm_page::{Bitmap, Diff, GAddr, Geometry, PageId, SharedAlloc};
use proptest::prelude::*;

fn arb_bits(n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..n, 0..64)
}

proptest! {
    #[test]
    fn bitmap_set_get_consistency(idxs in arb_bits(512)) {
        let mut b = Bitmap::new(512);
        for &i in &idxs {
            b.set(i);
        }
        for i in 0..512 {
            prop_assert_eq!(b.get(i), idxs.contains(&i));
        }
        let mut sorted: Vec<usize> = idxs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(b.count(), sorted.len());
        prop_assert_eq!(b.iter_set().collect::<Vec<_>>(), sorted);
    }

    #[test]
    fn bitmap_overlap_matches_set_intersection(
        a in arb_bits(256),
        b in arb_bits(256),
    ) {
        let mut ba = Bitmap::new(256);
        let mut bb = Bitmap::new(256);
        for &i in &a { ba.set(i); }
        for &i in &b { bb.set(i); }
        let mut expect: Vec<usize> =
            a.iter().filter(|i| b.contains(i)).copied().collect();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(ba.overlaps(&bb), !expect.is_empty());
        prop_assert_eq!(ba.overlap_words(&bb).collect::<Vec<_>>(), expect);
    }

    /// The SWAR 4-lane AND-walk yields exactly the scalar walk's sequence,
    /// word for word, for dense random words at widths covering every
    /// chunk/tail shape.
    #[test]
    fn swar_and_walk_equals_scalar_and_walk(
        nbits in 0usize..600,
        raw_a in proptest::collection::vec(any::<u64>(), 10),
        raw_b in proptest::collection::vec(any::<u64>(), 10),
    ) {
        let words = nbits.div_ceil(64);
        let mut a = raw_a[..words].to_vec();
        let mut b = raw_b[..words].to_vec();
        if nbits % 64 != 0 {
            // Keep the tail word inside the bitmap's declared width.
            let keep = (1u64 << (nbits % 64)) - 1;
            a[words - 1] &= keep;
            b[words - 1] &= keep;
        }
        let ba = Bitmap::from_raw(nbits, a);
        let bb = Bitmap::from_raw(nbits, b);
        let swar: Vec<(usize, u64)> = ba.overlap_chunks(&bb).collect();
        let scalar: Vec<(usize, u64)> = ba.overlap_chunks_scalar(&bb).collect();
        prop_assert_eq!(swar, scalar);
    }

    /// Sparse pairs (the false-sharing common case) take the summary
    /// short-circuit identically through both kernels.
    #[test]
    fn swar_and_walk_equals_scalar_on_sparse_pairs(
        a in arb_bits(512),
        b in arb_bits(512),
    ) {
        let mut ba = Bitmap::new(512);
        let mut bb = Bitmap::new(512);
        for &i in &a { ba.set(i); }
        for &i in &b { bb.set(i); }
        prop_assert_eq!(
            ba.overlap_chunks(&bb).collect::<Vec<_>>(),
            ba.overlap_chunks_scalar(&bb).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bitmap_union_is_superset(a in arb_bits(128), b in arb_bits(128)) {
        let mut ba = Bitmap::new(128);
        let mut bb = Bitmap::new(128);
        for &i in &a { ba.set(i); }
        for &i in &b { bb.set(i); }
        let mut u = ba.clone();
        u.union_with(&bb);
        for i in 0..128 {
            prop_assert_eq!(u.get(i), ba.get(i) || bb.get(i));
        }
    }

    #[test]
    fn diff_make_apply_roundtrip(
        twin in proptest::collection::vec(any::<u64>(), 64),
        writes in proptest::collection::vec((0usize..64, any::<u64>()), 0..32),
    ) {
        let mut cur = twin.clone();
        for &(i, v) in &writes {
            cur[i] = v;
        }
        let d = Diff::make(PageId(9), &twin, &cur);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        prop_assert_eq!(rebuilt, cur.clone());
        // Every diffed word really differs from the twin.
        for w in d.words() {
            prop_assert_ne!(twin[w], cur[w]);
        }
    }

    #[test]
    fn allocator_segments_never_overlap(
        sizes in proptest::collection::vec(1u64..10_000, 1..20),
    ) {
        let mut a = SharedAlloc::new(Geometry::default(), 1 << 24);
        let mut bases: Vec<(GAddr, u64)> = Vec::new();
        for (i, &len) in sizes.iter().enumerate() {
            let base = a.alloc(&format!("s{i}"), len).unwrap();
            bases.push((base, len));
        }
        for w in bases.windows(2) {
            let (prev, plen) = (w[0].0, w[0].1);
            let (next, _) = (w[1].0, w[1].1);
            prop_assert!(prev.0 + plen <= next.0, "segments overlap");
        }
        // Every allocated byte resolves to its own segment.
        let map = a.into_map();
        for (i, &(base, len)) in bases.iter().enumerate() {
            let (seg, off) = map.resolve(base.offset(len - 1)).unwrap();
            prop_assert_eq!(&seg.name, &format!("s{i}"));
            prop_assert_eq!(off, len - 1);
        }
    }
}
