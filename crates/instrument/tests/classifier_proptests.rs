//! Property tests for the static classifier.

use std::collections::BTreeSet;

use cvm_instrument::{
    classify_with, AccessClass, ClassifyConfig, FuncDesc, Inst, InstrumentedBinary, MemOp,
    ObjectFile, Reg, Section,
};
use proptest::prelude::*;

fn arb_inst() -> impl Strategy<Value = Inst> {
    (
        any::<bool>(),
        prop_oneof![
            Just(Reg::Fp),
            Just(Reg::Sp),
            Just(Reg::Gp),
            (0u8..31).prop_map(Reg::Gen),
        ],
        prop_oneof![
            Just(Section::App),
            Just(Section::Library),
            Just(Section::Cvm),
        ],
        0u16..4,
        any::<bool>(),
    )
        .prop_map(|(store, base, section, func, prov)| Inst {
            op: if store { MemOp::Store } else { MemOp::Load },
            base,
            section,
            func,
            private_provenance: prov,
        })
}

fn funcs() -> Vec<FuncDesc> {
    vec![
        FuncDesc {
            name: "main".into(),
            section: Section::App,
        },
        FuncDesc {
            name: "memcpy".into(),
            section: Section::Library,
        },
        FuncDesc {
            name: "sin".into(),
            section: Section::Library,
        },
        FuncDesc {
            name: "cvm_fault".into(),
            section: Section::Cvm,
        },
    ]
}

proptest! {
    /// Enabling the inter-procedural analysis never *adds* instrumented
    /// sites, and dirty-library marking never *removes* them.
    #[test]
    fn config_monotonicity(insts in proptest::collection::vec(arb_inst(), 1..200)) {
        let obj = ObjectFile::with_funcs("rand", funcs(), insts);
        let basic = InstrumentedBinary::build(&obj);
        let ip = InstrumentedBinary::build_with(
            &ClassifyConfig { interprocedural: true, ..ClassifyConfig::default() },
            &obj,
        );
        prop_assert!(ip.counts.instrumented <= basic.counts.instrumented);
        let dirty = ClassifyConfig {
            dirty_library_functions: BTreeSet::from(["memcpy".to_string(), "sin".to_string()]),
            ..ClassifyConfig::default()
        };
        let d = InstrumentedBinary::build_with(&dirty, &obj);
        prop_assert!(d.counts.instrumented >= basic.counts.instrumented);
        // Totals are invariant: classification only moves sites between
        // buckets.
        prop_assert_eq!(basic.counts.total(), obj.len() as u64);
        prop_assert_eq!(ip.counts.total(), obj.len() as u64);
        prop_assert_eq!(d.counts.total(), obj.len() as u64);
    }

    /// The classifier is total and section-dominant: library/CVM sites are
    /// never instrumented under the default config, whatever their
    /// registers.
    #[test]
    fn section_dominance(inst in arb_inst()) {
        let obj = ObjectFile::with_funcs("one", funcs(), vec![inst]);
        let class = classify_with(&ClassifyConfig::default(), Some(&obj), &inst);
        match inst.section {
            Section::Library => prop_assert_eq!(class, AccessClass::Library),
            Section::Cvm => prop_assert_eq!(class, AccessClass::Cvm),
            Section::App => match inst.base {
                Reg::Fp | Reg::Sp => prop_assert_eq!(class, AccessClass::Stack),
                Reg::Gp => prop_assert_eq!(class, AccessClass::Static),
                Reg::Gen(_) => prop_assert_eq!(class, AccessClass::Instrumented),
            },
        }
    }

    /// Instrumented-site indices always point at `Instrumented` sites.
    #[test]
    fn site_indices_are_consistent(insts in proptest::collection::vec(arb_inst(), 0..100)) {
        let obj = ObjectFile::with_funcs("rand", funcs(), insts);
        let ib = InstrumentedBinary::build(&obj);
        for &i in &ib.instrumented_sites {
            let class = classify_with(&ClassifyConfig::default(), Some(&obj), &obj.insts[i]);
            prop_assert_eq!(class, AccessClass::Instrumented);
        }
        prop_assert_eq!(ib.instrumented_sites.len() as u64, ib.counts.instrumented);
    }
}
