//! ATOM-style binary instrumentation, modelled.
//!
//! The paper uses the ATOM code rewriter to instrument every load and store
//! that *might* reference shared memory with a call to an analysis routine
//! (§4, §5.1).  Because shared and private data share addressing modes, the
//! static analysis can only prune accesses it can prove private:
//!
//! * accesses through the frame pointer (stack data);
//! * accesses through the global-data base register (statically allocated
//!   data — CVM allocates all shared memory dynamically);
//! * instructions inside shared libraries (no segment pointers are passed
//!   to libraries by the studied applications);
//! * instructions inside CVM itself.
//!
//! Everything else gets a procedure call to the analysis routine, which at
//! run time compares the address against the shared segment and sets a bit
//! in the per-page access bitmap.  Over 99 % of static load/store sites are
//! eliminated (Table 2), yet most *dynamic* calls still turn out to be
//! private accesses (Table 3) — both effects reproduced by this model.
//!
//! ATOM ran on real DEC Alpha executables; this crate substitutes a modelled
//! object format ([`ObjectFile`]) whose instructions carry exactly the
//! attributes the classifier inspects (base register and owning section).
//! Synthetic binaries shaped like the paper's four applications are in
//! [`synth`].
//!
//! # Examples
//!
//! ```
//! use cvm_instrument::{classify, AccessClass, Inst, MemOp, Reg, Section};
//!
//! // Frame-pointer accesses are stack data: statically eliminated.
//! let stack = Inst::simple(MemOp::Load, Reg::Fp, Section::App);
//! assert_eq!(classify(&stack), AccessClass::Stack);
//!
//! // A computed pointer could reference shared memory: instrumented.
//! let maybe_shared = Inst::simple(MemOp::Store, Reg::Gen(9), Section::App);
//! assert_eq!(classify(&maybe_shared), AccessClass::Instrumented);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod object;
mod runtime;
pub mod synth;

pub use classify::{
    classify, classify_with, AccessClass, ClassCounts, ClassifyConfig, InstrumentedBinary,
};
pub use object::{FuncDesc, Inst, MemOp, ObjectFile, Reg, Section};
pub use runtime::AnalysisRuntime;
