//! The static classifier: which loads and stores can be eliminated.

use core::fmt;
use std::collections::BTreeSet;

use crate::{Inst, ObjectFile, Reg, Section};

/// Outcome of classifying one load/store site (the columns of Table 2,
/// plus the §6.5 inter-procedural refinement).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AccessClass {
    /// Frame/stack-pointer based: stack data, never shared.
    Stack,
    /// Global-pointer based: statically allocated data; CVM allocates all
    /// shared memory dynamically, so these are private.
    Static,
    /// Inside a shared library; the studied applications pass no shared
    /// pointers to libraries.
    Library,
    /// Inside the CVM runtime itself.
    Cvm,
    /// Proven private by the inter-procedural provenance analysis (§6.5's
    /// future work) — eliminated despite using a general register.
    ProvenPrivate,
    /// Could reference shared memory: instrumented with an analysis call.
    Instrumented,
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessClass::Stack => "Stack",
            AccessClass::Static => "Static",
            AccessClass::Library => "Library",
            AccessClass::Cvm => "CVM",
            AccessClass::ProvenPrivate => "Proven",
            AccessClass::Instrumented => "Inst.",
        };
        f.write_str(s)
    }
}

/// Classifier configuration.
#[derive(Clone, Debug, Default)]
pub struct ClassifyConfig {
    /// "Dirty" library functions that may receive shared pointers: their
    /// accesses are instrumented rather than blanket-eliminated.  The
    /// paper's applications need none ("none of our applications pass
    /// segment pointers to any libraries"), but §5.1 notes the mechanism.
    pub dirty_library_functions: BTreeSet<String>,
    /// Enable the inter-procedural provenance analysis of §6.5, which
    /// eliminates general-register accesses whose pointers provably derive
    /// from private data across procedure boundaries.
    pub interprocedural: bool,
}

/// Classifies one instruction according to the paper's elimination rules
/// (§5.1), default configuration (basic-block analysis, clean libraries).
pub fn classify(inst: &Inst) -> AccessClass {
    classify_with(&ClassifyConfig::default(), None, inst)
}

/// Classifies one instruction under `config` (the object file supplies the
/// function table for dirty-library lookups).
pub fn classify_with(
    config: &ClassifyConfig,
    obj: Option<&ObjectFile>,
    inst: &Inst,
) -> AccessClass {
    match inst.section {
        Section::Library => {
            if !config.dirty_library_functions.is_empty() {
                if let Some(obj) = obj {
                    let name = &obj.func_of(inst).name;
                    if config.dirty_library_functions.contains(name) {
                        return AccessClass::Instrumented;
                    }
                }
            }
            AccessClass::Library
        }
        Section::Cvm => AccessClass::Cvm,
        Section::App => match inst.base {
            Reg::Fp | Reg::Sp => AccessClass::Stack,
            Reg::Gp => AccessClass::Static,
            Reg::Gen(_) => {
                if config.interprocedural && inst.private_provenance {
                    AccessClass::ProvenPrivate
                } else {
                    AccessClass::Instrumented
                }
            }
        },
    }
}

/// Per-class instruction counts: one row of the paper's Table 2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Stack accesses (frame/stack pointer based).
    pub stack: u64,
    /// Statically allocated data accesses (global pointer based).
    pub static_data: u64,
    /// Shared-library instructions.
    pub library: u64,
    /// CVM-internal instructions.
    pub cvm: u64,
    /// Sites eliminated by the inter-procedural analysis (§6.5).
    pub proven_private: u64,
    /// Instrumented instructions (possible shared references).
    pub instrumented: u64,
}

impl ClassCounts {
    /// Adds one classified instruction.
    pub fn record(&mut self, class: AccessClass) {
        match class {
            AccessClass::Stack => self.stack += 1,
            AccessClass::Static => self.static_data += 1,
            AccessClass::Library => self.library += 1,
            AccessClass::Cvm => self.cvm += 1,
            AccessClass::ProvenPrivate => self.proven_private += 1,
            AccessClass::Instrumented => self.instrumented += 1,
        }
    }

    /// Total loads and stores.
    pub fn total(&self) -> u64 {
        self.stack
            + self.static_data
            + self.library
            + self.cvm
            + self.proven_private
            + self.instrumented
    }

    /// Fraction of sites statically eliminated (the paper's ">99 %").
    pub fn elimination_frac(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        1.0 - self.instrumented as f64 / self.total() as f64
    }
}

/// Result of running the instrumentation pass over a binary.
#[derive(Clone, Debug)]
pub struct InstrumentedBinary {
    /// Binary name.
    pub name: String,
    /// Classification counts (Table 2 row).
    pub counts: ClassCounts,
    /// Indices (into the original instruction stream) of the instrumented
    /// sites — the ones rewritten to call the analysis routine.
    pub instrumented_sites: Vec<usize>,
}

impl InstrumentedBinary {
    /// Runs the pass with the default configuration.
    pub fn build(obj: &ObjectFile) -> Self {
        Self::build_with(&ClassifyConfig::default(), obj)
    }

    /// Runs the pass under `config`.
    pub fn build_with(config: &ClassifyConfig, obj: &ObjectFile) -> Self {
        let mut counts = ClassCounts::default();
        let mut sites = Vec::new();
        for (i, inst) in obj.insts.iter().enumerate() {
            let class = classify_with(config, Some(obj), inst);
            counts.record(class);
            if class == AccessClass::Instrumented {
                sites.push(i);
            }
        }
        InstrumentedBinary {
            name: obj.name.clone(),
            counts,
            instrumented_sites: sites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FuncDesc, MemOp};

    fn inst(base: Reg, section: Section) -> Inst {
        Inst::simple(MemOp::Load, base, section)
    }

    #[test]
    fn classification_rules_match_paper() {
        assert_eq!(classify(&inst(Reg::Fp, Section::App)), AccessClass::Stack);
        assert_eq!(classify(&inst(Reg::Sp, Section::App)), AccessClass::Stack);
        assert_eq!(classify(&inst(Reg::Gp, Section::App)), AccessClass::Static);
        assert_eq!(
            classify(&inst(Reg::Gen(3), Section::App)),
            AccessClass::Instrumented
        );
        // Section dominates the base register: library/CVM code is never
        // instrumented, whatever it dereferences.
        assert_eq!(
            classify(&inst(Reg::Gen(3), Section::Library)),
            AccessClass::Library
        );
        assert_eq!(classify(&inst(Reg::Fp, Section::Cvm)), AccessClass::Cvm);
    }

    #[test]
    fn counts_and_elimination() {
        let obj = ObjectFile::new(
            "toy",
            vec![
                inst(Reg::Fp, Section::App),
                inst(Reg::Gp, Section::App),
                inst(Reg::Gen(0), Section::App),
                inst(Reg::Gen(1), Section::Library),
                inst(Reg::Gen(2), Section::Cvm),
            ],
        );
        let ib = InstrumentedBinary::build(&obj);
        assert_eq!(ib.counts.stack, 1);
        assert_eq!(ib.counts.static_data, 1);
        assert_eq!(ib.counts.library, 1);
        assert_eq!(ib.counts.cvm, 1);
        assert_eq!(ib.counts.instrumented, 1);
        assert_eq!(ib.counts.total(), 5);
        assert!((ib.counts.elimination_frac() - 0.8).abs() < 1e-12);
        assert_eq!(ib.instrumented_sites, vec![2]);
    }

    #[test]
    fn dirty_library_functions_are_instrumented() {
        let funcs = vec![
            FuncDesc {
                name: "main".into(),
                section: Section::App,
            },
            FuncDesc {
                name: "memcpy".into(),
                section: Section::Library,
            },
            FuncDesc {
                name: "sin".into(),
                section: Section::Library,
            },
        ];
        let mut dirty = Inst::simple(MemOp::Store, Reg::Gen(5), Section::Library);
        dirty.func = 1;
        let mut clean = Inst::simple(MemOp::Load, Reg::Gen(5), Section::Library);
        clean.func = 2;
        let obj = ObjectFile::with_funcs("toy", funcs, vec![dirty, clean]);
        let mut config = ClassifyConfig::default();
        config.dirty_library_functions.insert("memcpy".into());
        let ib = InstrumentedBinary::build_with(&config, &obj);
        assert_eq!(ib.counts.instrumented, 1, "memcpy instrumented");
        assert_eq!(ib.counts.library, 1, "sin left alone");
        assert_eq!(ib.instrumented_sites, vec![0]);
    }

    #[test]
    fn interprocedural_analysis_eliminates_proven_private_sites() {
        let mut provable = Inst::simple(MemOp::Load, Reg::Gen(1), Section::App);
        provable.private_provenance = true;
        let unknown = Inst::simple(MemOp::Load, Reg::Gen(2), Section::App);
        let obj = ObjectFile::new("toy", vec![provable, unknown]);

        let basic = InstrumentedBinary::build(&obj);
        assert_eq!(basic.counts.instrumented, 2, "basic analysis keeps both");

        let config = ClassifyConfig {
            interprocedural: true,
            ..ClassifyConfig::default()
        };
        let better = InstrumentedBinary::build_with(&config, &obj);
        assert_eq!(better.counts.instrumented, 1);
        assert_eq!(better.counts.proven_private, 1);
        assert!(better.counts.elimination_frac() > basic.counts.elimination_frac());
    }

    #[test]
    fn empty_binary_eliminates_nothing() {
        let ib = InstrumentedBinary::build(&ObjectFile::new("empty", vec![]));
        assert_eq!(ib.counts.total(), 0);
        assert_eq!(ib.counts.elimination_frac(), 0.0);
        assert!(ib.instrumented_sites.is_empty());
    }

    #[test]
    fn display_names() {
        assert_eq!(AccessClass::Cvm.to_string(), "CVM");
        assert_eq!(AccessClass::Instrumented.to_string(), "Inst.");
        assert_eq!(AccessClass::ProvenPrivate.to_string(), "Proven");
    }
}
