//! A modelled executable: just enough structure for the classifier.

use core::fmt;

/// Base register of a memory access, the attribute the static analysis
/// keys on (Alpha addressing is always base + displacement).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Reg {
    /// Frame pointer — stack data.
    Fp,
    /// Stack pointer — also stack data.
    Sp,
    /// Global-data base register (`$gp` on Alpha) — statically allocated
    /// data, never shared under CVM.
    Gp,
    /// A general-purpose register holding a computed pointer; could point
    /// anywhere, including the shared segment.
    Gen(u8),
}

/// Which body of code an instruction belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Section {
    /// Application text.
    App,
    /// Shared-library text (libc, libm, ...).
    Library,
    /// The CVM runtime itself.
    Cvm,
}

/// Load or store.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum MemOp {
    /// A load instruction.
    Load,
    /// A store instruction.
    Store,
}

/// One function of the binary (the symbol-table granularity ATOM works
/// at).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuncDesc {
    /// Symbol name (e.g. `"memcpy"`, `"interf"`).
    pub name: String,
    /// Owning section.
    pub section: Section,
}

/// One memory-access instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Inst {
    /// Load or store.
    pub op: MemOp,
    /// Base register of the effective address.
    pub base: Reg,
    /// Owning section.
    pub section: Section,
    /// Enclosing function (index into [`ObjectFile::funcs`]).
    pub func: u16,
    /// Ground truth for general-register accesses: the pointer provably
    /// derives from private (stack or static) data across procedure
    /// boundaries.  The paper's basic-block analysis cannot see this and
    /// conservatively instruments the access; the inter-procedural
    /// analysis sketched in §6.5 eliminates it.
    pub private_provenance: bool,
}

impl Inst {
    /// A plain instruction with no function/provenance refinement.
    pub fn simple(op: MemOp, base: Reg, section: Section) -> Self {
        Inst {
            op,
            base,
            section,
            func: 0,
            private_provenance: false,
        }
    }
}

/// A modelled executable: functions plus the sequence of its load/store
/// instructions.
///
/// Non-memory instructions are irrelevant to the instrumentation pass and
/// are not modelled.
#[derive(Clone, Debug)]
pub struct ObjectFile {
    /// Binary name (e.g. `"FFT"`).
    pub name: String,
    /// Function table.
    pub funcs: Vec<FuncDesc>,
    /// All load/store instructions, in text order.
    pub insts: Vec<Inst>,
}

impl ObjectFile {
    /// Creates an object file with a trivial one-function table.
    pub fn new(name: impl Into<String>, insts: Vec<Inst>) -> Self {
        ObjectFile {
            name: name.into(),
            funcs: vec![FuncDesc {
                name: "main".to_string(),
                section: Section::App,
            }],
            insts,
        }
    }

    /// Creates an object file with an explicit function table.
    pub fn with_funcs(name: impl Into<String>, funcs: Vec<FuncDesc>, insts: Vec<Inst>) -> Self {
        let obj = ObjectFile {
            name: name.into(),
            funcs,
            insts,
        };
        debug_assert!(obj
            .insts
            .iter()
            .all(|i| (i.func as usize) < obj.funcs.len()));
        obj
    }

    /// Total load/store count.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if the binary has no memory instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The function containing `inst`.
    pub fn func_of(&self, inst: &Inst) -> &FuncDesc {
        &self.funcs[inst.func as usize]
    }
}

impl fmt::Display for ObjectFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} loads/stores, {} functions)",
            self.name,
            self.insts.len(),
            self.funcs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_file_basics() {
        let obj = ObjectFile::new(
            "toy",
            vec![Inst::simple(MemOp::Load, Reg::Fp, Section::App)],
        );
        assert_eq!(obj.len(), 1);
        assert!(!obj.is_empty());
        assert_eq!(obj.to_string(), "toy (1 loads/stores, 1 functions)");
        assert_eq!(obj.func_of(&obj.insts[0]).name, "main");
    }

    #[test]
    fn explicit_function_table() {
        let funcs = vec![
            FuncDesc {
                name: "solve".into(),
                section: Section::App,
            },
            FuncDesc {
                name: "memcpy".into(),
                section: Section::Library,
            },
        ];
        let mut inst = Inst::simple(MemOp::Store, Reg::Gen(4), Section::Library);
        inst.func = 1;
        let obj = ObjectFile::with_funcs("toy", funcs, vec![inst]);
        assert_eq!(obj.func_of(&obj.insts[0]).name, "memcpy");
    }
}
