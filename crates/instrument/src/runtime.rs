//! The runtime analysis routine.
//!
//! Each instrumented load/store calls this routine, which decides whether
//! the address falls in the shared segment (one range comparison) and, if
//! so, reports it so the DSM can set the per-page bitmap bit.  The majority
//! of dynamic calls turn out to be for private data (Table 3's last two
//! columns) — the static analysis only tracks references within a basic
//! block and must conservatively instrument unknown pointers (§6.5).

use cvm_page::GAddr;

/// Per-process instance of the analysis routine, with its dynamic counters.
#[derive(Clone, Debug, Default)]
pub struct AnalysisRuntime {
    shared_calls: u64,
    private_calls: u64,
}

impl AnalysisRuntime {
    /// Creates a runtime with zeroed counters.
    pub fn new() -> Self {
        AnalysisRuntime::default()
    }

    /// Reconstructs a runtime from checkpointed counters.
    pub fn from_counts(shared_calls: u64, private_calls: u64) -> Self {
        AnalysisRuntime {
            shared_calls,
            private_calls,
        }
    }

    /// The access check: returns `true` if `addr` is shared, counting the
    /// call either way.
    #[inline]
    pub fn check(&mut self, addr: GAddr) -> bool {
        let shared = addr.is_shared();
        if shared {
            self.shared_calls += 1;
        } else {
            self.private_calls += 1;
        }
        shared
    }

    /// Records a call for an address known private without a check
    /// (used when the application models scratch-data traffic explicitly).
    #[inline]
    pub fn count_private(&mut self, calls: u64) {
        self.private_calls += calls;
    }

    /// Dynamic calls that referenced shared data.
    pub fn shared_calls(&self) -> u64 {
        self.shared_calls
    }

    /// Dynamic calls that referenced private data.
    pub fn private_calls(&self) -> u64 {
        self.private_calls
    }

    /// All dynamic calls to the analysis routine.
    pub fn total_calls(&self) -> u64 {
        self.shared_calls + self.private_calls
    }

    /// Merges another runtime's counters (for cluster-wide totals).
    pub fn merge(&mut self, other: &AnalysisRuntime) {
        self.shared_calls += other.shared_calls;
        self.private_calls += other.private_calls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvm_page::SHARED_BASE;

    #[test]
    fn check_discriminates_and_counts() {
        let mut rt = AnalysisRuntime::new();
        assert!(rt.check(GAddr(SHARED_BASE)));
        assert!(rt.check(GAddr(SHARED_BASE + 4096)));
        assert!(!rt.check(GAddr(0x1000)));
        assert_eq!(rt.shared_calls(), 2);
        assert_eq!(rt.private_calls(), 1);
        assert_eq!(rt.total_calls(), 3);
    }

    #[test]
    fn count_private_bulk() {
        let mut rt = AnalysisRuntime::new();
        rt.count_private(100);
        assert_eq!(rt.private_calls(), 100);
        assert_eq!(rt.shared_calls(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AnalysisRuntime::new();
        a.check(GAddr(SHARED_BASE));
        let mut b = AnalysisRuntime::new();
        b.check(GAddr(1));
        b.count_private(9);
        a.merge(&b);
        assert_eq!(a.total_calls(), 11);
        assert_eq!(a.shared_calls(), 1);
    }
}
