//! App-level resource-governance matrix: each of the paper's four
//! applications runs under the harshest sustainable constraints — link
//! capacity 1 (one unacked datagram per flow) and a 1-byte soft memory
//! budget (proactive GC fires at every interval close) — and must produce
//! application results and race fingerprints byte-identical to an
//! unconstrained run, under both protocols.
//!
//! FFT and SOR are barrier-only and deterministic, so their baseline is a
//! plain unconstrained run.  TSP and Water acquire locks, and grant order
//! steers their racy accesses — so the baseline *records* its
//! synchronization schedule (§6.1) and the constrained run *replays* it,
//! making byte-identity a meaningful assertion rather than a coin flip.

use cvm_apps::{fft, sor, tsp, water};
use cvm_dsm::{DsmConfig, FaultPlan, MemBudget, Protocol, RunReport};

const NPROCS: usize = 4;

/// Capacity 1 is the tightest window that can make progress; a 1-byte soft
/// budget is the smallest viable one — it forces a GC pass at every close
/// while the unlimited hard limit keeps the run sustainable by
/// construction.
fn constrained_cfg(protocol: Protocol, seed: u64) -> DsmConfig {
    let mut cfg = DsmConfig::new(NPROCS);
    cfg.protocol = protocol;
    cfg.net_loss = Some(FaultPlan::clean(seed).with_link_capacity(1));
    cfg.budget = MemBudget {
        soft_bytes: 1,
        hard_bytes: u64::MAX,
    };
    cfg
}

fn unconstrained_cfg(protocol: Protocol) -> DsmConfig {
    let mut cfg = DsmConfig::new(NPROCS);
    cfg.protocol = protocol;
    cfg
}

fn race_fingerprint(report: &RunReport) -> Vec<String> {
    let mut rendered: Vec<String> = report
        .races
        .reports()
        .iter()
        .map(|r| format!("{:?}@{} {}", r.kind, r.epoch, r.render(&report.segments)))
        .collect();
    rendered.sort();
    rendered
}

fn assert_governed(report: &RunReport, app: &str, protocol: Protocol) {
    assert!(
        report.resources.queue_high_water <= 1,
        "{app} ({protocol:?}): in-flight depth {} over capacity 1",
        report.resources.queue_high_water
    );
    assert!(
        report.resources.soft_gcs > 0,
        "{app} ({protocol:?}): a 1-byte soft budget must trigger GC"
    );
    assert!(
        report.resources.retained_bytes_high_water > 0,
        "{app} ({protocol:?}): the budget meter never ran"
    );
}

#[test]
fn fft_is_exact_under_minimum_resources() {
    let params = fft::FftParams::small();
    let input = fft::input_signal(params.n());
    let expect = fft::dft_reference(&input, params.inverse);
    for protocol in [Protocol::SingleWriter, Protocol::MultiWriter] {
        let (clean, _) = fft::run_on(unconstrained_cfg(protocol), params, &input);
        let (report, result) = fft::run_on(constrained_cfg(protocol, 31), params, &input);
        assert_governed(&report, "fft", protocol);
        for (i, (a, b)) in result.data.iter().zip(&expect).enumerate() {
            assert!(
                (a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9,
                "{protocol:?} element {i}: {a:?} vs {b:?}"
            );
        }
        assert_eq!(
            race_fingerprint(&clean),
            race_fingerprint(&report),
            "{protocol:?}: constraints changed FFT's race fingerprint"
        );
    }
}

#[test]
fn sor_is_exact_under_minimum_resources() {
    let params = sor::SorParams::small();
    let expect = sor::reference(params);
    for protocol in [Protocol::SingleWriter, Protocol::MultiWriter] {
        let (clean, _) = sor::run(unconstrained_cfg(protocol), params);
        let (report, result) = sor::run(constrained_cfg(protocol, 32), params);
        assert_governed(&report, "sor", protocol);
        for (i, (a, b)) in result.grid.iter().zip(&expect).enumerate() {
            assert!((a - b).abs() < 1e-12, "{protocol:?} cell {i}");
        }
        assert_eq!(
            race_fingerprint(&clean),
            race_fingerprint(&report),
            "{protocol:?}: constraints changed SOR's race fingerprint"
        );
    }
}

#[test]
fn tsp_is_optimal_under_minimum_resources_with_replayed_schedule() {
    let params = tsp::TspParams::small();
    let dist = tsp::distance_matrix(params.ncities, params.seed);
    let (opt, _) = tsp::solve_reference(&dist, params.ncities);
    for protocol in [Protocol::SingleWriter, Protocol::MultiWriter] {
        let mut rec_cfg = unconstrained_cfg(protocol);
        rec_cfg.record_sync = true;
        let (clean, clean_result) = tsp::run(rec_cfg, params);
        assert_eq!(clean_result.best_len, opt, "{protocol:?}");
        let mut cfg = constrained_cfg(protocol, 33);
        cfg.replay = Some(clean.schedule.clone());
        let (report, result) = tsp::run(cfg, params);
        assert_governed(&report, "tsp", protocol);
        assert_eq!(
            result.best_len, opt,
            "{protocol:?}: constrained search must stay optimal"
        );
        assert_eq!(
            race_fingerprint(&clean),
            race_fingerprint(&report),
            "{protocol:?}: constraints changed TSP's race fingerprint"
        );
        assert!(
            !report.races.reports().is_empty(),
            "{protocol:?}: the benign bound race must survive governance"
        );
    }
}

#[test]
fn water_is_exact_under_minimum_resources_with_replayed_schedule() {
    let params = water::WaterParams::small();
    let expect = water::reference(&params);
    for protocol in [Protocol::SingleWriter, Protocol::MultiWriter] {
        let mut rec_cfg = unconstrained_cfg(protocol);
        rec_cfg.record_sync = true;
        let (clean, _) = water::run(rec_cfg, params);
        let mut cfg = constrained_cfg(protocol, 34);
        cfg.replay = Some(clean.schedule.clone());
        let (report, result) = water::run(cfg, params);
        assert_governed(&report, "water", protocol);
        for (i, (a, b)) in result.positions.iter().zip(&expect.positions).enumerate() {
            assert!((a - b).abs() < 1e-9, "{protocol:?} position {i}");
        }
        assert_eq!(
            race_fingerprint(&clean),
            race_fingerprint(&report),
            "{protocol:?}: constraints changed Water's race fingerprint"
        );
    }
}
