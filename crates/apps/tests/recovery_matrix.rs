//! App-level recovery matrix: each of the paper's four applications must
//! survive a scripted node kill under [`RecoveryPolicy::Recover`], complete
//! the run, produce correct application results, and report races
//! byte-identical to a fault-free execution.
//!
//! FFT and SOR are barrier-only and deterministic, so their fault-free
//! baseline is a plain run over the same wire.  TSP and Water acquire
//! locks, and lock-grant order steers both their racy accesses and their
//! interval structure — so the baseline *records* its synchronization
//! schedule (§6.1) and the killed run *replays* it, making byte-identity
//! a meaningful assertion rather than a coin flip.

use std::time::Duration;

use cvm_apps::{fft, sor, tsp, water};
use cvm_dsm::{DsmConfig, FaultPlan, Protocol, RecoveryPolicy, RunReport};
use cvm_vclock::ProcId;

const NPROCS: usize = 4;

/// Tight RTO/backoff so a corpse is declared dead in milliseconds.
fn reliable_wire(seed: u64) -> FaultPlan {
    FaultPlan::clean(seed)
        .with_rto(Duration::from_millis(2), Duration::from_millis(16))
        .with_max_retransmits(8)
}

/// Baseline configuration: same wire and checkpointing as the killed run,
/// so the only difference between the pair is the kill itself.
fn clean_cfg(protocol: Protocol, seed: u64) -> DsmConfig {
    let mut cfg = DsmConfig::new(NPROCS);
    cfg.protocol = protocol;
    cfg.op_deadline = Duration::from_secs(5);
    cfg.net_loss = Some(reliable_wire(seed));
    cfg.recovery = RecoveryPolicy::Recover { max_attempts: 3 };
    cfg
}

fn killed_cfg(protocol: Protocol, seed: u64, victim: u16, at_event: u64) -> DsmConfig {
    let mut cfg = clean_cfg(protocol, seed);
    cfg.net_loss = Some(reliable_wire(seed).with_kill(ProcId(victim), at_event));
    cfg
}

fn race_fingerprint(report: &RunReport) -> Vec<String> {
    let mut rendered: Vec<String> = report
        .races
        .reports()
        .iter()
        .map(|r| format!("{:?}@{} {}", r.kind, r.epoch, r.render(&report.segments)))
        .collect();
    rendered.sort();
    rendered
}

fn assert_recovered(report: &RunReport, app: &str) {
    assert!(
        report.recovery.recoveries >= 1,
        "{app}: the scripted kill must actually trigger recovery"
    );
    assert!(report.recovery.checkpoints_taken > 0, "{app}");
    assert!(report.recovery.bytes_snapshotted > 0, "{app}");
}

#[test]
fn fft_recovers_from_worker_kill() {
    let params = fft::FftParams::small();
    let input = fft::input_signal(params.n());
    let expect = fft::dft_reference(&input, params.inverse);
    let (clean, _) = fft::run_on(clean_cfg(Protocol::SingleWriter, 11), params, &input);
    assert_eq!(clean.recovery.recoveries, 0);
    let (report, result) = fft::run_on(
        killed_cfg(Protocol::SingleWriter, 11, 2, 100),
        params,
        &input,
    );
    assert_recovered(&report, "fft");
    for (i, (a, b)) in result.data.iter().zip(&expect).enumerate() {
        assert!(
            (a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9,
            "element {i}: {a:?} vs {b:?}"
        );
    }
    assert_eq!(race_fingerprint(&clean), race_fingerprint(&report));
    assert!(
        report.races.is_empty(),
        "FFT stays race-free through recovery"
    );
}

#[test]
fn sor_recovers_from_master_kill() {
    let params = sor::SorParams::small();
    let expect = sor::reference(params);
    let (clean, _) = sor::run(clean_cfg(Protocol::MultiWriter, 12), params);
    assert_eq!(clean.recovery.recoveries, 0);
    let (report, result) = sor::run(killed_cfg(Protocol::MultiWriter, 12, 0, 150), params);
    assert_recovered(&report, "sor");
    for (i, (a, b)) in result.grid.iter().zip(&expect).enumerate() {
        assert!((a - b).abs() < 1e-12, "cell {i}");
    }
    assert_eq!(race_fingerprint(&clean), race_fingerprint(&report));
    assert!(
        report.races.is_empty(),
        "SOR stays race-free through recovery"
    );
}

#[test]
fn tsp_recovers_from_worker_kill_with_replayed_schedule() {
    let params = tsp::TspParams::small();
    let dist = tsp::distance_matrix(params.ncities, params.seed);
    let (opt, _) = tsp::solve_reference(&dist, params.ncities);
    // Record the fault-free lock-grant order...
    let mut rec_cfg = clean_cfg(Protocol::SingleWriter, 13);
    rec_cfg.record_sync = true;
    let (clean, clean_result) = tsp::run(rec_cfg, params);
    assert_eq!(clean_result.best_len, opt);
    // ...and replay it through the kill, so the racy bound reads land in
    // the same intervals and byte-identity is well-defined.
    let mut cfg = killed_cfg(Protocol::SingleWriter, 13, 1, 150);
    cfg.replay = Some(clean.schedule.clone());
    let (report, result) = tsp::run(cfg, params);
    assert_recovered(&report, "tsp");
    assert_eq!(result.best_len, opt, "recovered search must stay optimal");
    assert_eq!(race_fingerprint(&clean), race_fingerprint(&report));
    assert!(
        !report.races.reports().is_empty(),
        "the benign bound race must survive recovery"
    );
}

#[test]
fn water_recovers_from_worker_kill_with_replayed_schedule() {
    let params = water::WaterParams::small();
    let expect = water::reference(&params);
    let mut rec_cfg = clean_cfg(Protocol::MultiWriter, 14);
    rec_cfg.record_sync = true;
    let (clean, _) = water::run(rec_cfg, params);
    let mut cfg = killed_cfg(Protocol::MultiWriter, 14, 3, 200);
    cfg.replay = Some(clean.schedule.clone());
    let (report, result) = water::run(cfg, params);
    assert_recovered(&report, "water");
    for (i, (a, b)) in result.positions.iter().zip(&expect.positions).enumerate() {
        assert!((a - b).abs() < 1e-9, "position {i}");
    }
    assert_eq!(race_fingerprint(&clean), race_fingerprint(&report));
    let vir = report
        .segments
        .segments()
        .iter()
        .find(|s| s.name == "VIR")
        .unwrap()
        .base;
    assert!(
        !report.races.at(vir).is_empty(),
        "the VIR write-write bug must survive recovery"
    );
}
