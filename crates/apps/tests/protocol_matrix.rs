//! Protocol matrix: every application must produce correct results and the
//! same race findings under both coherence protocols ("our algorithm will
//! work identically with CVM's multi-writer protocol", §6.2).

use cvm_apps::{fft, sor, tsp, water};
use cvm_dsm::{DsmConfig, Protocol};

fn cfg(nprocs: usize, protocol: Protocol) -> DsmConfig {
    let mut cfg = DsmConfig::new(nprocs);
    cfg.protocol = protocol;
    cfg
}

const PROTOCOLS: [Protocol; 2] = [Protocol::SingleWriter, Protocol::MultiWriter];

#[test]
fn sor_correct_under_both_protocols() {
    let params = sor::SorParams::small();
    let expect = sor::reference(params);
    for protocol in PROTOCOLS {
        let (report, result) = sor::run(cfg(4, protocol), params);
        for (i, (a, b)) in result.grid.iter().zip(&expect).enumerate() {
            assert!((a - b).abs() < 1e-12, "{protocol:?} cell {i}");
        }
        assert!(report.races.is_empty(), "{protocol:?}");
    }
}

#[test]
fn fft_correct_under_both_protocols() {
    let params = fft::FftParams {
        m: 8,
        inverse: false,
    };
    let input = fft::input_signal(params.n());
    let expect = fft::dft_reference(&input, false);
    for protocol in PROTOCOLS {
        let (report, result) = fft::run_on(cfg(4, protocol), params, &input);
        for (i, (a, b)) in result.data.iter().zip(&expect).enumerate() {
            assert!(
                (a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9,
                "{protocol:?} element {i}: {a:?} vs {b:?}"
            );
        }
        assert!(report.races.is_empty(), "{protocol:?}");
    }
}

#[test]
fn tsp_optimal_and_racy_under_both_protocols() {
    let params = tsp::TspParams::small();
    let dist = tsp::distance_matrix(params.ncities, params.seed);
    let (opt, _) = tsp::solve_reference(&dist, params.ncities);
    for protocol in PROTOCOLS {
        let (report, result) = tsp::run(cfg(4, protocol), params);
        assert_eq!(result.best_len, opt, "{protocol:?}");
        let bound = report
            .segments
            .segments()
            .iter()
            .find(|s| s.name == "MinTourLen")
            .unwrap()
            .base;
        assert!(
            !report.races.at(bound).is_empty(),
            "{protocol:?}: bound race lost"
        );
    }
}

#[test]
fn water_correct_and_buggy_under_both_protocols() {
    let params = water::WaterParams::small();
    let expect = water::reference(&params);
    for protocol in PROTOCOLS {
        let (report, result) = water::run(cfg(4, protocol), params);
        for (i, (a, b)) in result.positions.iter().zip(&expect.positions).enumerate() {
            assert!((a - b).abs() < 1e-9, "{protocol:?} position {i}");
        }
        let vir = report
            .segments
            .segments()
            .iter()
            .find(|s| s.name == "VIR")
            .unwrap()
            .base;
        assert!(
            !report.races.at(vir).is_empty(),
            "{protocol:?}: VIR race lost"
        );
    }
}

#[test]
fn multiwriter_moves_diffs_not_ownership() {
    let (report, _) = sor::run(cfg(4, Protocol::MultiWriter), sor::SorParams::small());
    let diffs: u64 = report.nodes.iter().map(|n| n.stats.diffs_made).sum();
    assert!(diffs > 0, "multi-writer must flush diffs");
    let (sw_report, _) = sor::run(cfg(4, Protocol::SingleWriter), sor::SorParams::small());
    let sw_diffs: u64 = sw_report.nodes.iter().map(|n| n.stats.diffs_made).sum();
    assert_eq!(sw_diffs, 0, "single-writer never diffs");
}

#[test]
fn single_proc_runs_under_both_protocols() {
    for protocol in PROTOCOLS {
        let (report, result) = sor::run(cfg(1, protocol), sor::SorParams::small());
        assert!(report.races.is_empty(), "{protocol:?}");
        assert_eq!(result.grid.len(), 24 * 24);
    }
}
