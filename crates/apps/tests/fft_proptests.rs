//! Property-based validation of the FFT application.

use cvm_apps::fft::{self, Complex, FftParams};
use cvm_dsm::DsmConfig;
use proptest::prelude::*;

fn arb_signal(n: usize) -> impl Strategy<Value = Vec<Complex>> {
    proptest::collection::vec(
        (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex { re, im }),
        n..=n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The parallel six-step FFT agrees with the naive DFT on arbitrary
    /// inputs, across processor counts.
    #[test]
    fn six_step_matches_dft_on_random_inputs(
        input in arb_signal(16),
        nprocs in 1usize..5,
    ) {
        let params = FftParams { m: 4, inverse: false };
        let (report, result) = fft::run_on(DsmConfig::new(nprocs), params, &input);
        let expect = fft::dft_reference(&input, false);
        for (i, (a, b)) in result.data.iter().zip(&expect).enumerate() {
            prop_assert!(
                (a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8,
                "element {i}: {a:?} vs {b:?}"
            );
        }
        prop_assert!(report.races.is_empty());
    }

    /// Forward then inverse recovers the signal (Parseval-style roundtrip)
    /// on the DSM.
    #[test]
    fn roundtrip_recovers_random_signal(input in arb_signal(64)) {
        let fwd = FftParams { m: 8, inverse: false };
        let inv = FftParams { m: 8, inverse: true };
        let (_, spectrum) = fft::run_on(DsmConfig::new(2), fwd, &input);
        let (_, back) = fft::run_on(DsmConfig::new(2), inv, &spectrum.data);
        for (i, (a, b)) in back.data.iter().zip(&input).enumerate() {
            prop_assert!(
                (a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8,
                "element {i}: {a:?} vs {b:?}"
            );
        }
    }

    /// Parseval's theorem: energy is preserved (up to 1/N) by the local
    /// kernel.
    #[test]
    fn parseval_holds_for_local_fft(input in arb_signal(32)) {
        let mut buf = input.clone();
        fft::fft_local(&mut buf, -1.0);
        let time_energy: f64 = input.iter().map(|c| c.re * c.re + c.im * c.im).sum();
        let freq_energy: f64 =
            buf.iter().map(|c| c.re * c.re + c.im * c.im).sum::<f64>() / 32.0;
        prop_assert!(
            (time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy),
            "{time_energy} vs {freq_energy}"
        );
    }

    /// Linearity of the DSM transform: FFT(a + b) = FFT(a) + FFT(b).
    #[test]
    fn fft_is_linear(a in arb_signal(16), b in arb_signal(16)) {
        let params = FftParams { m: 4, inverse: false };
        let sum: Vec<Complex> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| *x + *y)
            .collect();
        let (_, fa) = fft::run_on(DsmConfig::new(2), params, &a);
        let (_, fb) = fft::run_on(DsmConfig::new(2), params, &b);
        let (_, fsum) = fft::run_on(DsmConfig::new(2), params, &sum);
        for i in 0..16 {
            let lin = fa.data[i] + fb.data[i];
            prop_assert!(
                (lin.re - fsum.data[i].re).abs() < 1e-8
                    && (lin.im - fsum.data[i].im).abs() < 1e-8
            );
        }
    }
}
