//! The paper's four evaluation applications, ported to the CVM DSM.
//!
//! These are the programs of Table 1, re-implemented against
//! [`cvm_dsm::ProcHandle`] with the same sharing patterns, synchronization
//! structure, and — crucially — the same races:
//!
//! * [`fft`] — a 1-D complex FFT over a 64×64×16 grid using the six-step
//!   transpose method; barrier-only, with heavy transpose-phase false
//!   sharing but no races;
//! * [`sor`] — red-black successive over-relaxation on a 512×512 grid with
//!   page-aligned rows; barrier-only and entirely free of unsynchronized
//!   sharing (the paper's 0 % row of Table 3);
//! * [`tsp`] — branch-and-bound traveling salesman, whose workers read the
//!   global tour bound *without* synchronization as a deliberate
//!   performance trade-off: a benign read-write data race the detector
//!   must find;
//! * [`water`] — an N-squared molecular dynamics kernel in the mould of
//!   Splash2 Water-Nsquared, with fine-grained per-partition force locks
//!   and (in the buggy variant) an unsynchronized global virial
//!   accumulation: the write-write race that was a real reported bug.
//!
//! Each module provides parameters matching the paper's input sets, a
//! sequential reference for correctness checking, and a `run` entry point
//! returning the DSM [`cvm_dsm::RunReport`] plus application-level results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fft;
pub mod sor;
pub mod tsp;
pub mod water;

/// The four applications, for harness iteration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum App {
    /// Fast Fourier transform.
    Fft,
    /// Red-black successive over-relaxation.
    Sor,
    /// Branch-and-bound traveling salesman.
    Tsp,
    /// N-squared molecular dynamics.
    Water,
}

impl App {
    /// All four, in the paper's table order.
    pub const ALL: [App; 4] = [App::Fft, App::Sor, App::Tsp, App::Water];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            App::Fft => "FFT",
            App::Sor => "SOR",
            App::Tsp => "TSP",
            App::Water => "Water",
        }
    }

    /// The paper's input-set description (Table 1).
    pub fn input_set(self) -> &'static str {
        match self {
            App::Fft => "64 x 64 x 16",
            App::Sor => "512x512",
            App::Tsp => "19 cities",
            App::Water => "216 mols, 5 iters",
        }
    }

    /// The paper's synchronization column (Table 1).
    pub fn sync_kinds(self) -> &'static str {
        match self {
            App::Fft | App::Sor => "barrier",
            App::Tsp => "lock",
            App::Water => "lock, barrier",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_table_metadata() {
        assert_eq!(App::ALL.len(), 4);
        assert_eq!(App::Fft.name(), "FFT");
        assert_eq!(App::Water.input_set(), "216 mols, 5 iters");
        assert_eq!(App::Tsp.sync_kinds(), "lock");
        assert_eq!(App::Sor.sync_kinds(), "barrier");
    }
}
