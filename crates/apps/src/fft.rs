//! FFT: a 1-D complex FFT via the six-step (transpose) method.
//!
//! The paper's input "64 x 64 x 16" is 65,536 complex points — an m×m
//! matrix with m = 256.  The six-step method alternates local row FFTs
//! with matrix transposes, a barrier between phases:
//!
//! 1. transpose, 2. m-point FFT on rows, 3. twiddle multiply,
//! 4. transpose, 5. m-point FFT on rows, 6. transpose.
//!
//! Transposes read remote rows (written before the last barrier — ordered)
//! and write locally-owned rows.  The matrices are stored *contiguously*
//! (as in Splash2), so on machines whose VM page exceeds one row (the
//! DECstations' 8 KB pages vs 4 KB rows) the row blocks of adjacent
//! processes share boundary pages: concurrent same-epoch writes to one
//! page, at different words.  That false sharing — examined and dismissed
//! by the detector — is what puts FFT at a nonzero "Intervals Used" but a
//! tiny "Bitmaps Used" in Table 3, with no races.
//!
//! Shared memory: source + destination + twiddle matrices, 3 × 1 MB at the
//! paper's size (Table 1's 3,088 KB).

use cvm_dsm::{Cluster, DsmConfig, RunReport};
use cvm_page::GAddr;
use parking_lot::Mutex;

/// One complex number, stored as two shared words (re, im).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// `exp(i * theta)`.
    pub fn cis(theta: f64) -> Complex {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

/// FFT parameters.
#[derive(Clone, Copy, Debug)]
pub struct FftParams {
    /// Matrix side; the transform length is `m * m`.  Must be a power of
    /// two.
    pub m: usize,
    /// Inverse transform.
    pub inverse: bool,
}

impl FftParams {
    /// The paper's input: 65,536 points (m = 256).
    pub fn paper() -> Self {
        FftParams {
            m: 256,
            inverse: false,
        }
    }

    /// A small instance for tests (N = 64).
    pub fn small() -> Self {
        FftParams {
            m: 8,
            inverse: false,
        }
    }

    /// Transform length.
    pub fn n(&self) -> usize {
        self.m * self.m
    }
}

/// Result: the transformed sequence, gathered by process 0.
#[derive(Clone, Debug)]
pub struct FftResult {
    /// Output sequence, natural order.
    pub data: Vec<Complex>,
}

/// Deterministic input signal: a mix of tones plus a pseudo-random phase,
/// so the spectrum is non-trivial but reproducible.
pub fn input_signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            Complex {
                re: (2.0 * std::f64::consts::PI * 3.0 * t).sin()
                    + 0.5 * (2.0 * std::f64::consts::PI * 17.0 * t).cos(),
                im: 0.25 * (2.0 * std::f64::consts::PI * 5.0 * t).sin(),
            }
        })
        .collect()
}

/// In-place iterative radix-2 FFT of a local buffer.
///
/// `sign` is -1 for the forward transform, +1 for the inverse (no
/// scaling).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_local(buf: &mut [Complex], sign: f64) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            buf.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex { re: 1.0, im: 0.0 };
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Naive O(n²) DFT reference.
pub fn dft_reference(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex::ZERO;
        for (i, &x) in input.iter().enumerate() {
            let w = Complex::cis(sign * 2.0 * std::f64::consts::PI * (i * k) as f64 / n as f64);
            acc = acc + x * w;
        }
        if inverse {
            acc = Complex {
                re: acc.re / n as f64,
                im: acc.im / n as f64,
            };
        }
        out.push(acc);
    }
    out
}

/// Cycles of floating-point work per butterfly.
const BUTTERFLY_CYCLES: u64 = 12;

/// Runs the six-step FFT on the DSM.
pub fn run(cfg: DsmConfig, params: FftParams) -> (RunReport, FftResult) {
    run_on(cfg, params, &input_signal(params.n()))
}

/// Runs the six-step FFT on the DSM over a caller-supplied input.
pub fn run_on(cfg: DsmConfig, params: FftParams, input: &[Complex]) -> (RunReport, FftResult) {
    let m = params.m;
    assert!(m.is_power_of_two(), "matrix side must be a power of two");
    let n = params.n();
    assert_eq!(input.len(), n, "input length mismatch");
    let sign = if params.inverse { 1.0 } else { -1.0 };
    let result = Mutex::new(None);

    let report = Cluster::run(
        cfg,
        |alloc| {
            // A small globals block first, then the matrices allocated
            // back-to-back without page alignment — exactly how the
            // original malloc'd them.  Row blocks therefore straddle page
            // boundaries, which is where FFT's transpose-phase false
            // sharing comes from on large-page machines.
            let _globals = alloc.alloc("fft_globals", 24).unwrap();
            let words = (n * 2 * 8) as u64;
            let src = alloc.alloc("fft_src", words).unwrap();
            let dst = alloc.alloc("fft_dst", words).unwrap();
            let tw = alloc.alloc("fft_twiddle", words).unwrap();
            (src, dst, tw)
        },
        |h, &(src, dst, tw)| {
            let at = |base: GAddr, row: usize, col: usize| -> GAddr {
                base.word(((row * m + col) * 2) as u64)
            };
            let read_c = |base: GAddr, row: usize, col: usize| -> Complex {
                let a = at(base, row, col);
                Complex {
                    re: h.read_f64(a),
                    im: h.read_f64(a.offset(8)),
                }
            };
            let write_c = |base: GAddr, row: usize, col: usize, v: Complex| {
                let a = at(base, row, col);
                h.write_f64(a, v.re);
                h.write_f64(a.offset(8), v.im);
            };
            let (lo, hi) = crate::sor::row_block(m, h.nprocs(), h.proc());
            // Seven barrier phases, each an epoch step so a restored node
            // skips already-checkpointed work and rejoins the barrier loop.
            let mut ep = h.epochs();

            // Initialization: input rows and twiddles for owned rows.
            ep.step(|| {
                for i in lo..hi {
                    for j in 0..m {
                        write_c(src, i, j, input[i * m + j]);
                        let theta = sign * 2.0 * std::f64::consts::PI * (i * j) as f64 / n as f64;
                        write_c(tw, i, j, Complex::cis(theta));
                    }
                }
            });

            let transpose = |from: GAddr, to: GAddr| {
                // Read remote columns, write own rows.
                for i in lo..hi {
                    for j in 0..m {
                        let v = read_c(from, j, i);
                        write_c(to, i, j, v);
                    }
                    h.private_traffic(12 * m as u64);
                }
            };
            let fft_rows = |grid: GAddr, twiddle: bool| {
                let mut buf = vec![Complex::ZERO; m];
                for i in lo..hi {
                    for (j, slot) in buf.iter_mut().enumerate() {
                        *slot = read_c(grid, i, j);
                    }
                    fft_local(&mut buf, sign);
                    h.compute((m as u64 / 2) * (m.trailing_zeros() as u64) * BUTTERFLY_CYCLES);
                    h.private_traffic(12 * m as u64);
                    for (j, &v) in buf.iter().enumerate() {
                        let v = if twiddle { v * read_c(tw, i, j) } else { v };
                        write_c(grid, i, j, v);
                    }
                }
            };

            ep.step(|| transpose(src, dst)); // Step 1.
            ep.step(|| fft_rows(dst, true)); // Steps 2 + 3 (twiddle fused).
            ep.step(|| transpose(dst, src)); // Step 4.
            ep.step(|| fft_rows(src, false)); // Step 5.
            ep.step(|| transpose(src, dst)); // Step 6.

            ep.step(|| {
                if h.proc() == 0 {
                    let scale = if params.inverse { 1.0 / n as f64 } else { 1.0 };
                    let mut out = vec![Complex::ZERO; n];
                    for i in 0..m {
                        for j in 0..m {
                            let v = read_c(dst, i, j);
                            out[i * m + j] = Complex {
                                re: v.re * scale,
                                im: v.im * scale,
                            };
                        }
                    }
                    *result.lock() = Some(out);
                }
            });
        },
    )
    .expect("cluster run");
    let data = result.into_inner().expect("process 0 gathered the output");
    (report, FftResult { data })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "element {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn fft_local_matches_dft() {
        let input = input_signal(16);
        let mut buf = input.clone();
        fft_local(&mut buf, -1.0);
        close(&buf, &dft_reference(&input, false), 1e-9);
    }

    #[test]
    fn fft_local_roundtrip() {
        let input = input_signal(64);
        let mut buf = input.clone();
        fft_local(&mut buf, -1.0);
        fft_local(&mut buf, 1.0);
        let scaled: Vec<Complex> = buf
            .iter()
            .map(|c| Complex {
                re: c.re / 64.0,
                im: c.im / 64.0,
            })
            .collect();
        close(&scaled, &input, 1e-9);
    }

    #[test]
    fn six_step_matches_dft_small() {
        let params = FftParams {
            m: 4,
            inverse: false,
        };
        let input = input_signal(16);
        let (report, result) = run_on(DsmConfig::new(2), params, &input);
        close(&result.data, &dft_reference(&input, false), 1e-9);
        assert!(
            report.races.is_empty(),
            "FFT must be race-free: {:?}",
            report.races.reports()
        );
    }

    #[test]
    fn six_step_inverse_recovers_signal() {
        let params = FftParams {
            m: 8,
            inverse: false,
        };
        let input = input_signal(64);
        let (_, fwd) = run_on(DsmConfig::new(4), params, &input);
        let (_, back) = run_on(
            DsmConfig::new(4),
            FftParams {
                m: 8,
                inverse: true,
            },
            &fwd.data,
        );
        close(&back.data, &input, 1e-9);
    }

    #[test]
    fn false_sharing_on_large_pages_without_races() {
        // DECstation-style 8 KB pages make adjacent row blocks share
        // boundary pages (rows of m=16 complex = 256 B): concurrent writes
        // to the same page at different words.  Examined, dismissed.
        let mut cfg = DsmConfig::new(4);
        cfg.geometry = cvm_page::Geometry::with_page_bytes(8192);
        let params = FftParams {
            m: 16,
            inverse: false,
        };
        let input = input_signal(params.n());
        let (report, result) = run_on(cfg, params, &input);
        close(&result.data, &dft_reference(&input, false), 1e-8);
        assert!(report.races.is_empty());
        assert!(
            report.det_stats.intervals_used > 0,
            "expected transpose-phase false sharing"
        );
    }
}
