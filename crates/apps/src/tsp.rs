//! TSP: branch-and-bound traveling salesman with a racy global bound.
//!
//! Workers pop path prefixes from a shared, lock-protected stack; short
//! prefixes are expanded and pushed back, long ones solved by local
//! depth-first search.  Pruning compares against the global best tour
//! length, which is **read without synchronization** — exactly the
//! performance trade-off the original program made: a stale bound only
//! causes redundant work, never an incorrect result.  Updates to the bound
//! (and the best path) take the bound lock.
//!
//! The detector therefore reports read-write races on `MinTourLen` between
//! the unsynchronized pruning reads and the locked updates — the paper's
//! first headline finding ("a large number of data races that result from
//! unsynchronized read accesses to a global tour bound").

use cvm_dsm::{Cluster, DsmConfig, ProcHandle, RunReport};
use cvm_page::GAddr;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The queue lock (work stack) and the bound lock.
const QLOCK: u32 = 0;
/// Lock protecting `MinTourLen` updates and the best path.
const BLOCK: u32 = 1;

/// TSP parameters.
#[derive(Clone, Copy, Debug)]
pub struct TspParams {
    /// Number of cities; the paper uses 19.
    pub ncities: usize,
    /// Instance seed (city coordinates).
    pub seed: u64,
    /// Prefixes shorter than this are split and re-queued; longer ones are
    /// solved by local DFS.
    pub cutoff: usize,
    /// Capacity of the shared work stack (entries).
    pub stack_capacity: usize,
    /// Read the bound *with* the lock during pruning — the "fixed" variant
    /// with no races (and more lock traffic).
    pub synchronized_bound: bool,
}

impl TspParams {
    /// The paper's input: 19 cities.
    pub fn paper() -> Self {
        TspParams {
            ncities: 19,
            seed: 1996,
            cutoff: 3,
            stack_capacity: 4_096,
            synchronized_bound: false,
        }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        TspParams {
            ncities: 9,
            seed: 7,
            cutoff: 3,
            stack_capacity: 1_024,
            synchronized_bound: false,
        }
    }
}

/// Result of a run.
#[derive(Clone, Debug)]
pub struct TspResult {
    /// Optimal tour length found.
    pub best_len: u64,
    /// An optimal tour (city sequence starting at 0).
    pub best_path: Vec<u16>,
    /// Nodes expanded across all processes.
    pub expansions: u64,
}

/// Generates the seeded distance matrix (symmetric, integer euclidean).
pub fn distance_matrix(ncities: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..ncities)
        .map(|_| (rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
        .collect();
    let mut d = vec![0u64; ncities * ncities];
    for i in 0..ncities {
        for j in 0..ncities {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            d[i * ncities + j] = (dx * dx + dy * dy).sqrt().round() as u64;
        }
    }
    d
}

/// Nearest-neighbour heuristic tour (initial bound).
pub fn nearest_neighbour(dist: &[u64], n: usize) -> (u64, Vec<u16>) {
    let mut visited = vec![false; n];
    let mut path = vec![0u16];
    visited[0] = true;
    let mut len = 0u64;
    let mut cur = 0usize;
    for _ in 1..n {
        let (next, d) = (0..n)
            .filter(|&j| !visited[j])
            .map(|j| (j, dist[cur * n + j]))
            .min_by_key(|&(_, d)| d)
            .expect("unvisited city exists");
        visited[next] = true;
        path.push(next as u16);
        len += d;
        cur = next;
    }
    len += dist[cur * n];
    (len, path)
}

/// Exact sequential solver (plain branch-and-bound, used as the reference).
pub fn solve_reference(dist: &[u64], n: usize) -> (u64, u64) {
    let (mut best, _) = nearest_neighbour(dist, n);
    let min_out = min_out_edges(dist, n);
    let mut visited = vec![false; n];
    visited[0] = true;
    let mut expansions = 0u64;
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        dist: &[u64],
        n: usize,
        min_out: &[u64],
        visited: &mut [bool],
        cur: usize,
        depth: usize,
        len: u64,
        best: &mut u64,
        expansions: &mut u64,
    ) {
        *expansions += 1;
        if depth == n {
            let total = len + dist[cur * n];
            if total < *best {
                *best = total;
            }
            return;
        }
        let remaining: u64 = (0..n).filter(|&j| !visited[j]).map(|j| min_out[j]).sum();
        if len + remaining >= *best {
            return;
        }
        #[allow(clippy::needless_range_loop)]
        for j in 1..n {
            if visited[j] {
                continue;
            }
            visited[j] = true;
            dfs(
                dist,
                n,
                min_out,
                visited,
                j,
                depth + 1,
                len + dist[cur * n + j],
                best,
                expansions,
            );
            visited[j] = false;
        }
    }
    dfs(
        dist,
        n,
        &min_out,
        &mut visited,
        0,
        1,
        0,
        &mut best,
        &mut expansions,
    );
    (best, expansions)
}

/// Brute-force optimum for tiny instances (cross-check of the reference).
pub fn brute_force(dist: &[u64], n: usize) -> u64 {
    assert!(n <= 10, "brute force is factorial");
    let mut order: Vec<usize> = (1..n).collect();
    let mut best = u64::MAX;
    permute(&mut order, 0, &mut |perm| {
        let mut len = 0;
        let mut cur = 0;
        for &c in perm {
            len += dist[cur * n + c];
            cur = c;
        }
        len += dist[cur * n];
        best = best.min(len);
    });
    best
}

fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, f);
        v.swap(k, i);
    }
}

fn min_out_edges(dist: &[u64], n: usize) -> Vec<u64> {
    (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i)
                .map(|j| dist[i * n + j])
                .min()
                .unwrap_or(0)
        })
        .collect()
}

/// Cycles of private work per node expansion.
const EXPAND_CYCLES: u64 = 60;

/// Runs parallel branch-and-bound TSP on the DSM.
pub fn run(cfg: DsmConfig, params: TspParams) -> (RunReport, TspResult) {
    let n = params.ncities;
    assert!((4..=32).contains(&n), "unsupported city count");
    let dist = distance_matrix(n, params.seed);
    let entry_words = (n + 2) as u64; // len, tour-length-so-far, cities...
    let result = Mutex::new(None);
    // Per-process slots, assigned (not accumulated) inside the search
    // epoch: a recovery attempt that re-runs the search overwrites its own
    // slot instead of double-counting, and a restored node that skips the
    // phase leaves its previous count in place.
    let expansion_slots = Mutex::new(vec![0u64; cfg.nprocs]);

    let report = Cluster::run(
        cfg,
        |alloc| {
            let dist_a = alloc.alloc("Distances", (n * n * 8) as u64).unwrap();
            let bound = alloc.alloc("MinTourLen", 8).unwrap();
            let best = alloc.alloc("BestPath", (n * 8) as u64).unwrap();
            let top = alloc.alloc("StackTop", 8).unwrap();
            let stack = alloc
                .alloc("TourStack", params.stack_capacity as u64 * entry_words * 8)
                .unwrap();
            (dist_a, bound, best, top, stack)
        },
        |h, &(dist_a, bound, best, top, stack)| {
            let d_at = |i: usize, j: usize| dist_a.word((i * n + j) as u64);
            let entry = |slot: u64| stack.word(slot * entry_words);
            // Three barrier phases — seed, search, gather — each an epoch
            // step so a checkpoint-restored node rejoins mid-run.
            let mut ep = h.epochs();
            ep.step(|| {
                if h.proc() == 0 {
                    for i in 0..n {
                        for j in 0..n {
                            h.write(d_at(i, j), dist[i * n + j]);
                        }
                    }
                    let (nn_len, nn_path) = nearest_neighbour(&dist, n);
                    h.write(bound, nn_len);
                    for (i, &c) in nn_path.iter().enumerate() {
                        h.write(best.word(i as u64), u64::from(c));
                    }
                    // Seed the stack with the root prefix [0].
                    let e = entry(0);
                    h.write(e, 1); // Prefix length.
                    h.write(e.offset(8), 0); // Partial tour length.
                    h.write(e.offset(16), 0); // City 0.
                    h.write(top, 1);
                }
            });

            ep.step(|| {
                // Private (per-process) data: the analysis could not prove
                // the search scratch private, so it is instrumented at run
                // time.
                let min_out: Vec<u64> = {
                    let mut m = vec![u64::MAX; n];
                    for (i, slot) in m.iter_mut().enumerate() {
                        for j in 0..n {
                            if i != j {
                                *slot = (*slot).min(h.read(d_at(i, j)));
                            }
                        }
                    }
                    m
                };
                let read_bound = |h: &ProcHandle| -> u64 {
                    if params.synchronized_bound {
                        h.lock(BLOCK);
                        let b = h.read_at(bound, site::BOUND_SYNC_READ);
                        h.unlock(BLOCK);
                        b
                    } else {
                        // THE RACE: unsynchronized read of the global bound.
                        h.read_at(bound, site::BOUND_RACY_READ)
                    }
                };
                // Prime the bound with an unsynchronized read, as the
                // original does before entering the search.  (This alone
                // does not pin the race: the priming interval ends at the
                // first QLOCK acquire, so lock chains can order it before
                // every bound update — see the exit read below.)
                let _ = read_bound(h);
                let mut expansions = 0u64;
                let mut path = vec![0u16; n];
                let mut visited = vec![false; n];

                loop {
                    // Pop one prefix.
                    h.lock(QLOCK);
                    let t = h.read(top);
                    let popped = if t > 0 {
                        h.write(top, t - 1);
                        let e = entry(t - 1);
                        let len = h.read(e) as usize;
                        let plen = h.read(e.offset(8));
                        for (i, slot) in path.iter_mut().enumerate().take(len) {
                            *slot = h.read(e.offset(16 + i as u64 * 8)) as u16;
                        }
                        Some((len, plen))
                    } else {
                        None
                    };
                    h.unlock(QLOCK);
                    let Some((plen_cities, partial)) = popped else {
                        // Stack drained.  (Workers may terminate while
                        // others still expand; any work they would have
                        // pushed is solved by whoever pushed it — expansion
                        // pushes happen before the pop that drains, under
                        // the same lock, so an empty stack with all
                        // prefixes at/below the cutoff solved means
                        // completion for this worker.)
                        break;
                    };
                    visited.iter_mut().for_each(|v| *v = false);
                    for &c in &path[..plen_cities] {
                        visited[c as usize] = true;
                    }
                    let cur = path[plen_cities - 1] as usize;

                    if plen_cities < params.cutoff.min(n) {
                        // Expand one level; push children (pruned) in one
                        // critical section.
                        expansions += 1;
                        h.compute(EXPAND_CYCLES);
                        h.private_traffic(10);
                        let b = read_bound(h);
                        h.lock(QLOCK);
                        let mut t = h.read(top);
                        #[allow(clippy::needless_range_loop)]
                        for j in 1..n {
                            if visited[j] {
                                continue;
                            }
                            let child_len = partial + h.read(d_at(cur, j));
                            if child_len >= b {
                                continue;
                            }
                            assert!((t as usize) < params.stack_capacity, "tour stack overflow");
                            let e = entry(t);
                            h.write(e, (plen_cities + 1) as u64);
                            h.write(e.offset(8), child_len);
                            for (i, &c) in path.iter().enumerate().take(plen_cities) {
                                h.write(e.offset(16 + i as u64 * 8), u64::from(c));
                            }
                            h.write(e.offset(16 + plen_cities as u64 * 8), j as u64);
                            t += 1;
                        }
                        h.write(top, t);
                        h.unlock(QLOCK);
                        continue;
                    }

                    // Solve the prefix by local DFS with racy pruning.
                    dfs(
                        h,
                        n,
                        &d_at,
                        &min_out,
                        &mut visited,
                        &mut path,
                        plen_cities,
                        cur,
                        partial,
                        bound,
                        best,
                        &read_bound,
                        params.synchronized_bound,
                        &mut expansions,
                    );
                }
                // Sample the bound once more on the way out, as the
                // original does when reporting per-worker statistics.  A
                // worker that drains early performs no further acquires, so
                // no release chain can order this read before a later bound
                // improvement: the read-write race stays observable
                // whenever any process improves the bound, regardless of
                // how the lock chains fall.
                let _ = read_bound(h);
                expansion_slots.lock()[h.proc()] = expansions;
            });

            ep.step(|| {
                if h.proc() == 0 {
                    let best_len = h.read(bound);
                    let best_path: Vec<u16> =
                        (0..n).map(|i| h.read(best.word(i as u64)) as u16).collect();
                    *result.lock() = Some((best_len, best_path));
                }
            });
        },
    )
    .expect("cluster run");
    let (best_len, best_path) = result.into_inner().expect("gathered");
    (
        report,
        TspResult {
            best_len,
            best_path,
            expansions: expansion_slots.into_inner().iter().sum(),
        },
    )
}

/// Access-site ids for §6.1 replay identification.
pub mod site {
    /// The unsynchronized bound read in the pruning test.
    pub const BOUND_RACY_READ: u32 = 100;
    /// The bound read under the lock (fixed variant).
    pub const BOUND_SYNC_READ: u32 = 101;
    /// The bound re-read inside the update critical section.
    pub const BOUND_UPDATE_READ: u32 = 102;
    /// The bound write inside the update critical section.
    pub const BOUND_UPDATE_WRITE: u32 = 103;
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    h: &ProcHandle,
    n: usize,
    d_at: &impl Fn(usize, usize) -> GAddr,
    min_out: &[u64],
    visited: &mut Vec<bool>,
    path: &mut Vec<u16>,
    depth: usize,
    cur: usize,
    len: u64,
    bound: GAddr,
    best: GAddr,
    read_bound: &impl Fn(&ProcHandle) -> u64,
    synchronized: bool,
    expansions: &mut u64,
) {
    *expansions += 1;
    h.compute(EXPAND_CYCLES);
    h.private_traffic(6);
    if depth == n {
        let total = len + h.read(d_at(cur, 0));
        let b = read_bound(h);
        if total < b {
            h.lock(BLOCK);
            // Re-check under the lock (the update itself is correct).
            let cur_best = h.read_at(bound, site::BOUND_UPDATE_READ);
            if total < cur_best {
                h.write_at(bound, total, site::BOUND_UPDATE_WRITE);
                for (i, &c) in path.iter().enumerate().take(n) {
                    h.write(best.word(i as u64), u64::from(c));
                }
            }
            h.unlock(BLOCK);
        }
        return;
    }
    let remaining: u64 = (0..n).filter(|&j| !visited[j]).map(|j| min_out[j]).sum();
    let b = read_bound(h);
    if len + remaining >= b {
        return;
    }
    let _ = synchronized;
    for j in 1..n {
        if visited[j] {
            continue;
        }
        visited[j] = true;
        path[depth] = j as u16;
        let step = h.read(d_at(cur, j));
        dfs(
            h,
            n,
            d_at,
            min_out,
            visited,
            path,
            depth + 1,
            j,
            len + step,
            bound,
            best,
            read_bound,
            synchronized,
            expansions,
        );
        visited[j] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvm_race::RaceKind;

    #[test]
    fn reference_matches_brute_force() {
        for seed in [1, 2, 3] {
            let n = 8;
            let dist = distance_matrix(n, seed);
            let (bb, _) = solve_reference(&dist, n);
            assert_eq!(bb, brute_force(&dist, n), "seed {seed}");
        }
    }

    #[test]
    fn nearest_neighbour_is_a_valid_upper_bound() {
        let n = 12;
        let dist = distance_matrix(n, 42);
        let (nn, path) = nearest_neighbour(&dist, n);
        let (opt, _) = solve_reference(&dist, n);
        assert!(nn >= opt);
        // The NN path is a permutation of all cities starting at 0.
        let mut seen = vec![false; n];
        for &c in &path {
            assert!(!seen[c as usize]);
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(path[0], 0);
    }

    #[test]
    fn parallel_finds_optimum_and_the_bound_race() {
        let params = TspParams::small();
        let dist = distance_matrix(params.ncities, params.seed);
        let (expect, _) = solve_reference(&dist, params.ncities);
        let (report, result) = run(DsmConfig::new(4), params);
        assert_eq!(result.best_len, expect, "suboptimal tour");
        // The deliberate race on the tour bound is found, as a read-write
        // race on the MinTourLen word.
        let bound_addr = report
            .segments
            .segments()
            .iter()
            .find(|s| s.name == "MinTourLen")
            .unwrap()
            .base;
        let bound_races = report.races.at(bound_addr);
        assert!(
            !bound_races.is_empty(),
            "tour-bound race missed: races = {:?}",
            report.races.distinct_addrs()
        );
        assert!(bound_races.iter().any(|r| r.kind == RaceKind::ReadWrite));
    }

    #[test]
    fn synchronized_variant_has_no_bound_race() {
        let mut params = TspParams::small();
        params.synchronized_bound = true;
        let dist = distance_matrix(params.ncities, params.seed);
        let (expect, _) = solve_reference(&dist, params.ncities);
        let (report, result) = run(DsmConfig::new(4), params);
        assert_eq!(result.best_len, expect);
        let bound_addr = report
            .segments
            .segments()
            .iter()
            .find(|s| s.name == "MinTourLen")
            .unwrap()
            .base;
        assert!(
            report.races.at(bound_addr).is_empty(),
            "fixed variant misreported: {:?}",
            report.races.reports()
        );
    }

    #[test]
    fn valid_tour_is_produced() {
        let params = TspParams::small();
        let (_, result) = run(DsmConfig::new(2), params);
        let n = params.ncities;
        let mut seen = vec![false; n];
        assert_eq!(result.best_path.len(), n);
        for &c in &result.best_path {
            assert!(!seen[c as usize], "city repeated in tour");
            seen[c as usize] = true;
        }
        assert!(result.expansions > 0);
    }
}
