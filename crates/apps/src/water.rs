//! Water: an N-squared molecular dynamics kernel with a real bug.
//!
//! Modelled on Splash2's Water-Nsquared (216 molecules, 5 iterations in the
//! paper's runs): a predictor phase over per-molecule derivative state,
//! an O(N²) inter-molecular force phase, and a correction/energy phase,
//! separated by barriers.  Force contributions to *other* processes'
//! molecules are accumulated locally and flushed under per-partition locks
//! — the fine-grained synchronization behind Water's high interval count
//! and message overhead in the paper's Tables 1 and 3.
//!
//! **The bug.**  The global virial accumulator is updated once per process
//! per iteration *without* taking its lock in the buggy variant —
//! concurrent unsynchronized read-modify-writes of one shared word.  The
//! detector reports it as a write-write race; this models the real race
//! the paper found in the Splash2 original ("a data race that constituted
//! a real bug, reported to the Splash authors and fixed in their current
//! version").  The potential-energy sum, by contrast, is correctly locked.
//! [`WaterParams::as_fixed`] enables the repaired version.

use cvm_dsm::{Cluster, DsmConfig, RunReport};
use cvm_page::GAddr;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of derivative orders kept per molecule (positions, velocities,
/// and four higher orders — the Gear-style predictor state of the
/// original, which dominates its per-molecule memory).
pub const ORDERS: usize = 6;

/// Lock protecting the potential-energy sum (correctly used).
const POTA_LOCK: u32 = 1;
/// Lock protecting the virial sum (NOT taken in the buggy variant).
const VIR_LOCK: u32 = 2;
/// Lock protecting the kinetic-energy sum.
const KIN_LOCK: u32 = 3;
/// First per-partition force lock.
const FORCE_LOCK0: u32 = 8;

/// Water parameters.
#[derive(Clone, Copy, Debug)]
pub struct WaterParams {
    /// Number of molecules; the paper uses 216.
    pub nmols: usize,
    /// Time-step iterations; the paper uses 5.
    pub iters: usize,
    /// Molecule partitions (one force lock each).
    pub npartitions: usize,
    /// Instance seed.
    pub seed: u64,
    /// Take the virial lock (the repaired program).
    pub fixed: bool,
}

impl WaterParams {
    /// The paper's input: 216 molecules, 5 iterations.
    pub fn paper() -> Self {
        WaterParams {
            nmols: 216,
            iters: 5,
            npartitions: 54,
            seed: 1996,
            fixed: false,
        }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        WaterParams {
            nmols: 24,
            iters: 3,
            npartitions: 6,
            seed: 11,
            fixed: false,
        }
    }

    /// The repaired variant of the same instance.
    pub fn as_fixed(mut self) -> Self {
        self.fixed = true;
        self
    }
}

/// Result of a run (gathered by process 0 after the last barrier).
#[derive(Clone, Debug)]
pub struct WaterResult {
    /// Final positions, `[mol * 3 + dim]`.
    pub positions: Vec<f64>,
    /// Accumulated potential-energy sum (locked, exact up to FP order).
    pub potential: f64,
    /// Accumulated virial sum (racy in the buggy variant: may have lost
    /// updates).
    pub virial: f64,
    /// Accumulated kinetic-energy sum.
    pub kinetic: f64,
}

/// Deterministic initial state: jittered lattice, small seeded velocities,
/// zeroed higher derivatives.
pub fn initial_state(params: &WaterParams) -> Vec<f64> {
    let n = params.nmols;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let side = (n as f64).cbrt().ceil() as usize;
    let mut state = vec![0.0f64; n * 3 * ORDERS];
    for m in 0..n {
        let (x, y, z) = (m % side, (m / side) % side, m / (side * side));
        for (dim, base) in [(x, 0usize), (y, 1), (z, 2)] {
            // Order 0: position.
            state[(m * 3 + base) * ORDERS] = dim as f64 * 2.0 + rng.random_range(-0.2..0.2);
            // Order 1: velocity.
            state[(m * 3 + base) * ORDERS + 1] = rng.random_range(-0.05..0.05);
        }
    }
    state
}

const DT: f64 = 0.02;
/// Cycles of floating-point work per molecule pair.
const PAIR_CYCLES: u64 = 40;

/// A smooth, bounded pair interaction (softened inverse-square spring):
/// returns the force on `a` from `b`, the pair potential, and the pair's
/// virial contribution.
fn pair_force(pa: [f64; 3], pb: [f64; 3]) -> ([f64; 3], f64, f64) {
    let d = [pb[0] - pa[0], pb[1] - pa[1], pb[2] - pa[2]];
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    let soft = r2 + 0.5;
    let inv = 1.0 / soft;
    let mag = inv - 0.05 * inv * inv;
    let f = [d[0] * mag, d[1] * mag, d[2] * mag];
    let pot = -inv;
    let vir = mag * r2;
    (f, pot, vir)
}

/// Molecule partition index (uniform blocks).
fn partition_of(m: usize, nmols: usize, nparts: usize) -> usize {
    let per = nmols.div_ceil(nparts);
    m / per
}

/// First molecule of a partition.
fn partition_lo(part: usize, nmols: usize, nparts: usize) -> usize {
    let per = nmols.div_ceil(nparts);
    part * per
}

/// Molecules `[lo, hi)` owned by `proc`.
fn mol_block(n: usize, nprocs: usize, proc: usize) -> (usize, usize) {
    crate::sor::row_block(n, nprocs, proc)
}

/// Runs Water on the DSM.
pub fn run(cfg: DsmConfig, params: WaterParams) -> (RunReport, WaterResult) {
    let n = params.nmols;
    let init = initial_state(&params);
    let result = Mutex::new(None);
    // Per-processor state blocks and per-partition force blocks are padded
    // to page boundaries, as the original padded its shared arrays — this
    // is what keeps the single-writer protocol from thrashing ownership on
    // every predictor write.
    let nprocs = cfg.nprocs;
    let page = cfg.geometry.page_bytes();
    let mols_per_proc = n.div_ceil(nprocs);
    let state_block = (mols_per_proc as u64 * 3 * ORDERS as u64 * 8).div_ceil(page) * page;
    let mols_per_part = n.div_ceil(params.npartitions);
    // Force partition blocks are page-padded so a flush section (already
    // serialized by its partition lock) transfers its page once instead of
    // ping-ponging word by word with sections of other partitions.
    let force_block = (mols_per_part as u64 * 3 * 8).div_ceil(page) * page;

    let report = Cluster::run(
        cfg,
        |alloc| {
            // Per-molecule derivative state (the VAR array of the
            // original), force accumulators, and the global sums.
            let state = alloc
                .alloc_page_aligned("MolState", nprocs as u64 * state_block)
                .unwrap();
            let force = alloc
                .alloc_page_aligned("Forces", params.npartitions as u64 * force_block)
                .unwrap();
            let pota = alloc.alloc("POTA", 8).unwrap();
            let vir = alloc.alloc("VIR", 8).unwrap();
            let kin = alloc.alloc("KIN", 8).unwrap();
            (state, force, pota, vir, kin)
        },
        |h, &(state, force, pota, vir, kin)| {
            let s_at = |m: usize, dim: usize, order: usize| -> GAddr {
                let proc = m / mols_per_proc;
                let local = m - proc * mols_per_proc;
                state
                    .offset(proc as u64 * state_block)
                    .word(((local * 3 + dim) * ORDERS + order) as u64)
            };
            let f_at = |m: usize, dim: usize| -> GAddr {
                let part = partition_of(m, n, params.npartitions);
                let local = m - partition_lo(part, n, params.npartitions);
                force
                    .offset(part as u64 * force_block)
                    .word((local * 3 + dim) as u64)
            };
            let (lo, hi) = mol_block(n, h.nprocs(), h.proc());

            // Every barrier phase is an epoch step (3 per iteration plus
            // init and gather) so a checkpoint-restored node skips straight
            // to the epoch it died in.
            let mut ep = h.epochs();
            ep.step(|| {
                for m in lo..hi {
                    for dim in 0..3 {
                        for order in 0..ORDERS {
                            h.write_f64(s_at(m, dim, order), init[(m * 3 + dim) * ORDERS + order]);
                        }
                        h.write_f64(f_at(m, dim), 0.0);
                    }
                }
                if h.proc() == 0 {
                    h.write_f64(pota, 0.0);
                    h.write_f64(vir, 0.0);
                    h.write_f64(kin, 0.0);
                }
            });

            for _ in 0..params.iters {
                // PREDIC: advance owned molecules' derivative chain and
                // zero the force accumulators.
                ep.step(|| {
                    for m in lo..hi {
                        for dim in 0..3 {
                            let mut vals = [0.0f64; ORDERS];
                            for (o, v) in vals.iter_mut().enumerate() {
                                *v = h.read_f64(s_at(m, dim, o));
                            }
                            let mut dt_pow = DT;
                            for o in (1..ORDERS).rev() {
                                vals[o - 1] += vals[o] * dt_pow;
                                dt_pow *= 0.5;
                            }
                            for (o, v) in vals.iter().enumerate() {
                                h.write_f64(s_at(m, dim, o), *v);
                            }
                            h.write_f64(f_at(m, dim), 0.0);
                        }
                        h.compute(PAIR_CYCLES);
                        h.private_traffic(8);
                    }
                });

                // INTERF: O(N^2) pair forces; contributions staged
                // privately, flushed under per-partition locks.
                ep.step(|| {
                    let mut local_f = vec![0.0f64; n * 3];
                    let mut local_pot = 0.0;
                    let mut local_vir = 0.0;
                    for i in lo..hi {
                        let pi = [
                            h.read_f64(s_at(i, 0, 0)),
                            h.read_f64(s_at(i, 1, 0)),
                            h.read_f64(s_at(i, 2, 0)),
                        ];
                        for j in i + 1..n {
                            let pj = [
                                h.read_f64(s_at(j, 0, 0)),
                                h.read_f64(s_at(j, 1, 0)),
                                h.read_f64(s_at(j, 2, 0)),
                            ];
                            let (f, pot, vr) = pair_force(pi, pj);
                            for dim in 0..3 {
                                local_f[i * 3 + dim] += f[dim];
                                local_f[j * 3 + dim] -= f[dim];
                            }
                            local_pot += pot;
                            local_vir += vr;
                            h.compute(PAIR_CYCLES);
                            h.private_traffic(40);
                        }
                    }
                    for part in 0..params.npartitions {
                        let touched: Vec<usize> = (0..n)
                            .filter(|&m| partition_of(m, n, params.npartitions) == part)
                            .filter(|&m| (0..3).any(|d| local_f[m * 3 + d] != 0.0))
                            .collect();
                        if touched.is_empty() {
                            continue;
                        }
                        h.lock(FORCE_LOCK0 + part as u32);
                        for &m in &touched {
                            for dim in 0..3 {
                                let a = f_at(m, dim);
                                let v = h.read_f64(a);
                                h.write_f64(a, v + local_f[m * 3 + dim]);
                            }
                        }
                        h.unlock(FORCE_LOCK0 + part as u32);
                    }

                    // Global sums.  POTA: correctly locked.
                    h.lock(POTA_LOCK);
                    let p = h.read_f64(pota);
                    h.write_f64(pota, p + local_pot);
                    h.unlock(POTA_LOCK);
                    // VIR: the bug — unsynchronized read-modify-write.
                    if params.fixed {
                        h.lock(VIR_LOCK);
                        let v = h.read_f64(vir);
                        h.write_f64(vir, v + local_vir);
                        h.unlock(VIR_LOCK);
                    } else {
                        let v = h.read_f64(vir);
                        h.write_f64(vir, v + local_vir);
                    }
                });

                // CORREC + KINETI: integrate owned molecules, sum kinetic
                // energy (locked).
                ep.step(|| {
                    let mut local_kin = 0.0;
                    for m in lo..hi {
                        for dim in 0..3 {
                            let f = h.read_f64(f_at(m, dim));
                            let vaddr = s_at(m, dim, 1);
                            let v = h.read_f64(vaddr) + f * DT;
                            h.write_f64(vaddr, v);
                            let paddr = s_at(m, dim, 0);
                            let pos = h.read_f64(paddr) + v * DT;
                            h.write_f64(paddr, pos);
                            local_kin += 0.5 * v * v;
                        }
                        h.private_traffic(4);
                    }
                    h.lock(KIN_LOCK);
                    let k = h.read_f64(kin);
                    h.write_f64(kin, k + local_kin);
                    h.unlock(KIN_LOCK);
                });
            }

            ep.step(|| {
                if h.proc() == 0 {
                    let mut positions = vec![0.0; n * 3];
                    for (m, pos) in positions.chunks_mut(3).enumerate() {
                        for (dim, v) in pos.iter_mut().enumerate() {
                            *v = h.read_f64(s_at(m, dim, 0));
                        }
                    }
                    *result.lock() = Some(WaterResult {
                        positions,
                        potential: h.read_f64(pota),
                        virial: h.read_f64(vir),
                        kinetic: h.read_f64(kin),
                    });
                }
            });
        },
    )
    .expect("cluster run");
    let res = result.into_inner().expect("gathered");
    (report, res)
}

/// Sequential reference simulation.
pub fn reference(params: &WaterParams) -> WaterResult {
    let n = params.nmols;
    let mut state = initial_state(params);
    let mut potential = 0.0;
    let mut virial = 0.0;
    let mut kinetic = 0.0;
    let s = |m: usize, dim: usize, order: usize| (m * 3 + dim) * ORDERS + order;
    for _ in 0..params.iters {
        let mut force = vec![0.0f64; n * 3];
        for m in 0..n {
            for dim in 0..3 {
                let mut vals = [0.0f64; ORDERS];
                for (o, v) in vals.iter_mut().enumerate() {
                    *v = state[s(m, dim, o)];
                }
                let mut dt_pow = DT;
                for o in (1..ORDERS).rev() {
                    vals[o - 1] += vals[o] * dt_pow;
                    dt_pow *= 0.5;
                }
                for (o, v) in vals.iter().enumerate() {
                    state[s(m, dim, o)] = *v;
                }
            }
        }
        for i in 0..n {
            let pi = [state[s(i, 0, 0)], state[s(i, 1, 0)], state[s(i, 2, 0)]];
            for j in i + 1..n {
                let pj = [state[s(j, 0, 0)], state[s(j, 1, 0)], state[s(j, 2, 0)]];
                let (f, pot, vr) = pair_force(pi, pj);
                for dim in 0..3 {
                    force[i * 3 + dim] += f[dim];
                    force[j * 3 + dim] -= f[dim];
                }
                potential += pot;
                virial += vr;
            }
        }
        for m in 0..n {
            for dim in 0..3 {
                let v = state[s(m, dim, 1)] + force[m * 3 + dim] * DT;
                state[s(m, dim, 1)] = v;
                state[s(m, dim, 0)] += v * DT;
                kinetic += 0.5 * v * v;
            }
        }
    }
    let mut positions = vec![0.0; n * 3];
    for (m, pos) in positions.chunks_mut(3).enumerate() {
        for (dim, v) in pos.iter_mut().enumerate() {
            *v = state[s(m, dim, 0)];
        }
    }
    WaterResult {
        positions,
        potential,
        virial,
        kinetic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvm_race::RaceKind;

    fn vir_addr(report: &RunReport) -> GAddr {
        report
            .segments
            .segments()
            .iter()
            .find(|s| s.name == "VIR")
            .unwrap()
            .base
    }

    #[test]
    fn parallel_positions_match_reference() {
        let params = WaterParams::small();
        let (_, result) = run(DsmConfig::new(4), params);
        let expect = reference(&params);
        for (i, (a, b)) in result.positions.iter().zip(&expect.positions).enumerate() {
            assert!((a - b).abs() < 1e-9, "position {i} mismatch: {a} vs {b}");
        }
        // Locked sums agree up to FP reassociation.
        assert!((result.potential - expect.potential).abs() < 1e-6);
        assert!((result.kinetic - expect.kinetic).abs() < 1e-6);
    }

    #[test]
    fn buggy_variant_reports_write_write_race_on_vir() {
        let (report, _) = run(DsmConfig::new(4), WaterParams::small());
        let races = report.races.at(vir_addr(&report));
        assert!(
            races.iter().any(|r| r.kind == RaceKind::WriteWrite),
            "VIR write-write race missed: {:?}",
            report.races.distinct_addrs()
        );
        // The rendered report names the variable, as the paper's address +
        // symbol-table workflow would.
        let rendered = races[0].render(&report.segments);
        assert!(rendered.contains("VIR"), "got: {rendered}");
    }

    #[test]
    fn fixed_variant_is_race_free_and_exact() {
        let params = WaterParams::small().as_fixed();
        let (report, result) = run(DsmConfig::new(4), params);
        assert!(
            report.races.is_empty(),
            "fixed Water misreported: {:?}",
            report.races.reports()
        );
        let expect = reference(&params);
        assert!((result.virial - expect.virial).abs() < 1e-6);
    }

    #[test]
    fn pair_force_is_antisymmetric_and_finite() {
        let (f_ab, pot, vir) = pair_force([0.0, 0.0, 0.0], [1.0, 2.0, 2.0]);
        let (f_ba, pot2, vir2) = pair_force([1.0, 2.0, 2.0], [0.0, 0.0, 0.0]);
        for d in 0..3 {
            assert!((f_ab[d] + f_ba[d]).abs() < 1e-15);
            assert!(f_ab[d].is_finite());
        }
        assert_eq!(pot, pot2);
        assert_eq!(vir, vir2);
        // Coincident molecules do not blow up (softened potential).
        let (f0, _, _) = pair_force([1.0; 3], [1.0; 3]);
        assert_eq!(f0, [0.0; 3]);
    }

    #[test]
    fn partitions_cover_all_molecules() {
        let n = 216;
        let parts = 54;
        let mut counts = vec![0usize; parts];
        for m in 0..n {
            counts[partition_of(m, n, parts)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0));
        assert_eq!(counts.iter().sum::<usize>(), n);
    }

    #[test]
    fn reference_stays_finite() {
        let params = WaterParams {
            nmols: 27,
            iters: 5,
            npartitions: 9,
            seed: 3,
            fixed: true,
        };
        let result = reference(&params);
        assert!(result.kinetic.is_finite() && result.kinetic > 0.0);
        assert!(result.positions.iter().all(|p| p.is_finite()));
    }
}
