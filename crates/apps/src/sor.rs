//! SOR: Jacobi relaxation, two-grid, barrier-only.
//!
//! The solver keeps *from* and *to* grids and alternates between them, with
//! a barrier after every sweep — the classic DSM formulation.  Rows are
//! **page-aligned** (one row per VM page, as the original benchmark padded
//! them), so within an epoch every process writes only its own rows' pages
//! and reads a grid nobody is writing: there is *no* unsynchronized sharing
//! of any kind, true or false — the all-zero SOR row of the paper's
//! Table 3.  On the paper's 8 KB-page DECstations, two 512-row grids of
//! page-padded rows are exactly the ~8 MB shared segment of Table 1.

use cvm_dsm::{Cluster, DsmConfig, RunReport};
use cvm_page::GAddr;
use parking_lot::Mutex;

/// SOR parameters.
#[derive(Clone, Copy, Debug)]
pub struct SorParams {
    /// Grid side (cells); the paper uses 512.
    pub n: usize,
    /// Jacobi sweeps.
    pub iters: usize,
}

impl SorParams {
    /// The paper's input set: 512×512.
    pub fn paper() -> Self {
        SorParams { n: 512, iters: 10 }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        SorParams { n: 24, iters: 5 }
    }
}

/// Result of a run: the final grid (gathered by process 0).
#[derive(Clone, Debug)]
pub struct SorResult {
    /// Row-major final grid.
    pub grid: Vec<f64>,
    /// Grid side.
    pub n: usize,
}

/// Boundary/initial value of cell `(i, j)`: hot top edge, cold elsewhere.
fn initial(i: usize, j: usize, n: usize) -> f64 {
    if i == 0 {
        let x = j as f64 / (n - 1) as f64;
        4.0 * x * (1.0 - x)
    } else {
        0.0
    }
}

/// Per-cell update compute cost (cycles): 3 adds, 1 mul, loop overhead.
const CELL_FLOPS_CYCLES: u64 = 10;

/// Rows `[lo, hi)` owned by `proc` of `nprocs`.
pub fn row_block(n: usize, nprocs: usize, proc: usize) -> (usize, usize) {
    let per = n.div_ceil(nprocs);
    let lo = (proc * per).min(n);
    let hi = ((proc + 1) * per).min(n);
    (lo, hi)
}

/// Runs Jacobi SOR on the DSM.
pub fn run(cfg: DsmConfig, params: SorParams) -> (RunReport, SorResult) {
    let n = params.n;
    assert!(n >= 4, "grid too small");
    // One row per page (rows padded to page boundaries, like the original).
    let page_bytes = cfg.geometry.page_bytes();
    let row_stride = (n as u64 * 8).div_ceil(page_bytes) * page_bytes;
    let result = Mutex::new(None);
    let report = Cluster::run(
        cfg,
        |alloc| {
            let a = alloc
                .alloc_page_aligned("sor_grid_a", n as u64 * row_stride)
                .unwrap();
            let b = alloc
                .alloc_page_aligned("sor_grid_b", n as u64 * row_stride)
                .unwrap();
            (a, b)
        },
        |h, &(a, b)| {
            let cell = |g: GAddr, i: usize, j: usize| -> GAddr {
                g.offset(i as u64 * row_stride).word(j as u64)
            };
            let (lo, hi) = row_block(n, h.nprocs(), h.proc());
            // Each barrier phase is an epoch step so a checkpoint-restored
            // node can rejoin mid-run; grid roles derive from sweep parity
            // rather than mutable state, keeping skipped phases pure.
            let mut ep = h.epochs();
            // Initialize own rows in both grids (boundaries must be valid
            // in whichever grid is being read).
            ep.step(|| {
                for i in lo..hi {
                    for j in 0..n {
                        let v = initial(i, j, n);
                        h.write_f64(cell(a, i, j), v);
                        h.write_f64(cell(b, i, j), v);
                    }
                }
            });
            for sweep in 0..params.iters {
                // Even sweeps read `a` and write `b`; odd the reverse.
                let (src, dst) = if sweep % 2 == 0 { (a, b) } else { (b, a) };
                ep.step(|| {
                    for i in lo.max(1)..hi.min(n - 1) {
                        for j in 1..n - 1 {
                            let v = 0.25
                                * (h.read_f64(cell(src, i - 1, j))
                                    + h.read_f64(cell(src, i + 1, j))
                                    + h.read_f64(cell(src, i, j - 1))
                                    + h.read_f64(cell(src, i, j + 1)));
                            h.write_f64(cell(dst, i, j), v);
                            h.compute(CELL_FLOPS_CYCLES);
                        }
                        // Loop-control scratch the static analysis could not
                        // prove private (pointer-based row walks).
                        h.private_traffic(5 * n as u64 / 2);
                    }
                });
            }
            // After `iters` sweeps the freshest grid is `a` when the count
            // is even, `b` when odd.
            let last = if params.iters.is_multiple_of(2) { a } else { b };
            ep.step(|| {
                if h.proc() == 0 {
                    let mut out = vec![0.0; n * n];
                    for (i, row) in out.chunks_mut(n).enumerate() {
                        for (j, v) in row.iter_mut().enumerate() {
                            *v = h.read_f64(cell(last, i, j));
                        }
                    }
                    *result.lock() = Some(out);
                }
            });
        },
    )
    .expect("cluster run");
    let grid = result.into_inner().expect("process 0 gathered the grid");
    (report, SorResult { grid, n })
}

/// Sequential reference implementation.
pub fn reference(params: SorParams) -> Vec<f64> {
    let n = params.n;
    let mut src = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            src[i * n + j] = initial(i, j, n);
        }
    }
    let mut dst = src.clone();
    for _ in 0..params.iters {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                dst[i * n + j] = 0.25
                    * (src[(i - 1) * n + j]
                        + src[(i + 1) * n + j]
                        + src[i * n + j - 1]
                        + src[i * n + j + 1]);
            }
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_block_partitions_cover_grid() {
        for nprocs in [1, 2, 3, 4, 8] {
            let mut covered = [false; 32];
            for p in 0..nprocs {
                let (lo, hi) = row_block(32, nprocs, p);
                for row in covered.iter_mut().take(hi).skip(lo) {
                    assert!(!*row, "overlap at proc {p}");
                    *row = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "rows uncovered for {nprocs}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let params = SorParams::small();
        let (report, result) = run(DsmConfig::new(4), params);
        let expect = reference(params);
        for (idx, (got, want)) in result.grid.iter().zip(&expect).enumerate() {
            assert!((got - want).abs() < 1e-12, "cell {idx}: {got} vs {want}");
        }
        assert!(
            report.races.is_empty(),
            "SOR must be race-free: {:?}",
            report.races.reports()
        );
    }

    #[test]
    fn sor_has_zero_unsynchronized_sharing() {
        // Table 3: SOR shows 0% intervals used and 0% bitmaps used.
        let (report, _) = run(DsmConfig::new(4), SorParams::small());
        assert_eq!(report.det_stats.intervals_used, 0);
        assert_eq!(report.det_stats.bitmaps_requested, 0);
    }

    #[test]
    fn single_proc_equals_multi_proc() {
        let params = SorParams::small();
        let (_, one) = run(DsmConfig::new(1), params);
        let (_, four) = run(DsmConfig::new(3), params);
        assert_eq!(one.grid, four.grid);
    }

    #[test]
    fn reference_keeps_boundary_and_smooths_interior() {
        let n = 16;
        let g = reference(SorParams { n, iters: 100 });
        for (j, v) in g.iter().enumerate().take(n) {
            assert_eq!(*v, initial(0, j, n), "top boundary must not move");
        }
        let center = g[8 * n + 8];
        assert!(center > 0.0 && center < 1.0, "center = {center}");
    }
}
