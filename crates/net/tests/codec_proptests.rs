//! Property-based round-trip tests for the wire codec and the checksummed
//! frame layer.

use cvm_net::wire::{decode_frame, encode_frame, Wire, WireError, FRAME_HEADER_BYTES};
use cvm_vclock::{IntervalId, IntervalStamp, ProcId, VClock};
use proptest::prelude::*;

fn check_roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) -> Result<(), TestCaseError> {
    let bytes = v.to_bytes();
    prop_assert_eq!(bytes.len() as u64, v.wire_size());
    let back = T::from_bytes(&bytes).expect("decode of own encoding");
    prop_assert_eq!(&back, v);
    Ok(())
}

proptest! {
    #[test]
    fn u64_roundtrip(v: u64) { check_roundtrip(&v)?; }

    #[test]
    fn i64_roundtrip(v: i64) { check_roundtrip(&v)?; }

    #[test]
    fn f64_roundtrip(v: f64) {
        // NaN compares unequal; compare bit patterns instead.
        let bytes = v.to_bytes();
        let back = f64::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn vec_roundtrip(v: Vec<u32>) { check_roundtrip(&v)?; }

    #[test]
    fn nested_roundtrip(v: Vec<(u16, Vec<u64>)>) { check_roundtrip(&v)?; }

    #[test]
    fn option_roundtrip(v: Option<u64>) { check_roundtrip(&v)?; }

    #[test]
    fn string_roundtrip(v: String) { check_roundtrip(&v)?; }

    #[test]
    fn vclock_roundtrip(entries in proptest::collection::vec(any::<u32>(), 0..16)) {
        check_roundtrip(&VClock::from(entries))?;
    }

    #[test]
    fn interval_stamp_roundtrip(
        p in 0u16..8,
        idx in 1u32..1000,
        rest in proptest::collection::vec(0u32..1000, 8),
    ) {
        let mut entries = rest;
        entries[p as usize] = idx;
        let stamp = IntervalStamp::new(
            IntervalId::new(ProcId(p), idx),
            VClock::from(entries),
        );
        check_roundtrip(&stamp)?;
    }

    /// Decoding arbitrary garbage must never panic — it either produces a
    /// value or a structured error.
    #[test]
    fn decode_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Vec::<u64>::from_bytes(&bytes);
        let _ = Vec::<(u16, Vec<u32>)>::from_bytes(&bytes);
        let _ = Option::<u64>::from_bytes(&bytes);
        let _ = String::from_bytes(&bytes);
        let _ = VClock::from_bytes(&bytes);
    }

    /// Truncating a valid encoding must yield an error, not a bogus value.
    #[test]
    fn truncation_detected(v: Vec<u64>, cut in 1usize..8) {
        let bytes = v.to_bytes();
        if bytes.len() >= cut {
            let truncated = &bytes[..bytes.len() - cut];
            let got = Vec::<u64>::from_bytes(truncated);
            prop_assert!(
                matches!(got, Err(WireError::Truncated { .. }) | Err(WireError::BadLength(_))),
                "truncated decode produced {got:?}"
            );
        }
    }

    /// A checksummed frame round-trips its body exactly.
    #[test]
    fn frame_roundtrip(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let frame = encode_frame(&body);
        prop_assert_eq!(frame.len(), FRAME_HEADER_BYTES + body.len());
        prop_assert_eq!(decode_frame(&frame).expect("own frame decodes"), &body[..]);
    }

    /// Decoding arbitrary bytes as a frame never panics: a value or a
    /// structured error, nothing else.
    #[test]
    fn frame_decode_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_frame(&bytes);
    }

    /// Any frame with up to three flipped bits is rejected — CRC-32C has
    /// Hamming distance 4 over these lengths, and the magic/length fields
    /// are checked besides — so single-bit wire damage can never slip
    /// through to the datagram decoder.
    #[test]
    fn frame_rejects_k_bit_flips(
        body in proptest::collection::vec(any::<u8>(), 0..256),
        flips in proptest::collection::vec((any::<u16>(), 0u8..8), 1..4),
    ) {
        let frame = encode_frame(&body);
        let mut damaged = frame.clone();
        for (pos, bit) in &flips {
            let i = *pos as usize % damaged.len();
            damaged[i] ^= 1 << bit;
        }
        if damaged != frame {
            prop_assert!(
                decode_frame(&damaged).is_err(),
                "{}-bit flip went undetected",
                flips.len()
            );
        }
    }

    /// Truncated frames and frames with trailing garbage are rejected by
    /// the length field even when the checksum region itself is intact.
    #[test]
    fn frame_rejects_resize(body in proptest::collection::vec(any::<u8>(), 0..256), n in 1usize..16) {
        let frame = encode_frame(&body);
        let cut = &frame[..frame.len() - n.min(frame.len())];
        prop_assert!(decode_frame(cut).is_err());
        let mut extended = frame.clone();
        extended.resize(frame.len() + n, 0xAB);
        prop_assert!(decode_frame(&extended).is_err());
    }
}
