//! Property-based round-trip tests for the wire codec.

use cvm_net::wire::{Wire, WireError};
use cvm_vclock::{IntervalId, IntervalStamp, ProcId, VClock};
use proptest::prelude::*;

fn check_roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) -> Result<(), TestCaseError> {
    let bytes = v.to_bytes();
    prop_assert_eq!(bytes.len() as u64, v.wire_size());
    let back = T::from_bytes(&bytes).expect("decode of own encoding");
    prop_assert_eq!(&back, v);
    Ok(())
}

proptest! {
    #[test]
    fn u64_roundtrip(v: u64) { check_roundtrip(&v)?; }

    #[test]
    fn i64_roundtrip(v: i64) { check_roundtrip(&v)?; }

    #[test]
    fn f64_roundtrip(v: f64) {
        // NaN compares unequal; compare bit patterns instead.
        let bytes = v.to_bytes();
        let back = f64::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn vec_roundtrip(v: Vec<u32>) { check_roundtrip(&v)?; }

    #[test]
    fn nested_roundtrip(v: Vec<(u16, Vec<u64>)>) { check_roundtrip(&v)?; }

    #[test]
    fn option_roundtrip(v: Option<u64>) { check_roundtrip(&v)?; }

    #[test]
    fn string_roundtrip(v: String) { check_roundtrip(&v)?; }

    #[test]
    fn vclock_roundtrip(entries in proptest::collection::vec(any::<u32>(), 0..16)) {
        check_roundtrip(&VClock::from(entries))?;
    }

    #[test]
    fn interval_stamp_roundtrip(
        p in 0u16..8,
        idx in 1u32..1000,
        rest in proptest::collection::vec(0u32..1000, 8),
    ) {
        let mut entries = rest;
        entries[p as usize] = idx;
        let stamp = IntervalStamp::new(
            IntervalId::new(ProcId(p), idx),
            VClock::from(entries),
        );
        check_roundtrip(&stamp)?;
    }

    /// Decoding arbitrary garbage must never panic — it either produces a
    /// value or a structured error.
    #[test]
    fn decode_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Vec::<u64>::from_bytes(&bytes);
        let _ = Vec::<(u16, Vec<u32>)>::from_bytes(&bytes);
        let _ = Option::<u64>::from_bytes(&bytes);
        let _ = String::from_bytes(&bytes);
        let _ = VClock::from_bytes(&bytes);
    }

    /// Truncating a valid encoding must yield an error, not a bogus value.
    #[test]
    fn truncation_detected(v: Vec<u64>, cut in 1usize..8) {
        let bytes = v.to_bytes();
        if bytes.len() >= cut {
            let truncated = &bytes[..bytes.len() - cut];
            let got = Vec::<u64>::from_bytes(truncated);
            prop_assert!(
                matches!(got, Err(WireError::Truncated { .. }) | Err(WireError::BadLength(_))),
                "truncated decode produced {got:?}"
            );
        }
    }
}
