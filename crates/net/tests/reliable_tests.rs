//! Tests of the reliable-over-lossy transport (CVM's UDP layer).

use cvm_net::reliable::LossConfig;
use cvm_net::{ByteBreakdown, NetConfig, Network, TrafficClass};
use cvm_vclock::ProcId;

fn payload(i: u32) -> Vec<u8> {
    i.to_le_bytes().to_vec()
}

fn send_n(eps: &[cvm_net::Endpoint], from: usize, to: usize, n: u32) {
    let tx = eps[from].sender();
    for i in 0..n {
        tx.send(
            ProcId::from_index(to),
            u64::from(i),
            ByteBreakdown::single(TrafficClass::Data, 4),
            payload(i),
        )
        .unwrap();
    }
}

fn recv_all(eps: &[cvm_net::Endpoint], at: usize, n: u32) -> Vec<u32> {
    (0..n)
        .map(|_| {
            let pkt = eps[at].recv().expect("delivery");
            u32::from_le_bytes(pkt.payload[..4].try_into().unwrap())
        })
        .collect()
}

#[test]
fn zero_loss_behaves_like_direct() {
    let (eps, _, rstats) = Network::with_loss(2, NetConfig::default(), LossConfig::new(0.0, 1));
    send_n(&eps, 0, 1, 50);
    assert_eq!(recv_all(&eps, 1, 50), (0..50).collect::<Vec<_>>());
    let (drops, retx, dups) = rstats.snapshot();
    assert_eq!((drops, retx, dups), (0, 0, 0));
}

#[test]
fn heavy_loss_still_delivers_everything_in_order() {
    for seed in [1u64, 2, 3] {
        let (eps, _, rstats) =
            Network::with_loss(3, NetConfig::default(), LossConfig::new(0.4, seed));
        send_n(&eps, 0, 2, 200);
        send_n(&eps, 1, 2, 200);
        // Per-flow FIFO must survive 40% wire loss.
        let mut got0 = Vec::new();
        let mut got1 = Vec::new();
        for _ in 0..400 {
            let pkt = eps[2].recv().expect("delivery under loss");
            let v = u32::from_le_bytes(pkt.payload[..4].try_into().unwrap());
            if pkt.src == ProcId(0) {
                got0.push(v);
            } else {
                got1.push(v);
            }
        }
        assert_eq!(got0, (0..200).collect::<Vec<_>>(), "seed {seed}");
        assert_eq!(got1, (0..200).collect::<Vec<_>>(), "seed {seed}");
        let (drops, retx, _) = rstats.snapshot();
        assert!(drops > 0, "the wire must actually drop");
        assert!(retx > 0, "drops must be repaired by retransmission");
    }
}

#[test]
fn duplicates_are_suppressed() {
    // With ACK loss, data gets retransmitted after delivery: the receiver
    // must not see it twice.
    let (eps, _, rstats) = Network::with_loss(2, NetConfig::default(), LossConfig::new(0.3, 99));
    send_n(&eps, 0, 1, 100);
    assert_eq!(recv_all(&eps, 1, 100), (0..100).collect::<Vec<_>>());
    // Nothing further arrives even after retransmission windows pass.
    std::thread::sleep(std::time::Duration::from_millis(20));
    assert!(eps[1].try_recv().is_err(), "duplicate leaked to the app");
    let (_, _, dups) = rstats.snapshot();
    // (dups counts suppressed copies; with 30% ACK loss there are some.)
    let _ = dups;
}

#[test]
fn bidirectional_flows_are_independent() {
    let (eps, _, _) = Network::with_loss(2, NetConfig::default(), LossConfig::new(0.2, 7));
    send_n(&eps, 0, 1, 64);
    send_n(&eps, 1, 0, 64);
    assert_eq!(recv_all(&eps, 1, 64), (0..64).collect::<Vec<_>>());
    assert_eq!(recv_all(&eps, 0, 64), (0..64).collect::<Vec<_>>());
}

#[test]
fn loss_pattern_is_reproducible_per_seed() {
    let run = |seed| {
        let (eps, _, rstats) =
            Network::with_loss(2, NetConfig::default(), LossConfig::new(0.25, seed));
        send_n(&eps, 0, 1, 100);
        let _ = recv_all(&eps, 1, 100);
        // Wait for any trailing retransmissions/acks to settle so the drop
        // count is stable.
        std::thread::sleep(std::time::Duration::from_millis(20));
        rstats.snapshot().0
    };
    // The wire-drop sequence for the initial transmissions is seed-driven;
    // retransmission timing adds wall-clock noise, so compare only that
    // drops occur and differ across seeds (coarse determinism check).
    let a = run(5);
    let b = run(6);
    assert!(a > 0 && b > 0);
}
