//! Tests of the reliable-over-lossy transport (CVM's UDP layer).

use std::time::Duration;

use cvm_net::reliable::LossConfig;
use cvm_net::{ByteBreakdown, CorruptKind, FaultPlan, NetConfig, NetError, Network, TrafficClass};
use cvm_vclock::ProcId;

fn payload(i: u32) -> Vec<u8> {
    i.to_le_bytes().to_vec()
}

fn send_n(eps: &[cvm_net::Endpoint], from: usize, to: usize, n: u32) {
    let tx = eps[from].sender();
    for i in 0..n {
        tx.send(
            ProcId::from_index(to),
            u64::from(i),
            ByteBreakdown::single(TrafficClass::Data, 4),
            payload(i),
        )
        .unwrap();
    }
}

fn recv_all(eps: &[cvm_net::Endpoint], at: usize, n: u32) -> Vec<u32> {
    (0..n)
        .map(|_| {
            let pkt = eps[at].recv().expect("delivery");
            u32::from_le_bytes(pkt.payload[..4].try_into().unwrap())
        })
        .collect()
}

#[test]
fn zero_loss_behaves_like_direct() {
    let (eps, _, rstats) = Network::with_loss(2, NetConfig::default(), LossConfig::new(0.0, 1));
    send_n(&eps, 0, 1, 50);
    assert_eq!(recv_all(&eps, 1, 50), (0..50).collect::<Vec<_>>());
    let (drops, retx, dups) = rstats.snapshot();
    assert_eq!((drops, retx, dups), (0, 0, 0));
}

#[test]
fn heavy_loss_still_delivers_everything_in_order() {
    for seed in [1u64, 2, 3] {
        let (eps, _, rstats) =
            Network::with_loss(3, NetConfig::default(), LossConfig::new(0.4, seed));
        send_n(&eps, 0, 2, 200);
        send_n(&eps, 1, 2, 200);
        // Per-flow FIFO must survive 40% wire loss.
        let mut got0 = Vec::new();
        let mut got1 = Vec::new();
        for _ in 0..400 {
            let pkt = eps[2].recv().expect("delivery under loss");
            let v = u32::from_le_bytes(pkt.payload[..4].try_into().unwrap());
            if pkt.src == ProcId(0) {
                got0.push(v);
            } else {
                got1.push(v);
            }
        }
        assert_eq!(got0, (0..200).collect::<Vec<_>>(), "seed {seed}");
        assert_eq!(got1, (0..200).collect::<Vec<_>>(), "seed {seed}");
        let (drops, retx, _) = rstats.snapshot();
        assert!(drops > 0, "the wire must actually drop");
        assert!(retx > 0, "drops must be repaired by retransmission");
    }
}

#[test]
fn duplicates_are_suppressed() {
    // With ACK loss, data gets retransmitted after delivery: the receiver
    // must not see it twice.
    let (eps, _, rstats) = Network::with_loss(2, NetConfig::default(), LossConfig::new(0.3, 99));
    send_n(&eps, 0, 1, 100);
    assert_eq!(recv_all(&eps, 1, 100), (0..100).collect::<Vec<_>>());
    // Nothing further arrives even after retransmission windows pass.
    std::thread::sleep(std::time::Duration::from_millis(20));
    assert!(eps[1].try_recv().is_err(), "duplicate leaked to the app");
    let (_, _, dups) = rstats.snapshot();
    // (dups counts suppressed copies; with 30% ACK loss there are some.)
    let _ = dups;
}

#[test]
fn bidirectional_flows_are_independent() {
    let (eps, _, _) = Network::with_loss(2, NetConfig::default(), LossConfig::new(0.2, 7));
    send_n(&eps, 0, 1, 64);
    send_n(&eps, 1, 0, 64);
    assert_eq!(recv_all(&eps, 1, 64), (0..64).collect::<Vec<_>>());
    assert_eq!(recv_all(&eps, 0, 64), (0..64).collect::<Vec<_>>());
}

#[test]
fn loss_pattern_is_reproducible_per_seed() {
    let run = |seed| {
        let (eps, _, rstats) =
            Network::with_loss(2, NetConfig::default(), LossConfig::new(0.25, seed));
        send_n(&eps, 0, 1, 100);
        let _ = recv_all(&eps, 1, 100);
        // Wait for any trailing retransmissions/acks to settle so the drop
        // count is stable.
        std::thread::sleep(std::time::Duration::from_millis(20));
        rstats.snapshot().0
    };
    // The wire-drop sequence for the initial transmissions is seed-driven;
    // retransmission timing adds wall-clock noise, so compare only that
    // drops occur and differ across seeds (coarse determinism check).
    let a = run(5);
    let b = run(6);
    assert!(a > 0 && b > 0);
}

#[test]
fn same_plan_and_seed_reproduce_identical_stats() {
    // Every fault decision is keyed by datagram identity (destination,
    // sequence, attempt), never call order or wall clock, so two runs of
    // the same (plan, seed) must produce byte-identical statistics.  The
    // plan avoids the retransmission path (no drops, one-second RTO):
    // timer-driven resends fire on wall-clock boundaries, which makes
    // their *counts* scheduling-dependent even though each decision stays
    // keyed — the deterministic contract is the injection stream.
    let run = |seed: u64| {
        let plan = FaultPlan::clean(seed)
            .with_duplication(0.2)
            .with_rto(Duration::from_secs(1), Duration::from_secs(2));
        let (eps, _, rstats) = Network::with_loss(2, NetConfig::default(), plan);
        send_n(&eps, 0, 1, 150);
        assert_eq!(recv_all(&eps, 1, 150), (0..150).collect::<Vec<_>>());
        // Let trailing ACKs (and their injected duplicates) settle.
        std::thread::sleep(Duration::from_millis(20));
        rstats.full()
    };
    let first = run(0xFEED);
    let second = run(0xFEED);
    assert_eq!(first, second, "fault sequence must be seed-deterministic");
    assert!(first.dup_injected > 0, "the plan must actually duplicate");
    assert!(first.duplicates > 0, "duplicates must reach the suppressor");
    assert_eq!(first.wire_drops, 0);
    assert_eq!(first.retransmissions, 0);
    let other = run(0xBEEF);
    assert_ne!(first, other, "different seeds must differ");
}

#[test]
fn corruption_is_repaired_by_retransmission() {
    // A quarter of all frames are mutated on the wire; the receiver's
    // checksum rejects every one of them and the retransmit path fills the
    // gaps, so delivery stays complete, in order, and duplicate-free.
    for seed in [21u64, 22, 23] {
        let plan = FaultPlan::clean(seed).with_corruption(0.25);
        let (eps, _, rstats) = Network::with_loss(2, NetConfig::default(), plan);
        send_n(&eps, 0, 1, 150);
        assert_eq!(
            recv_all(&eps, 1, 150),
            (0..150).collect::<Vec<_>>(),
            "seed {seed}"
        );
        std::thread::sleep(Duration::from_millis(20));
        let snap = rstats.full();
        assert!(snap.corrupt_injected > 0, "seed {seed}: wire must corrupt");
        assert!(
            snap.corrupt_dropped > 0,
            "seed {seed}: checksum must reject"
        );
        assert_eq!(
            snap.decode_errors, 0,
            "seed {seed}: damage leaked past the frame gate"
        );
        assert!(
            snap.retransmissions > 0,
            "seed {seed}: corruption losses must be repaired"
        );
    }
}

#[test]
fn scripted_corruption_strikes_exact_frames() {
    // Only node 0's first two frames are mutated (one truncation, one
    // garbage tail); a 1-second RTO keeps retransmissions out of the
    // window, so the injected count is exactly the scripted two and both
    // are dropped at the receiver.
    let plan = FaultPlan::clean(5)
        .with_rto(Duration::from_secs(1), Duration::from_secs(2))
        .with_corrupt_at(ProcId(0), 1, CorruptKind::Truncate)
        .with_corrupt_at(ProcId(0), 2, CorruptKind::GarbageTail);
    let (eps, _, rstats) = Network::with_loss(2, NetConfig::default(), plan);
    send_n(&eps, 0, 1, 2);
    // Nothing can arrive until the corrupted originals are retransmitted.
    std::thread::sleep(Duration::from_millis(50));
    let snap = rstats.full();
    assert_eq!(snap.corrupt_injected, 2, "{snap:?}");
    assert_eq!(snap.corrupt_dropped, 2, "{snap:?}");
    assert!(
        eps[1].try_recv().is_err(),
        "corrupted frames must not deliver"
    );
}

#[test]
fn killed_node_is_declared_dead_by_its_peers() {
    // Node 1's engine dies after a handful of events; node 0's
    // retransmissions exhaust and it learns P1 is dead instead of
    // retrying forever.
    let plan = FaultPlan::clean(7)
        .with_rto(Duration::from_millis(1), Duration::from_millis(4))
        .with_max_retransmits(6)
        .with_kill(ProcId(1), 3);
    let (eps, _, rstats) = Network::with_loss(2, NetConfig::default(), plan);
    send_n(&eps, 0, 1, 20);
    match eps[0].recv() {
        Err(NetError::PeerDead { peer }) => assert_eq!(peer, ProcId(1)),
        other => panic!("expected peer-dead notification, got {other:?}"),
    }
    assert!(rstats.full().peers_declared_dead >= 1);
    // The killed node's endpoint drains whatever arrived before the kill,
    // then reports its engine gone.
    loop {
        match eps[1].recv() {
            Ok(_) => continue,
            Err(NetError::Disconnected) => break,
            other => panic!("expected disconnect at the killed node, got {other:?}"),
        }
    }
}

#[test]
fn partitioned_node_stops_exchanging_datagrams() {
    // Node 1 partitions immediately: everything it sends or receives is
    // dropped on the floor, and node 0 eventually gives up on it.
    let plan = FaultPlan::clean(11)
        .with_rto(Duration::from_millis(1), Duration::from_millis(4))
        .with_max_retransmits(6)
        .with_partition(ProcId(1), 0);
    let (eps, _, rstats) = Network::with_loss(2, NetConfig::default(), plan);
    send_n(&eps, 0, 1, 10);
    match eps[0].recv() {
        Err(NetError::PeerDead { peer }) => assert_eq!(peer, ProcId(1)),
        other => panic!("expected peer-dead notification, got {other:?}"),
    }
    let snap = rstats.full();
    assert!(snap.partition_drops > 0, "partition must eat datagrams");
    assert!(eps[1].try_recv().is_err(), "nothing crosses the partition");
}

#[test]
fn transient_partition_heals_and_flow_resumes() {
    // Node 1 is cut off for a window of its own wire-datagram stream and
    // then healed.  Retransmissions bridge the outage: every datagram
    // still arrives, in order, without node 1 ever being declared dead.
    let plan = FaultPlan::clean(13)
        .with_rto(Duration::from_millis(1), Duration::from_millis(4))
        .with_max_retransmits(40)
        .with_partition_healed(ProcId(1), 3, 20);
    let (eps, _, rstats) = Network::with_loss(2, NetConfig::default(), plan);
    send_n(&eps, 0, 1, 30);
    assert_eq!(recv_all(&eps, 1, 30), (0..30).collect::<Vec<_>>());
    let snap = rstats.full();
    assert!(snap.partition_drops > 0, "the window must eat datagrams");
    assert_eq!(snap.partitions_healed, 1, "the heal must be observed once");
    assert_eq!(snap.peers_declared_dead, 0, "a healed node is not dead");
}

#[test]
fn multiple_partition_windows_on_one_node_all_apply() {
    // Two disjoint outage windows scripted against the same node: both
    // must arm (the plan is not first-match-wins) and both must heal.
    let plan = FaultPlan::clean(17)
        .with_rto(Duration::from_millis(1), Duration::from_millis(4))
        .with_max_retransmits(60)
        .with_partition_healed(ProcId(1), 3, 12)
        .with_partition_healed(ProcId(1), 25, 40);
    let (eps, _, rstats) = Network::with_loss(2, NetConfig::default(), plan);
    send_n(&eps, 0, 1, 40);
    assert_eq!(recv_all(&eps, 1, 40), (0..40).collect::<Vec<_>>());
    let snap = rstats.full();
    assert_eq!(snap.partitions_healed, 2, "both windows must open and heal");
    assert!(snap.partition_drops > 0);
}

#[test]
fn heal_accounting_is_deterministic_per_plan_and_seed() {
    // Window membership is a pure function of the node-local wire-datagram
    // ordinal, so two runs of the same (plan, seed) agree exactly on how
    // many windows healed — even though retransmission *timing* is
    // wall-clock noise.
    let run = |seed: u64| {
        let plan = FaultPlan::clean(seed)
            .with_rto(Duration::from_millis(1), Duration::from_millis(4))
            .with_max_retransmits(40)
            .with_partition_healed(ProcId(1), 5, 18);
        let (eps, _, rstats) = Network::with_loss(2, NetConfig::default(), plan);
        send_n(&eps, 0, 1, 30);
        assert_eq!(recv_all(&eps, 1, 30), (0..30).collect::<Vec<_>>());
        rstats.full().partitions_healed
    };
    assert_eq!(run(0xACE), run(0xACE));
    assert_eq!(run(0xACE), 1);
}

#[test]
fn capacity_one_link_delivers_in_order_with_bounded_queue() {
    // The tightest possible credit window: one unacked datagram per flow.
    // 100 sends must still arrive complete and in order, with the in-flight
    // depth never exceeding the capacity.
    let plan = FaultPlan::clean(5).with_link_capacity(1);
    let (eps, _, rstats) = Network::with_loss(2, NetConfig::default(), plan);
    send_n(&eps, 0, 1, 100);
    assert_eq!(recv_all(&eps, 1, 100), (0..100).collect::<Vec<_>>());
    use std::sync::atomic::Ordering;
    assert!(
        rstats.queue_high_water.load(Ordering::Relaxed) <= 1,
        "window bound violated"
    );
    assert!(
        rstats.credit_stalls.load(Ordering::Relaxed) > 0,
        "100 sends through a 1-deep window must stall"
    );
    assert_eq!(
        rstats.credit_stalled_now.load(Ordering::Relaxed),
        0,
        "all stalls drained by completion"
    );
}

#[test]
fn slow_consumer_cannot_exhaust_sender_queues() {
    // Node 1 dwells 2 ms per arrival from its very first datagram; the
    // sender's credit window (capacity 2) closes against it instead of
    // buffering without bound, and everything still arrives in order.
    let plan = FaultPlan::clean(9)
        .with_link_capacity(2)
        .with_slow_consumer(ProcId(1), 0, Duration::from_millis(2));
    let (eps, _, rstats) = Network::with_loss(2, NetConfig::default(), plan);
    send_n(&eps, 0, 1, 30);
    assert_eq!(recv_all(&eps, 1, 30), (0..30).collect::<Vec<_>>());
    use std::sync::atomic::Ordering;
    assert!(
        rstats.queue_high_water.load(Ordering::Relaxed) <= 2,
        "a slow consumer must not deepen the in-flight window"
    );
    assert!(
        rstats.credit_stalls.load(Ordering::Relaxed) > 0,
        "the dwell must close the window at least once"
    );
}

#[test]
fn credit_window_is_invisible_to_loss_repair() {
    // Capacity composes with a lossy wire: drops are still repaired by
    // retransmission (which bypasses the window — those bytes are already
    // accounted in flight) and per-flow FIFO holds.
    for capacity in [1u32, 3] {
        let plan = FaultPlan::new(0.3, 21).with_link_capacity(capacity);
        let (eps, _, rstats) = Network::with_loss(2, NetConfig::default(), plan);
        send_n(&eps, 0, 1, 80);
        assert_eq!(
            recv_all(&eps, 1, 80),
            (0..80).collect::<Vec<_>>(),
            "capacity {capacity}"
        );
        let (drops, retx, _) = rstats.snapshot();
        assert!(drops > 0, "the wire must actually drop");
        assert!(retx > 0, "drops must be repaired under a finite window");
        use std::sync::atomic::Ordering;
        assert!(rstats.queue_high_water.load(Ordering::Relaxed) <= u64::from(capacity));
    }
}
