//! Reliable delivery over a lossy datagram wire.
//!
//! CVM's communication layer is a set of "efficient, end-to-end protocols
//! built on top of UDP" — the kernel gives it datagrams that can vanish,
//! and the library supplies ordering, retransmission, and dedup.  The
//! plain [`Network`](crate::Network) skips all of that (its channels are
//! reliable), which is fine for most experiments; this module supplies the
//! real thing for runs that want wire-level failure injection:
//!
//! * a seeded Bernoulli *loss model* drops data and ACK datagrams alike;
//! * per-flow sequence numbers with cumulative ACKs;
//! * receiver-side reordering and duplicate suppression;
//! * timer-driven retransmission of unacknowledged datagrams.
//!
//! The application-facing API is unchanged: [`Network::with_loss`] hands
//! out the same [`Endpoint`]s/[`NetSender`]s, so the whole DSM (and the
//! race detector above it) runs unmodified over a lossy wire — see the
//! `lossy_wire` cluster tests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};
use cvm_vclock::ProcId;

use crate::{Packet, TrafficClass};

/// Wire loss model: each datagram (data or ACK) is independently dropped
/// with probability `drop_rate`, from a seeded generator so runs are
/// reproducible.
#[derive(Clone, Copy, Debug)]
pub struct LossConfig {
    /// Probability in `[0, 1)` that any single datagram is lost.
    pub drop_rate: f64,
    /// Seed for the drop decisions.
    pub seed: u64,
    /// Retransmission timeout.
    pub rto: Duration,
}

impl LossConfig {
    /// A loss model with the given rate and seed and a 2 ms RTO.
    pub fn new(drop_rate: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&drop_rate), "drop rate out of range");
        LossConfig {
            drop_rate,
            seed,
            rto: Duration::from_millis(2),
        }
    }
}

/// Counters kept by the reliability layer.
#[derive(Debug, Default)]
pub struct ReliabilityStats {
    /// Datagrams dropped by the simulated wire.
    pub wire_drops: AtomicU64,
    /// Data retransmissions performed.
    pub retransmissions: AtomicU64,
    /// Duplicate data datagrams suppressed at receivers.
    pub duplicates: AtomicU64,
}

impl ReliabilityStats {
    /// Snapshot of `(wire drops, retransmissions, duplicates)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.wire_drops.load(Ordering::Relaxed),
            self.retransmissions.load(Ordering::Relaxed),
            self.duplicates.load(Ordering::Relaxed),
        )
    }
}

/// One datagram on the simulated wire.
enum Dgram {
    Data {
        flow_src: ProcId,
        seq: u64,
        packet: Packet,
    },
    /// Cumulative acknowledgement: all data with `seq <= upto` received.
    Ack { flow_dst: ProcId, upto: u64 },
}

/// Sending-half state for one flow (this node → one peer).
struct FlowTx {
    next_seq: u64,
    /// Unacked data, with last transmission time.
    unacked: Vec<(u64, Packet, Instant)>,
}

/// Receiving-half state for one flow (one peer → this node).
struct FlowRx {
    /// Next in-order sequence number expected.
    expected: u64,
    /// Out-of-order buffer.
    buffer: HashMap<u64, Packet>,
}

/// Per-node reliability engine, run on its own thread.
pub(crate) struct ReliabilityEngine {
    node: ProcId,
    /// Raw wire senders to every node (lossy).
    wire_txs: Vec<Sender<Dgram>>,
    /// Raw wire receiver.
    wire_rx: Receiver<Dgram>,
    /// New outbound packets from this node's senders.
    outbound_rx: Receiver<(ProcId, Packet)>,
    /// In-order delivery to the application endpoint.
    deliver_tx: Sender<Packet>,
    config: LossConfig,
    drop_rng: DropRng,
    stats: Arc<ReliabilityStats>,
    tx_flows: HashMap<ProcId, FlowTx>,
    rx_flows: HashMap<ProcId, FlowRx>,
}

/// A tiny deterministic Bernoulli source (splitmix64 under the hood), so
/// the loss pattern is reproducible per seed without a rand dependency in
/// the hot path.
struct DropRng {
    state: u64,
    threshold: u64,
}

impl DropRng {
    fn new(seed: u64, drop_rate: f64) -> Self {
        DropRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
            threshold: (drop_rate * u64::MAX as f64) as u64,
        }
    }

    fn drop(&mut self) -> bool {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z < self.threshold
    }
}

impl ReliabilityEngine {
    fn send_wire(&mut self, dst: ProcId, dgram: Dgram) {
        if self.drop_rng.drop() {
            self.stats.wire_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // A closed peer means shutdown is in progress; losing the datagram
        // is indistinguishable from wire loss at that point.
        let _ = self.wire_txs[dst.index()].send(dgram);
    }

    fn handle_outbound(&mut self, dst: ProcId, packet: Packet) {
        let flow = self.tx_flows.entry(dst).or_insert(FlowTx {
            next_seq: 1,
            unacked: Vec::new(),
        });
        let seq = flow.next_seq;
        flow.next_seq += 1;
        flow.unacked.push((seq, packet.clone(), Instant::now()));
        let src = self.node;
        self.send_wire(
            dst,
            Dgram::Data {
                flow_src: src,
                seq,
                packet,
            },
        );
    }

    fn handle_wire(&mut self, dgram: Dgram) {
        match dgram {
            Dgram::Data {
                flow_src,
                seq,
                packet,
            } => {
                let flow = self.rx_flows.entry(flow_src).or_insert(FlowRx {
                    expected: 1,
                    buffer: HashMap::new(),
                });
                if seq < flow.expected || flow.buffer.contains_key(&seq) {
                    self.stats.duplicates.fetch_add(1, Ordering::Relaxed);
                } else {
                    flow.buffer.insert(seq, packet);
                    while let Some(pkt) = flow.buffer.remove(&flow.expected) {
                        flow.expected += 1;
                        // The application endpoint outliving us is not
                        // required during shutdown.
                        let _ = self.deliver_tx.send(pkt);
                    }
                }
                // (Re-)acknowledge cumulatively; covers lost ACKs too.
                let upto = self.rx_flows[&flow_src].expected - 1;
                let me = self.node;
                self.send_wire(flow_src, Dgram::Ack { flow_dst: me, upto });
            }
            Dgram::Ack { flow_dst, upto } => {
                if let Some(flow) = self.tx_flows.get_mut(&flow_dst) {
                    flow.unacked.retain(|(seq, _, _)| *seq > upto);
                }
            }
        }
    }

    fn retransmit_due(&mut self) {
        let now = Instant::now();
        let rto = self.config.rto;
        let due: Vec<(ProcId, u64, Packet)> = self
            .tx_flows
            .iter_mut()
            .flat_map(|(&dst, flow)| {
                flow.unacked
                    .iter_mut()
                    .filter(|(_, _, sent)| now.duration_since(*sent) >= rto)
                    .map(|(seq, pkt, sent)| {
                        *sent = now;
                        (dst, *seq, pkt.clone())
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        for (dst, seq, packet) in due {
            self.stats.retransmissions.fetch_add(1, Ordering::Relaxed);
            let src = self.node;
            self.send_wire(
                dst,
                Dgram::Data {
                    flow_src: src,
                    seq,
                    packet,
                },
            );
        }
    }

    fn run(mut self) {
        // Event loop: new outbound sends, wire arrivals, and a periodic
        // retransmission scan.  Exits when both input channels close and
        // nothing remains unacked (or peers are gone).
        let tick = self.config.rto / 2;
        let mut outbound_open = true;
        let mut wire_open = true;
        loop {
            crossbeam::channel::select! {
                recv(self.outbound_rx) -> msg => match msg {
                    Ok((dst, pkt)) => self.handle_outbound(dst, pkt),
                    Err(_) => outbound_open = false,
                },
                recv(self.wire_rx) -> msg => match msg {
                    Ok(dgram) => self.handle_wire(dgram),
                    Err(_) => wire_open = false,
                },
                default(tick) => {}
            }
            self.retransmit_due();
            if !outbound_open {
                let drained = self.tx_flows.values().all(|f| f.unacked.is_empty());
                if drained || !wire_open {
                    return;
                }
            }
            if !wire_open && !outbound_open {
                return;
            }
        }
    }
}

/// Per-node wiring of a lossy network: outbound senders (for
/// `NetSender`), in-order receivers (for `Endpoint`), and the shared
/// stats block.
pub(crate) type ReliableFabric = (
    Vec<Sender<(ProcId, Packet)>>,
    Vec<Receiver<Packet>>,
    Arc<ReliabilityStats>,
);

/// Builds the per-node engines and wiring for a lossy network.
pub(crate) fn build_reliable_fabric(n: usize, config: LossConfig) -> ReliableFabric {
    let stats = Arc::new(ReliabilityStats::default());
    let mut wire_txs = Vec::with_capacity(n);
    let mut wire_rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel::unbounded::<Dgram>();
        wire_txs.push(tx);
        wire_rxs.push(rx);
    }
    let mut outbound_txs = Vec::with_capacity(n);
    let mut deliver_rxs = Vec::with_capacity(n);
    for (i, wire_rx) in wire_rxs.into_iter().enumerate() {
        let (outbound_tx, outbound_rx) = channel::unbounded();
        let (deliver_tx, deliver_rx) = channel::unbounded();
        outbound_txs.push(outbound_tx);
        deliver_rxs.push(deliver_rx);
        let engine = ReliabilityEngine {
            node: ProcId::from_index(i),
            wire_txs: wire_txs.clone(),
            wire_rx,
            outbound_rx,
            deliver_tx,
            config,
            drop_rng: DropRng::new(
                config.seed ^ (i as u64).wrapping_mul(0x1234_5677),
                config.drop_rate,
            ),
            stats: Arc::clone(&stats),
            tx_flows: HashMap::new(),
            rx_flows: HashMap::new(),
        };
        std::thread::Builder::new()
            .name(format!("reliability-{i}"))
            .spawn(move || engine.run())
            .expect("spawn reliability engine");
    }
    (outbound_txs, deliver_rxs, stats)
}

/// Marker for unused traffic-class import when compiled without tests.
#[allow(dead_code)]
fn _class(_: TrafficClass) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_rng_matches_rate_roughly() {
        let mut rng = DropRng::new(42, 0.25);
        let drops = (0..10_000).filter(|_| rng.drop()).count();
        assert!((2_000..3_000).contains(&drops), "drops = {drops}");
        let mut never = DropRng::new(42, 0.0);
        assert_eq!((0..1000).filter(|_| never.drop()).count(), 0);
    }

    #[test]
    fn drop_rng_is_deterministic_per_seed() {
        let seq = |seed| {
            let mut rng = DropRng::new(seed, 0.5);
            (0..64).map(|_| rng.drop()).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }
}
