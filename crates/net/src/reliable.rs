//! Reliable delivery over a faulty datagram wire.
//!
//! CVM's communication layer is a set of "efficient, end-to-end protocols
//! built on top of UDP" — the kernel gives it datagrams that can vanish,
//! and the library supplies ordering, retransmission, and dedup.  The
//! plain [`Network`](crate::Network) skips all of that (its channels are
//! reliable), which is fine for most experiments; this module supplies the
//! real thing for runs that want wire-level failure injection:
//!
//! * a seeded *fault plan* ([`FaultPlan`]) injecting per-link Bernoulli
//!   loss, duplication, delay, reordering windows, payload corruption
//!   (seeded bit-flips, truncation, garbage tails), and scripted events
//!   ("partition node N at datagram K", "kill node N at event K",
//!   "corrupt node N's frame K");
//! * checksummed wire frames — every datagram crosses the wire as bytes
//!   behind a magic/length/CRC-32C header ([`encode_frame`]/
//!   [`decode_frame`](crate::wire::decode_frame)), so corruption is
//!   *detected* at the receiver and turned into an ordinary loss that the
//!   retransmit path repairs;
//! * per-flow sequence numbers with cumulative ACKs;
//! * receiver-side reordering and duplicate suppression;
//! * timer-driven retransmission with exponential backoff, jitter, and a
//!   cap, plus a max-retransmit threshold that declares the peer *dead*
//!   (surfaced as [`NetEvent::PeerDead`](crate::NetEvent)) instead of
//!   retrying forever.
//!
//! The application-facing API is unchanged: [`Network::with_loss`] hands
//! out the same [`Endpoint`]s/[`NetSender`]s, so the whole DSM (and the
//! race detector above it) runs unmodified over a faulty wire — see the
//! `lossy_wire` cluster tests and the chaos suites.
//!
//! # Determinism
//!
//! Every fault decision — including whether a frame is corrupted and
//! which mutation it receives — is a pure splitmix64-style hash of the
//! plan seed and the *identity* of the datagram — `(link, sequence,
//! attempt)` for data, `(link, cumulative-ack value)` for ACKs — never of
//! wall-clock time or call order.  A given `(FaultPlan, seed)` therefore
//! reproduces the exact same drop/dup/delay/corrupt/kill sequence for the
//! same traffic, which
//! keeps record/replay and the bit-identical parallel detector epoch
//! intact.  Data-loss decisions are fully order-independent; ACK loss
//! ([`FaultPlan::ack_drop_rate`], off by default) is keyed by the
//! cumulative-ack *value*, whose emission set can shift with retransmission
//! timing — determinism tests should leave it at zero.
//!
//! [`Endpoint`]: crate::Endpoint
//! [`NetSender`]: crate::NetSender
//! [`Network::with_loss`]: crate::Network::with_loss

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cvm_vclock::ProcId;

use crate::link::{metered_link, LinkRx, LinkTx};
use crate::wire::{decode_frame, encode_frame, Wire};
use crate::{NetEvent, Packet};

/// How an injected corruption mutates a frame's bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptKind {
    /// Flips one bit at a seeded position.
    BitFlip,
    /// Cuts the frame short at a seeded length.
    Truncate,
    /// Appends 1–16 seeded garbage bytes.
    GarbageTail,
}

/// A protocol window inside the layer above the transport (the DSM
/// detection machinery).  The reliability engine carries these names in
/// the [`FaultPlan`] but never interprets them: a
/// [`FaultEvent::KillAtPhase`] strike is read back out of the plan by the
/// protocol layer, which self-destructs the named node the `hit`-th time
/// it enters the window.  That keeps strikes deterministic per plan (no
/// wire-timing dependence) while letting tests land kills inside windows
/// the transport cannot see.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolPhase {
    /// Barrier arrival: closing the interval and collecting at the master.
    BarrierCollect,
    /// The access-bitmap request/reply round of detection.
    BitmapRound,
    /// The checkpoint ack → commit (CkptAck/CkptGo) window.
    CkptWindow,
    /// The pipelined stage thread's word-level comparison.
    PipelinedCompare,
}

impl ProtocolPhase {
    /// Number of phases (sizes per-phase counter arrays).
    pub const COUNT: usize = 4;

    /// Dense index for per-phase occurrence counters.
    pub fn index(self) -> usize {
        match self {
            ProtocolPhase::BarrierCollect => 0,
            ProtocolPhase::BitmapRound => 1,
            ProtocolPhase::CkptWindow => 2,
            ProtocolPhase::PipelinedCompare => 3,
        }
    }
}

/// A scripted fault: something that happens to one node at a
/// deterministic point in its own event stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// After `at_datagram` datagrams have crossed `node`'s wire interface
    /// (sent or received), all of its subsequent traffic in both
    /// directions is dropped: the node is partitioned from the rest of
    /// the cluster but keeps running.  If `heal_at` is set, the partition
    /// is transient: once the node-local datagram count passes `heal_at`
    /// (dropped traffic still advances the count), traffic flows again and
    /// `partitions_healed` is bumped.  A node may carry several
    /// partition/heal windows; overlapping windows union.
    Partition {
        /// The partitioned node.
        node: ProcId,
        /// Node-local wire-datagram count at which the partition begins.
        at_datagram: u64,
        /// Node-local wire-datagram count at which the partition heals;
        /// `None` is a permanent partition.
        heal_at: Option<u64>,
    },
    /// After `node`'s reliability engine has processed `at_event` events
    /// (outbound packets + wire arrivals), the engine halts: channels
    /// close, nothing is delivered or acknowledged — a crashed node.
    Kill {
        /// The killed node.
        node: ProcId,
        /// Node-local engine-event count at which the node dies.
        at_event: u64,
    },
    /// The `at_frame`-th frame `node` puts on the wire (1-based, counting
    /// data and ACKs alike) is mutated with `kind` before transmission.
    /// The receiver's integrity check rejects it like a loss.
    CorruptAt {
        /// The node whose outgoing frame is corrupted.
        node: ProcId,
        /// Node-local sent-frame ordinal at which the corruption strikes.
        at_frame: u64,
        /// The mutation applied.
        kind: CorruptKind,
    },
    /// After `at_datagram` datagrams have crossed `node`'s wire interface,
    /// its engine dwells `dwell` on every subsequent wire arrival — a slow
    /// consumer that drains its receive path far behind its peers' send
    /// rate.  With a finite [`FaultPlan::link_capacity`] the senders'
    /// credit windows close against it (bounded queues, `credit_stalls`
    /// counted); it is the scripted fault proving a stalled peer cannot
    /// exhaust sender memory.
    SlowConsumer {
        /// The slow node.
        node: ProcId,
        /// Node-local wire-datagram count at which the slowdown begins.
        at_datagram: u64,
        /// Processing dwell added per wire arrival from then on.
        dwell: Duration,
    },
    /// `node` dies the `hit`-th time (0-based) it enters protocol window
    /// `phase`.  Opaque to the transport — the reliability engine ignores
    /// this strike entirely; the protocol layer above extracts it from the
    /// plan and inflicts the death itself, so the kill lands at a
    /// deterministic point in the *protocol's* event stream rather than
    /// the wire's.
    KillAtPhase {
        /// The node that dies.
        node: ProcId,
        /// The protocol window the strike fires in.
        phase: ProtocolPhase,
        /// Which entry into the window fires the strike (0-based), so a
        /// test can target a later epoch's pass through the same window.
        hit: u64,
    },
}

/// Wire fault model: seeded, deterministic fault injection plus the
/// retransmission-policy knobs of the reliability protocol.
///
/// The historical name [`LossConfig`] remains as an alias; a plain
/// Bernoulli loss model is `FaultPlan::new(rate, seed)`.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Probability in `[0, 1)` that any single *data* datagram is lost.
    pub drop_rate: f64,
    /// Probability in `[0, 1)` that an ACK datagram is lost.  Off by
    /// default: ACK loss decisions are keyed by the cumulative-ack value,
    /// which can shift with retransmission timing (see module docs).
    pub ack_drop_rate: f64,
    /// Probability in `[0, 1)` that a datagram is duplicated on the wire.
    pub dup_rate: f64,
    /// Probability in `[0, 1)` that a datagram is held back and swapped
    /// with the next datagram on the same link (a reordering window of
    /// one; held datagrams are flushed every engine tick).
    pub reorder_rate: f64,
    /// Probability in `[0, 1)` that a datagram's bytes are mutated on the
    /// wire (seeded bit-flip, truncation, or garbage tail, chosen per
    /// datagram).  The receiver's frame checksum rejects the damage, so a
    /// corrupted datagram behaves exactly like a lost one.
    pub corrupt_rate: f64,
    /// Seeded per-datagram extra wire delay, uniform in `[min, max]`.
    pub delay: Option<(Duration, Duration)>,
    /// Seed for all fault decisions.
    pub seed: u64,
    /// Initial retransmission timeout (doubles per attempt).
    pub rto: Duration,
    /// Upper bound on the backed-off retransmission timeout.
    pub max_rto: Duration,
    /// Retransmissions of one datagram before the peer is declared dead
    /// and a [`NetEvent::PeerDead`](crate::NetEvent) is delivered instead
    /// of retrying forever.  `u32::MAX` disables the threshold.
    pub max_retransmits: u32,
    /// Per-link credit window: the maximum number of unacknowledged data
    /// datagrams a sender may have in flight to one peer.  Each ACK
    /// returns credits (the cumulative acknowledgement *is* the credit
    /// grant), and packets arriving while the window is closed wait in a
    /// per-flow pending queue (`credit_stalls` counts the waits).
    /// `u32::MAX` is the unbounded-equivalent; the minimum is 1.
    pub link_capacity: u32,
    /// Scripted partition/kill events.
    pub events: Vec<FaultEvent>,
}

/// Historical name of [`FaultPlan`], kept for the plain-loss call sites.
pub type LossConfig = FaultPlan;

impl FaultPlan {
    /// A pure Bernoulli loss model with the given rate and seed: 2 ms
    /// initial RTO backed off to 64 ms, peers declared dead after 64
    /// retransmissions, no other faults.
    pub fn new(drop_rate: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&drop_rate), "drop rate out of range");
        FaultPlan {
            drop_rate,
            ack_drop_rate: 0.0,
            dup_rate: 0.0,
            reorder_rate: 0.0,
            corrupt_rate: 0.0,
            delay: None,
            seed,
            rto: Duration::from_millis(2),
            max_rto: Duration::from_millis(64),
            max_retransmits: 64,
            link_capacity: u32::MAX,
            events: Vec::new(),
        }
    }

    /// A plan with no faults at all (still runs the reliability protocol).
    pub fn clean(seed: u64) -> Self {
        FaultPlan::new(0.0, seed)
    }

    /// Sets the initial retransmission timeout and its backoff cap.
    #[must_use]
    pub fn with_rto(mut self, rto: Duration, max_rto: Duration) -> Self {
        assert!(max_rto >= rto, "max_rto below initial rto");
        self.rto = rto;
        self.max_rto = max_rto;
        self
    }

    /// Sets the max-retransmit threshold for declaring a peer dead.
    #[must_use]
    pub fn with_max_retransmits(mut self, n: u32) -> Self {
        self.max_retransmits = n;
        self
    }

    /// Enables ACK loss at `rate` (see the determinism caveat above).
    #[must_use]
    pub fn with_ack_loss(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "ack drop rate out of range");
        self.ack_drop_rate = rate;
        self
    }

    /// Enables datagram duplication at `rate`.
    #[must_use]
    pub fn with_duplication(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "dup rate out of range");
        self.dup_rate = rate;
        self
    }

    /// Enables pairwise reordering at `rate`.
    #[must_use]
    pub fn with_reordering(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "reorder rate out of range");
        self.reorder_rate = rate;
        self
    }

    /// Enables seeded payload corruption at `rate`: each hit datagram gets
    /// a bit-flip, truncation, or garbage tail (chosen by the same keyed
    /// dice), which the receiver's checksum turns into a plain loss.
    #[must_use]
    pub fn with_corruption(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "corrupt rate out of range");
        self.corrupt_rate = rate;
        self
    }

    /// Scripts a `kind` corruption of the `at_frame`-th frame (1-based)
    /// that `node` puts on the wire.
    #[must_use]
    pub fn with_corrupt_at(mut self, node: ProcId, at_frame: u64, kind: CorruptKind) -> Self {
        assert!(at_frame >= 1, "frame ordinals are 1-based");
        self.events.push(FaultEvent::CorruptAt {
            node,
            at_frame,
            kind,
        });
        self
    }

    /// Adds a seeded per-datagram delay, uniform in `[min, max]`.
    #[must_use]
    pub fn with_delay(mut self, min: Duration, max: Duration) -> Self {
        assert!(max >= min, "delay range inverted");
        self.delay = Some((min, max));
        self
    }

    /// Scripts a permanent partition of `node` at its `at_datagram`-th
    /// wire datagram.
    #[must_use]
    pub fn with_partition(mut self, node: ProcId, at_datagram: u64) -> Self {
        self.events.push(FaultEvent::Partition {
            node,
            at_datagram,
            heal_at: None,
        });
        self
    }

    /// Scripts a transient partition of `node`: traffic stops after its
    /// `at_datagram`-th wire datagram and flows again once the node-local
    /// count passes `heal_at` (dropped datagrams still advance the count,
    /// keeping the heal keyed into the same deterministic stream).
    #[must_use]
    pub fn with_partition_healed(mut self, node: ProcId, at_datagram: u64, heal_at: u64) -> Self {
        assert!(
            heal_at > at_datagram,
            "heal point not after partition start"
        );
        self.events.push(FaultEvent::Partition {
            node,
            at_datagram,
            heal_at: Some(heal_at),
        });
        self
    }

    /// Scripts the death of `node` at its `at_event`-th engine event.
    #[must_use]
    pub fn with_kill(mut self, node: ProcId, at_event: u64) -> Self {
        self.events.push(FaultEvent::Kill { node, at_event });
        self
    }

    /// Scripts the death of `node` the `hit`-th time (0-based) it enters
    /// protocol window `phase`.  The transport carries but ignores the
    /// strike; the protocol layer interprets it.
    #[must_use]
    pub fn with_kill_at_phase(mut self, node: ProcId, phase: ProtocolPhase, hit: u64) -> Self {
        self.events
            .push(FaultEvent::KillAtPhase { node, phase, hit });
        self
    }

    /// Bounds every link's in-flight window to `capacity` datagrams
    /// (credit-based flow control; minimum 1).
    #[must_use]
    pub fn with_link_capacity(mut self, capacity: u32) -> Self {
        assert!(capacity >= 1, "link capacity below 1 cannot make progress");
        self.link_capacity = capacity;
        self
    }

    /// Scripts a slow consumer: from its `at_datagram`-th wire datagram
    /// on, `node`'s engine dwells `dwell` per wire arrival.
    #[must_use]
    pub fn with_slow_consumer(mut self, node: ProcId, at_datagram: u64, dwell: Duration) -> Self {
        self.events.push(FaultEvent::SlowConsumer {
            node,
            at_datagram,
            dwell,
        });
        self
    }
}

/// Counters kept by the reliability layer.
#[derive(Debug, Default)]
pub struct ReliabilityStats {
    /// Data datagrams dropped by the simulated wire.
    pub wire_drops: AtomicU64,
    /// ACK datagrams dropped by the simulated wire.
    pub ack_drops: AtomicU64,
    /// Data retransmissions performed.
    pub retransmissions: AtomicU64,
    /// Duplicate data datagrams suppressed at receivers.
    pub duplicates: AtomicU64,
    /// Duplicate datagrams injected by the fault plan.
    pub dup_injected: AtomicU64,
    /// Datagrams held back by the seeded delay distribution.
    pub delayed: AtomicU64,
    /// Datagrams swapped by the reordering window.
    pub reordered: AtomicU64,
    /// Datagrams dropped because the sender was partitioned or the peer
    /// already declared dead.
    pub partition_drops: AtomicU64,
    /// Scripted partition windows that reached their heal point and let
    /// traffic flow again.
    pub partitions_healed: AtomicU64,
    /// Datagrams lost because the peer's wire endpoint had closed
    /// (shutdown in progress) — distinguishable from wire loss.
    pub peer_closed: AtomicU64,
    /// Peers declared dead after exhausting the retransmit budget.
    pub peers_declared_dead: AtomicU64,
    /// Frames mutated by the fault plan before transmission.
    pub corrupt_injected: AtomicU64,
    /// Received frames dropped by the integrity check (bad magic, length,
    /// or checksum) — repaired by retransmission, exactly like wire loss.
    pub corrupt_dropped: AtomicU64,
    /// Frames whose checksum verified but whose body failed structural
    /// decode/validation (malformed datagram, out-of-range process id);
    /// quarantined rather than delivered.
    pub decode_errors: AtomicU64,
    /// Outbound packets that found their link's credit window closed and
    /// waited in the pending queue.  Timing-dependent (how often a window
    /// is momentarily full depends on scheduling), so it lives outside
    /// [`ReliabilitySnapshot`].
    pub credit_stalls: AtomicU64,
    /// Deepest any flow's in-flight (unacknowledged) window ever got —
    /// bounded by [`FaultPlan::link_capacity`] by construction.  Also
    /// timing-dependent; outside the snapshot.
    pub queue_high_water: AtomicU64,
    /// In-order packets handed to application endpoints.  Progress signal
    /// for the overload watchdog; timing-dependent totals only matter as
    /// "changed since last look", so it too stays outside the snapshot.
    pub delivered: AtomicU64,
    /// Gauge: flows currently credit-stalled (non-empty pending queue)
    /// across all engines.  Non-zero here plus no delivery progress is the
    /// watchdog's credit-deadlock signature.
    pub credit_stalled_now: AtomicU64,
    /// Deepest any transport channel (wire, outbound, delivery) ever got,
    /// shared by the fabric's metered links.
    link_high_water: Arc<AtomicU64>,
}

/// Point-in-time copy of every [`ReliabilityStats`] counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliabilitySnapshot {
    /// Data datagrams dropped by the simulated wire.
    pub wire_drops: u64,
    /// ACK datagrams dropped by the simulated wire.
    pub ack_drops: u64,
    /// Data retransmissions performed.
    pub retransmissions: u64,
    /// Duplicate data datagrams suppressed at receivers.
    pub duplicates: u64,
    /// Duplicate datagrams injected by the fault plan.
    pub dup_injected: u64,
    /// Datagrams held back by the seeded delay distribution.
    pub delayed: u64,
    /// Datagrams swapped by the reordering window.
    pub reordered: u64,
    /// Datagrams dropped while partitioned or to dead peers.
    pub partition_drops: u64,
    /// Scripted partition windows that healed.
    pub partitions_healed: u64,
    /// Datagrams lost to closed (shut-down) peer endpoints.
    pub peer_closed: u64,
    /// Peers declared dead after exhausting the retransmit budget.
    pub peers_declared_dead: u64,
    /// Frames mutated by the fault plan before transmission.
    pub corrupt_injected: u64,
    /// Received frames dropped by the integrity check.
    pub corrupt_dropped: u64,
    /// Checksum-valid frames quarantined by structural validation.
    pub decode_errors: u64,
}

impl ReliabilityStats {
    /// Deepest any of the fabric's channel queues ever got, in messages.
    pub fn link_high_water(&self) -> u64 {
        self.link_high_water.load(Ordering::Relaxed)
    }

    /// The shared gauge the fabric's metered links feed.
    pub(crate) fn link_gauge(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.link_high_water)
    }

    /// Snapshot of `(data wire drops, retransmissions, duplicates)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.wire_drops.load(Ordering::Relaxed),
            self.retransmissions.load(Ordering::Relaxed),
            self.duplicates.load(Ordering::Relaxed),
        )
    }

    /// Full snapshot of every counter.
    pub fn full(&self) -> ReliabilitySnapshot {
        ReliabilitySnapshot {
            wire_drops: self.wire_drops.load(Ordering::Relaxed),
            ack_drops: self.ack_drops.load(Ordering::Relaxed),
            retransmissions: self.retransmissions.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            dup_injected: self.dup_injected.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            partition_drops: self.partition_drops.load(Ordering::Relaxed),
            partitions_healed: self.partitions_healed.load(Ordering::Relaxed),
            peer_closed: self.peer_closed.load(Ordering::Relaxed),
            peers_declared_dead: self.peers_declared_dead.load(Ordering::Relaxed),
            corrupt_injected: self.corrupt_injected.load(Ordering::Relaxed),
            corrupt_dropped: self.corrupt_dropped.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
        }
    }
}

/// One datagram on the simulated wire.
#[derive(Clone)]
enum Dgram {
    Data {
        flow_src: ProcId,
        seq: u64,
        packet: Packet,
    },
    /// Cumulative acknowledgement: all data with `seq <= upto` received.
    Ack { flow_dst: ProcId, upto: u64 },
}

const DGRAM_TAG_DATA: u8 = 0;
const DGRAM_TAG_ACK: u8 = 1;

// Datagrams cross the simulated wire as bytes inside a checksummed frame
// (so the fault plan can corrupt them like a real physical layer); this is
// their body encoding.
impl Wire for Dgram {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Dgram::Data {
                flow_src,
                seq,
                packet,
            } => {
                buf.push(DGRAM_TAG_DATA);
                flow_src.encode(buf);
                seq.encode(buf);
                packet.encode(buf);
            }
            Dgram::Ack { flow_dst, upto } => {
                buf.push(DGRAM_TAG_ACK);
                flow_dst.encode(buf);
                upto.encode(buf);
            }
        }
    }

    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::wire::WireError> {
        Ok(match u8::decode(r)? {
            DGRAM_TAG_DATA => Dgram::Data {
                flow_src: Wire::decode(r)?,
                seq: Wire::decode(r)?,
                packet: Wire::decode(r)?,
            },
            DGRAM_TAG_ACK => Dgram::Ack {
                flow_dst: Wire::decode(r)?,
                upto: Wire::decode(r)?,
            },
            tag => return Err(crate::wire::WireError::BadTag { what: "Dgram", tag }),
        })
    }
}

impl Dgram {
    /// Structural validation after a successful decode: a frame can pass
    /// the checksum and still (through forgery or a stale peer) name
    /// processes outside this cluster, which would index out of range in
    /// the flow tables.  `n` is the cluster size.
    fn structurally_valid(&self, n: usize) -> bool {
        match self {
            Dgram::Data {
                flow_src, packet, ..
            } => flow_src.index() < n && packet.src.index() < n && packet.dst.index() < n,
            Dgram::Ack { flow_dst, .. } => flow_dst.index() < n,
        }
    }
}

/// Applies one deterministic mutation to a frame.  `roll` is a keyed hash
/// value supplying every random choice (bit position, cut point, tail
/// bytes), so the same `(plan, seed, frame identity)` always produces the
/// same damage.
fn apply_corruption(frame: &mut Vec<u8>, kind: CorruptKind, roll: u64) {
    match kind {
        CorruptKind::BitFlip => {
            let bit = (roll % (frame.len() as u64 * 8)) as usize;
            frame[bit / 8] ^= 1 << (bit % 8);
        }
        CorruptKind::Truncate => {
            let keep = (roll % frame.len() as u64) as usize;
            frame.truncate(keep);
        }
        CorruptKind::GarbageTail => {
            let extra = 1 + (roll % 16) as usize;
            for i in 0..extra {
                frame.push((roll >> (8 * (i % 8))) as u8);
            }
        }
    }
}

/// One unacknowledged data datagram.
struct Unacked {
    seq: u64,
    packet: Packet,
    /// Retransmissions performed so far.
    attempts: u32,
    /// When the next retransmission is due.
    due: Instant,
}

/// Sending-half state for one flow (this node → one peer).
struct FlowTx {
    next_seq: u64,
    unacked: Vec<Unacked>,
    /// Packets waiting for the credit window to reopen.  Retransmissions
    /// never queue here — a retransmitted datagram already holds a credit
    /// (it sits in `unacked`), which is what keeps a lossy capacity-1 link
    /// from deadlocking.
    pending: VecDeque<Packet>,
}

impl FlowTx {
    fn new() -> Self {
        FlowTx {
            next_seq: 1,
            unacked: Vec::new(),
            pending: VecDeque::new(),
        }
    }
}

/// Receiving-half state for one flow (one peer → this node).
struct FlowRx {
    /// Next in-order sequence number expected.
    expected: u64,
    /// Out-of-order buffer.
    buffer: HashMap<u64, Packet>,
}

/// Decision tags feeding the keyed fault hash (distinct streams per kind).
const TAG_DATA_DROP: u64 = 0xD1;
const TAG_ACK_DROP: u64 = 0xD2;
const TAG_DUP: u64 = 0xD3;
const TAG_REORDER: u64 = 0xD4;
const TAG_DELAY: u64 = 0xD5;
const TAG_JITTER: u64 = 0xD6;
/// Whether a frame is corrupted at all.
const TAG_CORRUPT: u64 = 0xD7;
/// Which mutation a corrupted frame receives, and where it lands.
const TAG_CORRUPT_KIND: u64 = 0xD8;

/// Deterministic per-datagram fault dice: a splitmix64-style hash of the
/// seed and the datagram identity, so decisions never depend on wall-clock
/// time or on the order faults are evaluated in.
#[derive(Clone, Copy)]
struct FaultDice {
    seed: u64,
}

impl FaultDice {
    fn mix(&self, tag: u64, a: u64, b: u64, c: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(a.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB))
            .wrapping_add(c.wrapping_mul(0x2545_F491_4F6C_DD1D));
        // Two splitmix64 finalizer rounds.
        for _ in 0..2 {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
        }
        z
    }

    fn hit(&self, tag: u64, a: u64, b: u64, c: u64, threshold: u64) -> bool {
        threshold > 0 && self.mix(tag, a, b, c) < threshold
    }
}

fn threshold(rate: f64) -> u64 {
    (rate * u64::MAX as f64) as u64
}

/// Per-node reliability engine, run on its own thread.
pub(crate) struct ReliabilityEngine {
    node: ProcId,
    /// Raw wire senders to every node (faulty).  The wire carries encoded,
    /// checksummed frames — bytes, not structures — so the fault plan can
    /// corrupt them like a real physical layer.
    wire_txs: Vec<LinkTx<Vec<u8>>>,
    /// Raw wire receiver.
    wire_rx: LinkRx<Vec<u8>>,
    /// New outbound packets from this node's senders.
    outbound_rx: LinkRx<(ProcId, Packet)>,
    /// In-order delivery (and peer-death events) to the application
    /// endpoint.
    deliver_tx: LinkTx<NetEvent>,
    plan: FaultPlan,
    /// Credit window: max unacknowledged data datagrams per flow
    /// (`max(1, plan.link_capacity)`).
    window: u64,
    /// Scripted slow-consumer trigger for this node: `(at_datagram,
    /// dwell)`.
    slow: Option<(u64, Duration)>,
    dice: FaultDice,
    /// Precomputed Bernoulli thresholds.
    drop_t: u64,
    ack_drop_t: u64,
    dup_t: u64,
    reorder_t: u64,
    corrupt_t: u64,
    /// Precomputed delay range in nanoseconds `(min, span)`.
    delay_ns: Option<(u64, u64)>,
    /// Scripted partition windows for *this* node: `(start, heal,
    /// heal_counted)` in node-local wire-datagram counts.  *Every*
    /// `Partition` event in the plan lands here (not just the first), so
    /// a node can partition, heal, and partition again.
    partitions: Vec<(u64, Option<u64>, bool)>,
    kill_at: Option<u64>,
    /// Scripted corruption points: `(sent-frame ordinal, mutation)`.
    corrupt_at: Vec<(u64, CorruptKind)>,
    /// Node-local counters driving the scripted events.
    wire_sends: u64,
    events_handled: u64,
    /// Frames this node has put on the wire (drives [`Self::corrupt_at`]).
    frames_sent: u64,
    partitioned: bool,
    killed: bool,
    /// Peers declared dead (retransmit budget exhausted).
    dead: HashSet<ProcId>,
    /// Frames held back by the delay distribution.
    delayed: Vec<(Instant, ProcId, Vec<u8>)>,
    /// Per-destination reordering holdback slot.
    holdback: HashMap<ProcId, Vec<u8>>,
    stats: Arc<ReliabilityStats>,
    tx_flows: HashMap<ProcId, FlowTx>,
    rx_flows: HashMap<ProcId, FlowRx>,
    /// Keep-alive senders for parked (closed) input channels, so `select!`
    /// blocks on the tick instead of spinning on a disconnected receiver.
    parked_outbound: Option<LinkTx<(ProcId, Packet)>>,
    parked_wire: Option<LinkTx<Vec<u8>>>,
}

impl ReliabilityEngine {
    /// Notes one engine event; returns `true` once the scripted kill point
    /// has been reached.
    fn note_event(&mut self) -> bool {
        self.events_handled += 1;
        if let Some(k) = self.kill_at {
            if self.events_handled >= k {
                self.killed = true;
            }
        }
        self.killed
    }

    /// Counts one datagram crossing this node's wire interface (either
    /// direction) and recomputes the partitioned state from the scripted
    /// windows: inside any un-healed window the node is cut off; past a
    /// window's heal point traffic flows again (counted once per window).
    /// Dropped datagrams advance the count too, so heal points stay keyed
    /// to the same deterministic node-local stream as partition starts.
    fn note_wire_dgram(&mut self) {
        self.wire_sends += 1;
        let mut inside = false;
        for w in &mut self.partitions {
            if self.wire_sends <= w.0 {
                continue;
            }
            match w.1 {
                Some(heal) if self.wire_sends > heal => {
                    if !w.2 {
                        w.2 = true;
                        self.stats.partitions_healed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                _ => inside = true,
            }
        }
        self.partitioned = inside;
    }

    /// Encodes one wire copy of `dgram` into a checksummed frame and
    /// applies any injected corruption: a scripted [`FaultEvent::CorruptAt`]
    /// matching this node-local sent-frame ordinal wins, otherwise the
    /// keyed `corrupt_rate` dice.  Every physical copy (original, injected
    /// duplicate, retransmission) is framed separately, so each gets an
    /// independent corruption decision — just like a real wire.
    fn frame_for(&mut self, dst: ProcId, dgram: &Dgram, tag: u64, a: u64, b: u64) -> Vec<u8> {
        self.frames_sent += 1;
        let mut frame = encode_frame(&dgram.to_bytes());
        let ordinal = self.frames_sent;
        let kind = self
            .corrupt_at
            .iter()
            .find(|(at, _)| *at == ordinal)
            .map(|&(_, k)| k)
            .or_else(|| {
                if self
                    .dice
                    .hit(TAG_CORRUPT, dst.0 as u64 ^ tag, a, b, self.corrupt_t)
                {
                    Some(
                        match self.dice.mix(TAG_CORRUPT, dst.0 as u64 ^ tag, a, b) % 3 {
                            0 => CorruptKind::BitFlip,
                            1 => CorruptKind::Truncate,
                            _ => CorruptKind::GarbageTail,
                        },
                    )
                } else {
                    None
                }
            });
        if let Some(kind) = kind {
            let roll = self.dice.mix(TAG_CORRUPT_KIND, dst.0 as u64 ^ tag, a, b);
            apply_corruption(&mut frame, kind, roll);
            self.stats.corrupt_injected.fetch_add(1, Ordering::Relaxed);
        }
        frame
    }

    /// Injects one datagram into the faulty wire: partition/death gates,
    /// then the keyed drop/dup/corrupt/delay/reorder decisions, then the
    /// raw send.
    fn inject(&mut self, dst: ProcId, dgram: &Dgram, tag: u64, a: u64, b: u64) {
        self.note_wire_dgram();
        if self.partitioned || self.dead.contains(&dst) {
            self.stats.partition_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let (drop_tag, drop_t, drop_ctr) = if tag == TAG_ACK_DROP {
            (TAG_ACK_DROP, self.ack_drop_t, &self.stats.ack_drops)
        } else {
            (TAG_DATA_DROP, self.drop_t, &self.stats.wire_drops)
        };
        if self.dice.hit(drop_tag, dst.0 as u64, a, b, drop_t) {
            drop_ctr.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self.dice.hit(TAG_DUP, dst.0 as u64 ^ tag, a, b, self.dup_t) {
            self.stats.dup_injected.fetch_add(1, Ordering::Relaxed);
            let dup = self.frame_for(dst, dgram, tag, a, b.wrapping_add(1));
            self.enqueue(dst, dup, tag, a, b.wrapping_add(1));
        }
        let frame = self.frame_for(dst, dgram, tag, a, b);
        if let Some((min_ns, span_ns)) = self.delay_ns {
            let extra = if span_ns == 0 {
                min_ns
            } else {
                min_ns + self.dice.mix(TAG_DELAY, dst.0 as u64 ^ tag, a, b) % (span_ns + 1)
            };
            if extra > 0 {
                self.stats.delayed.fetch_add(1, Ordering::Relaxed);
                self.delayed
                    .push((Instant::now() + Duration::from_nanos(extra), dst, frame));
                return;
            }
        }
        self.enqueue(dst, frame, tag, a, b);
    }

    /// Final emission stage: the pairwise reordering window, then the raw
    /// channel send.
    fn enqueue(&mut self, dst: ProcId, frame: Vec<u8>, tag: u64, a: u64, b: u64) {
        if let Some(held) = self.holdback.remove(&dst) {
            // Swap: the newer frame overtakes the held one.
            self.raw_send(dst, frame);
            self.raw_send(dst, held);
            return;
        }
        if self
            .dice
            .hit(TAG_REORDER, dst.0 as u64 ^ tag, a, b, self.reorder_t)
        {
            self.stats.reordered.fetch_add(1, Ordering::Relaxed);
            self.holdback.insert(dst, frame);
            return;
        }
        self.raw_send(dst, frame);
    }

    fn raw_send(&self, dst: ProcId, frame: Vec<u8>) {
        // A closed peer means shutdown is in progress; count it so
        // shutdown loss is distinguishable from wire loss.
        if self.wire_txs[dst.index()].send(frame).is_err() {
            self.stats.peer_closed.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn send_data(&mut self, dst: ProcId, seq: u64, attempt: u32, packet: Packet) {
        let dgram = Dgram::Data {
            flow_src: self.node,
            seq,
            packet,
        };
        self.inject(dst, &dgram, TAG_DATA_DROP, seq, u64::from(attempt));
    }

    fn send_ack(&mut self, dst: ProcId, upto: u64) {
        let dgram = Dgram::Ack {
            flow_dst: self.node,
            upto,
        };
        self.inject(dst, &dgram, TAG_ACK_DROP, upto, 0);
    }

    /// Backed-off, jittered retransmission timeout for the given attempt:
    /// `min(rto << attempt, max_rto)` plus a deterministic jitter of up to
    /// 25% of the base RTO (keyed per `(peer, seq, attempt)`).
    fn rto_for(&self, dst: ProcId, seq: u64, attempt: u32) -> Duration {
        let base = self.plan.rto.as_nanos() as u64;
        let backed = base.saturating_shl(attempt.min(20));
        let capped = backed.min(self.plan.max_rto.as_nanos() as u64);
        let jitter = (base / 4).wrapping_mul(
            self.dice
                .mix(TAG_JITTER, dst.0 as u64, seq, u64::from(attempt))
                & 0xFF,
        ) / 256;
        Duration::from_nanos(capped + jitter)
    }

    fn handle_outbound(&mut self, dst: ProcId, packet: Packet) {
        let window = self.window;
        let flow = self.tx_flows.entry(dst).or_insert_with(FlowTx::new);
        // Credit gate: a packet may only enter the wire while the flow
        // holds a free credit, and never ahead of earlier stalled packets.
        if (flow.unacked.len() as u64) < window && flow.pending.is_empty() {
            self.admit(dst, packet);
        } else {
            if flow.pending.is_empty() {
                self.stats
                    .credit_stalled_now
                    .fetch_add(1, Ordering::Relaxed);
            }
            flow.pending.push_back(packet);
            self.stats.credit_stalls.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Consumes one credit for `dst` and puts `packet` on the wire.  The
    /// caller guarantees a credit is free, making the in-flight window —
    /// and therefore `queue_high_water` — at most the configured capacity
    /// by construction.
    fn admit(&mut self, dst: ProcId, packet: Packet) {
        let flow = self.tx_flows.get_mut(&dst).expect("flow exists");
        let seq = flow.next_seq;
        flow.next_seq += 1;
        let inflight = flow.unacked.len() as u64 + 1;
        debug_assert!(inflight <= self.window, "credit window overrun");
        self.stats
            .queue_high_water
            .fetch_max(inflight, Ordering::Relaxed);
        let due = Instant::now() + self.rto_for(dst, seq, 0);
        self.tx_flows
            .get_mut(&dst)
            .expect("flow exists")
            .unacked
            .push(Unacked {
                seq,
                packet: packet.clone(),
                attempts: 0,
                due,
            });
        self.send_data(dst, seq, 0, packet);
    }

    /// Spends credits freed by an ACK on the flow's stalled packets, in
    /// arrival order.
    fn admit_pending(&mut self, dst: ProcId) {
        let Some(flow) = self.tx_flows.get_mut(&dst) else {
            return;
        };
        if flow.pending.is_empty() {
            return;
        }
        while let Some(flow) = self.tx_flows.get_mut(&dst) {
            if flow.pending.is_empty() || flow.unacked.len() as u64 >= self.window {
                break;
            }
            let packet = flow.pending.pop_front().expect("checked non-empty");
            self.admit(dst, packet);
        }
        let drained = match self.tx_flows.get(&dst) {
            Some(flow) => flow.pending.is_empty(),
            None => true,
        };
        if drained {
            self.stats
                .credit_stalled_now
                .fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn handle_wire(&mut self, frame: Vec<u8>) {
        self.note_wire_dgram();
        // Scripted slow consumer: dwell on every arrival past the trigger.
        // The dwell sits *before* the ACK is produced, so peers see their
        // credits come back late — the overload this fault exists to model.
        if let Some((at, dwell)) = self.slow {
            if self.wire_sends > at {
                std::thread::sleep(dwell);
            }
        }
        if self.partitioned {
            // A partitioned node hears nothing either.
            self.stats.partition_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Trust boundary: the wire delivered bytes, nothing more.  A frame
        // that fails the magic/length/checksum gate is treated exactly
        // like a loss (the sender's retransmit path repairs it); one that
        // passes the checksum but decodes to a malformed or out-of-range
        // datagram is quarantined rather than delivered.
        let body = match decode_frame(&frame) {
            Ok(body) => body,
            Err(_) => {
                self.stats.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let dgram = match Dgram::from_bytes(body) {
            Ok(d) => d,
            Err(_) => {
                self.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        if !dgram.structurally_valid(self.wire_txs.len()) {
            self.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match dgram {
            Dgram::Data {
                flow_src,
                seq,
                packet,
            } => {
                let flow = self.rx_flows.entry(flow_src).or_insert(FlowRx {
                    expected: 1,
                    buffer: HashMap::new(),
                });
                if seq < flow.expected || flow.buffer.contains_key(&seq) {
                    self.stats.duplicates.fetch_add(1, Ordering::Relaxed);
                } else {
                    flow.buffer.insert(seq, packet);
                    while let Some(pkt) = flow.buffer.remove(&flow.expected) {
                        flow.expected += 1;
                        self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                        // The application endpoint outliving us is not
                        // required during shutdown.
                        let _ = self.deliver_tx.send(NetEvent::Packet(pkt));
                    }
                }
                // (Re-)acknowledge cumulatively; covers lost ACKs too.
                let upto = self.rx_flows[&flow_src].expected - 1;
                self.send_ack(flow_src, upto);
            }
            Dgram::Ack { flow_dst, upto } => {
                if let Some(flow) = self.tx_flows.get_mut(&flow_dst) {
                    flow.unacked.retain(|u| u.seq > upto);
                }
                // The cumulative ACK is the credit grant: spend whatever
                // it freed on this flow's stalled packets.
                self.admit_pending(flow_dst);
            }
        }
    }

    /// Retransmits due datagrams; declares a peer dead once one datagram
    /// exhausts the retransmit budget.
    fn retransmit_due(&mut self) {
        let now = Instant::now();
        let max = self.plan.max_retransmits;
        let mut resend: Vec<(ProcId, u64, u32, Packet)> = Vec::new();
        let mut died: Vec<ProcId> = Vec::new();
        for (&dst, flow) in &mut self.tx_flows {
            for u in &mut flow.unacked {
                if now < u.due {
                    continue;
                }
                if u.attempts >= max {
                    died.push(dst);
                    break;
                }
                u.attempts += 1;
                resend.push((dst, u.seq, u.attempts, u.packet.clone()));
            }
        }
        for (dst, seq, attempt, packet) in resend {
            if died.contains(&dst) {
                continue;
            }
            self.stats.retransmissions.fetch_add(1, Ordering::Relaxed);
            let due = now + self.rto_for(dst, seq, attempt);
            if let Some(u) = self
                .tx_flows
                .get_mut(&dst)
                .and_then(|f| f.unacked.iter_mut().find(|u| u.seq == seq))
            {
                u.due = due;
            }
            self.send_data(dst, seq, attempt, packet);
        }
        for dst in died {
            if self.dead.insert(dst) {
                self.stats
                    .peers_declared_dead
                    .fetch_add(1, Ordering::Relaxed);
                // Abandon the flow: the peer is gone, and holding unacked
                // or credit-stalled data would stall shutdown draining
                // forever.
                if let Some(flow) = self.tx_flows.get_mut(&dst) {
                    flow.unacked.clear();
                    if !flow.pending.is_empty() {
                        flow.pending.clear();
                        self.stats
                            .credit_stalled_now
                            .fetch_sub(1, Ordering::Relaxed);
                    }
                }
                let _ = self.deliver_tx.send(NetEvent::PeerDead { peer: dst });
            }
        }
    }

    /// Releases delay-held datagrams whose due time has passed.
    fn flush_delayed(&mut self) {
        if self.delayed.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut due = Vec::new();
        self.delayed.retain(|(at, dst, frame)| {
            if *at <= now {
                due.push((*dst, frame.clone()));
                false
            } else {
                true
            }
        });
        for (dst, frame) in due {
            self.raw_send(dst, frame);
        }
    }

    /// Flushes the reordering holdback slots (called on idle ticks so a
    /// held datagram waits at most one tick for a swap partner).
    fn flush_holdback(&mut self) {
        if self.holdback.is_empty() {
            return;
        }
        let held: Vec<(ProcId, Vec<u8>)> = self.holdback.drain().collect();
        for (dst, frame) in held {
            self.raw_send(dst, frame);
        }
    }

    /// Parks the closed outbound channel behind a never-ready receiver so
    /// `select!` blocks on the tick instead of spinning on the disconnect.
    fn park_outbound(&mut self) {
        let (tx, rx) = metered_link(self.stats.link_gauge());
        self.parked_outbound = Some(tx);
        self.outbound_rx = rx;
    }

    fn park_wire(&mut self) {
        let (tx, rx) = metered_link(self.stats.link_gauge());
        self.parked_wire = Some(tx);
        self.wire_rx = rx;
    }

    fn run(mut self) {
        // Event loop: new outbound sends, wire arrivals, and a periodic
        // retransmission scan.  Exits when the outbound channel closes and
        // every flow is drained (or the wire is gone too), or at the
        // scripted kill point.
        let tick = (self.plan.rto / 2).max(Duration::from_micros(200));
        let mut outbound_open = true;
        let mut wire_open = true;
        loop {
            crossbeam::channel::select! {
                recv(self.outbound_rx) -> msg => match msg {
                    Ok((dst, pkt)) => {
                        if !self.note_event() {
                            self.handle_outbound(dst, pkt);
                        }
                    }
                    Err(_) => {
                        outbound_open = false;
                        self.park_outbound();
                    }
                },
                recv(self.wire_rx) -> msg => match msg {
                    Ok(frame) => {
                        if !self.note_event() {
                            self.handle_wire(frame);
                        }
                    }
                    Err(_) => {
                        wire_open = false;
                        self.park_wire();
                    }
                },
                default(tick) => self.flush_holdback(),
            }
            if self.killed {
                // Crashed node: drop every channel on the way out; peers
                // detect the death through their retransmit budgets.
                return;
            }
            self.flush_delayed();
            // Skip the retransmit scan entirely while nothing is unacked.
            if self.tx_flows.values().any(|f| !f.unacked.is_empty()) {
                self.retransmit_due();
            }
            if !outbound_open {
                let drained = self
                    .tx_flows
                    .values()
                    .all(|f| f.unacked.is_empty() && f.pending.is_empty())
                    && self.delayed.is_empty()
                    && self.holdback.is_empty();
                if drained || !wire_open {
                    return;
                }
            }
        }
    }
}

/// Saturating left shift (avoids overflow for large backoff exponents).
trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, n: u32) -> u64 {
        if n >= 64 || self > (u64::MAX >> n) {
            u64::MAX
        } else {
            self << n
        }
    }
}

/// Per-node wiring of a faulty network: outbound senders (for
/// `NetSender`), in-order event receivers (for `Endpoint`), and the
/// shared stats block.
pub(crate) type ReliableFabric = (
    Vec<LinkTx<(ProcId, Packet)>>,
    Vec<LinkRx<NetEvent>>,
    Arc<ReliabilityStats>,
);

/// Builds the per-node engines and wiring for a faulty network.  Every
/// channel — wire, outbound, delivery — is a metered link feeding the
/// shared [`ReliabilityStats::link_high_water`] gauge, so no unobservable
/// queue survives in the transport.
pub(crate) fn build_reliable_fabric(n: usize, plan: FaultPlan) -> ReliableFabric {
    let stats = Arc::new(ReliabilityStats::default());
    let mut wire_txs = Vec::with_capacity(n);
    let mut wire_rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = metered_link::<Vec<u8>>(stats.link_gauge());
        wire_txs.push(tx);
        wire_rxs.push(rx);
    }
    let mut outbound_txs = Vec::with_capacity(n);
    let mut deliver_rxs = Vec::with_capacity(n);
    for (i, wire_rx) in wire_rxs.into_iter().enumerate() {
        let (outbound_tx, outbound_rx) = metered_link(stats.link_gauge());
        let (deliver_tx, deliver_rx) = metered_link(stats.link_gauge());
        outbound_txs.push(outbound_tx);
        deliver_rxs.push(deliver_rx);
        let me = ProcId::from_index(i);
        // Collect *every* partition window scripted for this node — an
        // earlier version `find_map`ed the first event only, silently
        // dropping later scripted partitions.
        let partitions: Vec<(u64, Option<u64>, bool)> = plan
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Partition {
                    node,
                    at_datagram,
                    heal_at,
                } if *node == me => Some((*at_datagram, *heal_at, false)),
                _ => None,
            })
            .collect();
        let slow = plan.events.iter().find_map(|e| match e {
            FaultEvent::SlowConsumer {
                node,
                at_datagram,
                dwell,
            } if *node == me => Some((*at_datagram, *dwell)),
            _ => None,
        });
        let kill_at = plan.events.iter().find_map(|e| match e {
            FaultEvent::Kill { node, at_event } if *node == me => Some(*at_event),
            _ => None,
        });
        let corrupt_at: Vec<(u64, CorruptKind)> = plan
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::CorruptAt {
                    node,
                    at_frame,
                    kind,
                } if *node == me => Some((*at_frame, *kind)),
                _ => None,
            })
            .collect();
        let engine = ReliabilityEngine {
            node: me,
            wire_txs: wire_txs.clone(),
            wire_rx,
            outbound_rx,
            deliver_tx,
            dice: FaultDice {
                seed: plan.seed ^ (i as u64).wrapping_mul(0x1234_5677),
            },
            drop_t: threshold(plan.drop_rate),
            ack_drop_t: threshold(plan.ack_drop_rate),
            dup_t: threshold(plan.dup_rate),
            reorder_t: threshold(plan.reorder_rate),
            corrupt_t: threshold(plan.corrupt_rate),
            delay_ns: plan
                .delay
                .map(|(min, max)| (min.as_nanos() as u64, (max - min).as_nanos() as u64)),
            window: u64::from(plan.link_capacity.max(1)),
            slow,
            partitions,
            kill_at,
            corrupt_at,
            wire_sends: 0,
            events_handled: 0,
            frames_sent: 0,
            partitioned: false,
            killed: false,
            dead: HashSet::new(),
            delayed: Vec::new(),
            holdback: HashMap::new(),
            stats: Arc::clone(&stats),
            tx_flows: HashMap::new(),
            rx_flows: HashMap::new(),
            parked_outbound: None,
            parked_wire: None,
            plan: plan.clone(),
        };
        std::thread::Builder::new()
            .name(format!("reliability-{i}"))
            .spawn(move || engine.run())
            .expect("spawn reliability engine");
    }
    (outbound_txs, deliver_rxs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dice_matches_rate_roughly() {
        let dice = FaultDice { seed: 42 };
        let t = threshold(0.25);
        let hits = (0..10_000u64)
            .filter(|&i| dice.hit(TAG_DATA_DROP, 1, i, 0, t))
            .count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert_eq!(
            (0..1000u64)
                .filter(|&i| dice.hit(TAG_DATA_DROP, 1, i, 0, threshold(0.0)))
                .count(),
            0
        );
    }

    #[test]
    fn dice_is_keyed_not_sequenced() {
        // The decision for a given datagram identity is a pure function of
        // the seed — evaluation order cannot change it.
        let dice = FaultDice { seed: 7 };
        let t = threshold(0.5);
        let forward: Vec<bool> = (0..64u64)
            .map(|i| dice.hit(TAG_DATA_DROP, 3, i, 0, t))
            .collect();
        let backward: Vec<bool> = (0..64u64)
            .rev()
            .map(|i| dice.hit(TAG_DATA_DROP, 3, i, 0, t))
            .collect();
        let backward: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
        let other = FaultDice { seed: 8 };
        let differs: Vec<bool> = (0..64u64)
            .map(|i| other.hit(TAG_DATA_DROP, 3, i, 0, t))
            .collect();
        assert_ne!(forward, differs);
    }

    #[test]
    fn tags_decorrelate_decision_streams() {
        let dice = FaultDice { seed: 11 };
        let t = threshold(0.5);
        let drops: Vec<bool> = (0..128u64)
            .map(|i| dice.hit(TAG_DATA_DROP, 2, i, 0, t))
            .collect();
        let dups: Vec<bool> = (0..128u64).map(|i| dice.hit(TAG_DUP, 2, i, 0, t)).collect();
        assert_ne!(drops, dups);
    }

    #[test]
    fn saturating_shl_caps() {
        assert_eq!(1u64.saturating_shl(3), 8);
        assert_eq!(u64::MAX.saturating_shl(1), u64::MAX);
        assert_eq!(2u64.saturating_shl(64), u64::MAX);
        assert_eq!(1u64.saturating_shl(63), 1 << 63);
    }

    #[test]
    fn every_corruption_kind_is_detected() {
        // Whatever mutation the plan applies, the receiver's frame gate
        // must reject the result — corruption may never decode.
        let dgram = Dgram::Ack {
            flow_dst: ProcId(1),
            upto: 42,
        };
        let clean = encode_frame(&dgram.to_bytes());
        assert!(decode_frame(&clean).is_ok());
        for kind in [
            CorruptKind::BitFlip,
            CorruptKind::Truncate,
            CorruptKind::GarbageTail,
        ] {
            for roll in 0..512u64 {
                let mut frame = clean.clone();
                apply_corruption(&mut frame, kind, roll);
                assert!(
                    decode_frame(&frame).is_err(),
                    "{kind:?} with roll {roll} slipped through"
                );
            }
        }
    }

    #[test]
    fn corruption_stream_is_keyed_not_sequenced() {
        // The corrupt decision and the chosen mutation for a given frame
        // identity are pure functions of the seed, independent of the
        // order frames are evaluated in.
        let dice = FaultDice { seed: 23 };
        let t = threshold(0.3);
        let decide = |a: u64| -> Option<u64> {
            dice.hit(TAG_CORRUPT, 1, a, 0, t)
                .then(|| dice.mix(TAG_CORRUPT, 1, a, 0) % 3)
        };
        let forward: Vec<_> = (0..256u64).map(decide).collect();
        let backward: Vec<_> = {
            let mut v: Vec<_> = (0..256u64).rev().map(decide).collect();
            v.reverse();
            v
        };
        assert_eq!(forward, backward);
        assert!(forward.iter().any(Option::is_some), "rate 0.3 never hit");
        // A different seed yields a different stream.
        let other = FaultDice { seed: 24 };
        let differs: Vec<_> = (0..256u64)
            .map(|a| {
                other
                    .hit(TAG_CORRUPT, 1, a, 0, t)
                    .then(|| other.mix(TAG_CORRUPT, 1, a, 0) % 3)
            })
            .collect();
        assert_ne!(forward, differs);
    }

    #[test]
    fn structural_validation_rejects_out_of_range_procs() {
        let ack = Dgram::Ack {
            flow_dst: ProcId(5),
            upto: 1,
        };
        assert!(ack.structurally_valid(6));
        assert!(!ack.structurally_valid(5));
        // A checksum-valid frame naming a proc outside the cluster must
        // round-trip the frame gate but fail the structural gate.
        let frame = encode_frame(&ack.to_bytes());
        let body = decode_frame(&frame).expect("frame intact");
        let decoded = Dgram::from_bytes(body).expect("decodes fine");
        assert!(!decoded.structurally_valid(3));
    }

    #[test]
    fn fault_plan_builders_compose() {
        let plan = FaultPlan::new(0.1, 9)
            .with_rto(Duration::from_millis(5), Duration::from_millis(80))
            .with_max_retransmits(8)
            .with_duplication(0.05)
            .with_reordering(0.02)
            .with_corruption(0.03)
            .with_delay(Duration::from_micros(10), Duration::from_micros(50))
            .with_kill(ProcId(2), 100)
            .with_partition(ProcId(1), 40)
            .with_corrupt_at(ProcId(0), 3, CorruptKind::Truncate)
            .with_kill_at_phase(ProcId(0), ProtocolPhase::BitmapRound, 2);
        assert_eq!(plan.rto, Duration::from_millis(5));
        assert_eq!(plan.max_retransmits, 8);
        assert_eq!(plan.corrupt_rate, 0.03);
        assert_eq!(plan.events.len(), 4);
        assert!(matches!(
            plan.events[3],
            FaultEvent::KillAtPhase {
                node: ProcId(0),
                phase: ProtocolPhase::BitmapRound,
                hit: 2
            }
        ));
        assert!(matches!(
            plan.events[2],
            FaultEvent::CorruptAt {
                node: ProcId(0),
                at_frame: 3,
                kind: CorruptKind::Truncate
            }
        ));
        assert!(matches!(
            plan.events[0],
            FaultEvent::Kill {
                node: ProcId(2),
                at_event: 100
            }
        ));
    }

    #[test]
    fn link_capacity_defaults_unbounded_and_composes() {
        let plan = FaultPlan::clean(3);
        assert_eq!(plan.link_capacity, u32::MAX);
        let plan =
            plan.with_link_capacity(4)
                .with_slow_consumer(ProcId(1), 50, Duration::from_millis(2));
        assert_eq!(plan.link_capacity, 4);
        assert_eq!(
            plan.events[0],
            FaultEvent::SlowConsumer {
                node: ProcId(1),
                at_datagram: 50,
                dwell: Duration::from_millis(2)
            }
        );
    }

    #[test]
    #[should_panic(expected = "link capacity below 1")]
    fn zero_link_capacity_rejected() {
        let _ = FaultPlan::clean(1).with_link_capacity(0);
    }
}
