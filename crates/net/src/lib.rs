//! Simulated cluster interconnect.
//!
//! The paper's testbed connected DEC workstations with a 155 Mbit ATM
//! network and ran CVM's reliable end-to-end protocols over UDP.  The
//! detection algorithm never looks at packets — it consumes protocol
//! events — so this crate substitutes in-process links:
//!
//! * [`Network`] wires up `n` endpoints with reliable, ordered,
//!   all-to-all links (crossbeam channels underneath);
//! * [`wire`] is a small explicit codec; every message is really encoded
//!   to bytes so that message sizes are *exact*, not estimated — the
//!   paper's Table 3 "Msg Ohead" column (bandwidth added by read notices)
//!   is computed from these sizes;
//! * [`NetStats`] accounts bytes and message counts per [`TrafficClass`],
//!   letting the harness separate read-notice and bitmap bytes from base
//!   protocol traffic;
//! * a configurable maximum message size models the system limit that
//!   capped the paper's input sizes (§5.3).
//!
//! # Examples
//!
//! ```
//! use cvm_net::wire::Wire;
//! use cvm_vclock::VClock;
//!
//! let vc = VClock::from(vec![3, 1, 4]);
//! let bytes = vc.to_bytes();
//! assert_eq!(bytes.len() as u64, vc.wire_size());   // Exact sizes.
//! assert_eq!(VClock::from_bytes(&bytes).unwrap(), vc);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod link;
mod network;
pub mod reliable;
mod stats;
pub mod wire;

pub use network::{
    Endpoint, NetConfig, NetError, NetEvent, NetSender, Network, Packet, HEADER_BYTES,
};
pub use reliable::{
    CorruptKind, FaultEvent, FaultPlan, ProtocolPhase, ReliabilitySnapshot, ReliabilityStats,
};
pub use stats::{ByteBreakdown, NetStats, StatsSnapshot, TrafficClass};
