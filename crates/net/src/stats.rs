//! Per-traffic-class byte and message accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Classification of protocol traffic, used to attribute bandwidth.
///
/// The paper's Table 3 reports the *message overhead* of race detection as
/// the bandwidth added by read notices relative to the rest of the traffic;
/// the extra bitmap round at barriers is accounted separately (it feeds the
/// "Bitmaps" bar of Figure 3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum TrafficClass {
    /// Page contents and diffs.
    Data = 0,
    /// Synchronization and consistency metadata (lock grants, barrier
    /// arrivals/releases, write notices, version vectors).
    Sync = 1,
    /// Read notices added by the race detector (paper modification ii).
    ReadNotice = 2,
    /// Access bitmaps transferred in the extra barrier round (mod iii).
    Bitmap = 3,
    /// Everything else (requests, control).
    Control = 4,
}

/// Number of traffic classes.
pub const NCLASSES: usize = 5;

impl TrafficClass {
    /// All classes, in discriminant order.
    pub const ALL: [TrafficClass; NCLASSES] = [
        TrafficClass::Data,
        TrafficClass::Sync,
        TrafficClass::ReadNotice,
        TrafficClass::Bitmap,
        TrafficClass::Control,
    ];
}

/// Byte counts of one message, split by traffic class.
///
/// A single lock-grant message mixes classes: its consistency metadata is
/// [`TrafficClass::Sync`] while the read notices riding along are
/// [`TrafficClass::ReadNotice`].  Senders therefore describe each packet
/// with a breakdown rather than one class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ByteBreakdown(pub [u64; NCLASSES]);

impl ByteBreakdown {
    /// A breakdown with all bytes in one class.
    pub fn single(class: TrafficClass, bytes: u64) -> Self {
        let mut b = ByteBreakdown::default();
        b.0[class as usize] = bytes;
        b
    }

    /// Adds `bytes` to `class`.
    pub fn add(&mut self, class: TrafficClass, bytes: u64) {
        self.0[class as usize] += bytes;
    }

    /// Total bytes across classes.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Bytes in `class`.
    pub fn get(&self, class: TrafficClass) -> u64 {
        self.0[class as usize]
    }
}

use crate::wire::Wire;

// A breakdown rides inside every reliable-transport datagram (the frame
// carries the packet's accounting to the receiver), so it needs a wire
// form: the five class counters in discriminant order.
impl Wire for ByteBreakdown {
    fn encode(&self, buf: &mut Vec<u8>) {
        for b in &self.0 {
            b.encode(buf);
        }
    }
    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::wire::WireError> {
        let mut b = [0u64; NCLASSES];
        for slot in &mut b {
            *slot = u64::decode(r)?;
        }
        Ok(ByteBreakdown(b))
    }
    fn wire_size(&self) -> u64 {
        8 * NCLASSES as u64
    }
    fn min_wire_size() -> u64 {
        8 * NCLASSES as u64
    }
}

/// Shared, thread-safe network statistics.
#[derive(Debug, Default)]
pub struct NetStats {
    msgs: AtomicU64,
    bytes: [AtomicU64; NCLASSES],
    /// Deepest any transport link queue ever got (shared gauge across all
    /// of this network's metered links).  Kept out of [`StatsSnapshot`]:
    /// queue depth is timing-dependent, and the snapshot must stay
    /// byte-identical across identically-seeded runs.
    link_high_water: Arc<AtomicU64>,
}

impl NetStats {
    /// Creates a fresh statistics block behind an [`Arc`].
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<Self> {
        Arc::new(NetStats::default())
    }

    /// Deepest any of this network's link queues ever got, in messages.
    pub fn link_high_water(&self) -> u64 {
        self.link_high_water.load(Ordering::Relaxed)
    }

    /// The shared gauge the network's metered links feed.
    pub(crate) fn link_gauge(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.link_high_water)
    }

    /// Records one message with the given byte breakdown.
    pub fn record(&self, breakdown: &ByteBreakdown) {
        self.msgs.fetch_add(1, Ordering::Relaxed);
        for (slot, &b) in self.bytes.iter().zip(&breakdown.0) {
            if b > 0 {
                slot.fetch_add(b, Ordering::Relaxed);
            }
        }
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            msgs: self.msgs.load(Ordering::Relaxed),
            bytes: core::array::from_fn(|i| self.bytes[i].load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of [`NetStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total messages sent.
    pub msgs: u64,
    /// Bytes sent, per traffic class.
    pub bytes: [u64; NCLASSES],
}

impl StatsSnapshot {
    /// Total bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Bytes in one class.
    pub fn class_bytes(&self, class: TrafficClass) -> u64 {
        self.bytes[class as usize]
    }

    /// The paper's Table 3 "Msg Ohead": bandwidth added by read notices as
    /// a fraction of all *other* traffic.
    pub fn read_notice_overhead(&self) -> f64 {
        let rn = self.class_bytes(TrafficClass::ReadNotice) as f64;
        let rest = (self.total_bytes() - self.class_bytes(TrafficClass::ReadNotice)) as f64;
        if rest == 0.0 {
            0.0
        } else {
            rn / rest
        }
    }

    /// Read-notice bandwidth relative to *synchronization* traffic only
    /// (consistency metadata, excluding page data and bitmap rounds) — the
    /// overhead as felt by the messages the notices actually ride on.
    pub fn read_notice_sync_overhead(&self) -> f64 {
        let rn = self.class_bytes(TrafficClass::ReadNotice) as f64;
        let sync = self.class_bytes(TrafficClass::Sync) as f64;
        if sync == 0.0 {
            0.0
        } else {
            rn / sync
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates() {
        let mut b = ByteBreakdown::single(TrafficClass::Sync, 100);
        b.add(TrafficClass::ReadNotice, 40);
        b.add(TrafficClass::Sync, 10);
        assert_eq!(b.total(), 150);
        assert_eq!(b.get(TrafficClass::Sync), 110);
        assert_eq!(b.get(TrafficClass::ReadNotice), 40);
        assert_eq!(b.get(TrafficClass::Data), 0);
    }

    #[test]
    fn stats_record_and_snapshot() {
        let s = NetStats::new();
        s.record(&ByteBreakdown::single(TrafficClass::Data, 4096));
        let mut b = ByteBreakdown::single(TrafficClass::Sync, 64);
        b.add(TrafficClass::ReadNotice, 32);
        s.record(&b);
        let snap = s.snapshot();
        assert_eq!(snap.msgs, 2);
        assert_eq!(snap.total_bytes(), 4192);
        assert_eq!(snap.class_bytes(TrafficClass::ReadNotice), 32);
    }

    #[test]
    fn read_notice_overhead_ratio() {
        let s = NetStats::new();
        s.record(&ByteBreakdown::single(TrafficClass::Data, 900));
        s.record(&ByteBreakdown::single(TrafficClass::Sync, 100));
        s.record(&ByteBreakdown::single(TrafficClass::ReadNotice, 250));
        let snap = s.snapshot();
        assert!((snap.read_notice_overhead() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_overhead() {
        let snap = NetStats::new().snapshot();
        assert_eq!(snap.read_notice_overhead(), 0.0);
        assert_eq!(snap.total_bytes(), 0);
    }
}
