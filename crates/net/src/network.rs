//! Endpoints and links.

use std::fmt;
use std::sync::Arc;

use crossbeam::channel::TryRecvError;
use cvm_vclock::ProcId;

use crate::link::{metered_link, LinkRx, LinkTx};
use crate::stats::{ByteBreakdown, NetStats, TrafficClass};
use crate::wire::Wire;

/// Fixed per-message header overhead, modelling the UDP/IP encapsulation of
/// CVM's end-to-end protocol (8-byte UDP + 20-byte IP header).
pub const HEADER_BYTES: u64 = 28;
// (Re-exported below via the crate root so documentation links resolve.)

/// Network configuration.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Maximum encoded message size.
    ///
    /// The paper notes (§5.3) that read notices pushed barrier messages to
    /// the system maximum, capping input sizes; exceeding this limit is a
    /// hard error just as it was for CVM.
    pub max_msg_bytes: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            // Generous default; experiments that model the paper's limit
            // lower it.
            max_msg_bytes: 4 << 20,
        }
    }
}

/// Errors from link operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// Encoded message exceeded [`NetConfig::max_msg_bytes`].
    MsgTooLarge {
        /// Encoded size of the offending message.
        size: u64,
        /// Configured maximum.
        max: u64,
    },
    /// The destination endpoint no longer exists.
    Disconnected,
    /// No message was ready (non-blocking receive only).
    Empty,
    /// The reliability layer declared `peer` dead (retransmit budget
    /// exhausted); traffic to and from it is abandoned.
    PeerDead {
        /// The dead peer.
        peer: ProcId,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::MsgTooLarge { size, max } => {
                write!(f, "message of {size} bytes exceeds system maximum of {max}")
            }
            NetError::Disconnected => write!(f, "peer endpoint disconnected"),
            NetError::Empty => write!(f, "no message ready"),
            NetError::PeerDead { peer } => {
                write!(f, "peer P{} declared dead by the reliability layer", peer.0)
            }
        }
    }
}

impl std::error::Error for NetError {}

/// One delivered message.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Sending process.
    pub src: ProcId,
    /// Destination process.
    pub dst: ProcId,
    /// Sender's virtual time at transmission (cycles); used by the
    /// receiver's virtual clock to model latency.
    pub sent_at: u64,
    /// Byte accounting for this message (payload split by class, plus the
    /// header under [`TrafficClass::Control`]).
    pub breakdown: ByteBreakdown,
    /// Encoded message body.
    pub payload: Vec<u8>,
}

// On the reliable transport a packet crosses the simulated wire as bytes
// inside a checksummed frame (see [`crate::wire::encode_frame`]), so it
// needs an explicit wire form like any protocol structure.
impl Wire for Packet {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.src.encode(buf);
        self.dst.encode(buf);
        self.sent_at.encode(buf);
        self.breakdown.encode(buf);
        self.payload.encode(buf);
    }
    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::wire::WireError> {
        Ok(Packet {
            src: Wire::decode(r)?,
            dst: Wire::decode(r)?,
            sent_at: Wire::decode(r)?,
            breakdown: Wire::decode(r)?,
            payload: Wire::decode(r)?,
        })
    }
    fn wire_size(&self) -> u64 {
        2 + 2 + 8 + self.breakdown.wire_size() + 4 + self.payload.len() as u64
    }
    fn min_wire_size() -> u64 {
        2 + 2 + 8 + 40 + 4
    }
}

/// What an endpoint's receive channel carries: ordinary packets, plus
/// failure notifications from the reliability layer.
#[derive(Clone, Debug)]
pub enum NetEvent {
    /// A delivered message.
    Packet(Packet),
    /// The reliability layer exhausted its retransmit budget to `peer`
    /// and declared it dead.
    PeerDead {
        /// The dead peer.
        peer: ProcId,
    },
}

/// How packets leave a sender.
#[derive(Clone)]
enum Transport {
    /// Straight into the destination's channel (a reliable, metered link).
    Direct(Arc<Vec<LinkTx<NetEvent>>>),
    /// Through the owning node's reliability engine (lossy wire
    /// underneath; see [`crate::reliable`]).
    Reliable(LinkTx<(ProcId, Packet)>),
}

/// Cloneable sending half bound to a source process.
#[derive(Clone)]
pub struct NetSender {
    src: ProcId,
    transport: Transport,
    fanout: usize,
    stats: Arc<NetStats>,
    config: NetConfig,
}

impl NetSender {
    /// Sends `payload` to `dst`.
    ///
    /// `breakdown` must classify exactly the payload bytes; the fixed
    /// [`HEADER_BYTES`] are added under [`TrafficClass::Control`]
    /// automatically.
    ///
    /// # Errors
    ///
    /// [`NetError::MsgTooLarge`] if the message exceeds the configured
    /// maximum, [`NetError::Disconnected`] if `dst` is gone.
    ///
    /// # Panics
    ///
    /// Panics if `breakdown` does not sum to `payload.len()` — a protocol
    /// accounting bug.
    pub fn send(
        &self,
        dst: ProcId,
        sent_at: u64,
        mut breakdown: ByteBreakdown,
        payload: Vec<u8>,
    ) -> Result<(), NetError> {
        assert_eq!(
            breakdown.total(),
            payload.len() as u64,
            "byte breakdown does not match payload size"
        );
        let size = payload.len() as u64 + HEADER_BYTES;
        if size > self.config.max_msg_bytes {
            return Err(NetError::MsgTooLarge {
                size,
                max: self.config.max_msg_bytes,
            });
        }
        breakdown.add(TrafficClass::Control, HEADER_BYTES);
        self.stats.record(&breakdown);
        let pkt = Packet {
            src: self.src,
            dst,
            sent_at,
            breakdown,
            payload,
        };
        match &self.transport {
            Transport::Direct(txs) => txs[dst.index()]
                .send(NetEvent::Packet(pkt))
                .map_err(|_| NetError::Disconnected),
            Transport::Reliable(outbound) => outbound
                .send((dst, pkt))
                .map_err(|_| NetError::Disconnected),
        }
    }

    /// The bound source process.
    pub fn src(&self) -> ProcId {
        self.src
    }

    /// Rebinds the sender to a different source process.
    ///
    /// Used by per-node helper threads that send on behalf of the node.
    #[must_use]
    pub fn with_src(&self, src: ProcId) -> NetSender {
        NetSender {
            src,
            ..self.clone()
        }
    }

    /// Number of endpoints in the network.
    pub fn fanout(&self) -> usize {
        self.fanout
    }
}

/// Receiving endpoint of one process.
pub struct Endpoint {
    id: ProcId,
    sender: NetSender,
    rx: LinkRx<NetEvent>,
}

impl Endpoint {
    /// The owning process.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// A cloneable sender bound to this process.
    pub fn sender(&self) -> NetSender {
        self.sender.clone()
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] once every sender is gone;
    /// [`NetError::PeerDead`] when the reliability layer declares a peer
    /// dead (the endpoint remains usable for surviving peers).
    pub fn recv(&self) -> Result<Packet, NetError> {
        match self.rx.recv() {
            Ok(NetEvent::Packet(pkt)) => Ok(pkt),
            Ok(NetEvent::PeerDead { peer }) => Err(NetError::PeerDead { peer }),
            Err(_) => Err(NetError::Disconnected),
        }
    }

    /// Blocks until a message arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`NetError::Empty`] on timeout, plus everything [`Endpoint::recv`]
    /// can return.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<Packet, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(NetEvent::Packet(pkt)) => Ok(pkt),
            Ok(NetEvent::PeerDead { peer }) => Err(NetError::PeerDead { peer }),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Err(NetError::Empty),
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// [`NetError::Empty`] if no message is ready, [`NetError::Disconnected`]
    /// once every sender is gone, [`NetError::PeerDead`] on a peer-death
    /// notification.
    pub fn try_recv(&self) -> Result<Packet, NetError> {
        match self.rx.try_recv() {
            Ok(NetEvent::Packet(pkt)) => Ok(pkt),
            Ok(NetEvent::PeerDead { peer }) => Err(NetError::PeerDead { peer }),
            Err(TryRecvError::Empty) => Err(NetError::Empty),
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

/// Factory for fully connected simulated networks.
pub struct Network;

impl Network {
    /// Creates `n` endpoints with reliable ordered all-to-all links and a
    /// shared statistics block.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(n: usize, config: NetConfig) -> (Vec<Endpoint>, Arc<NetStats>) {
        let stats = NetStats::new();
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            // Metered: the shared gauge makes even the "reliable" direct
            // links' deepest queue observable in the resource report.
            let (tx, rx) = metered_link(stats.link_gauge());
            txs.push(tx);
            rxs.push(rx);
        }
        let txs = Arc::new(txs);
        let endpoints = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let id = ProcId::from_index(i);
                Endpoint {
                    id,
                    sender: NetSender {
                        src: id,
                        transport: Transport::Direct(Arc::clone(&txs)),
                        fanout: n,
                        stats: Arc::clone(&stats),
                        config,
                    },
                    rx,
                }
            })
            .collect();
        (endpoints, stats)
    }

    /// Creates `n` endpoints over a *faulty* wire with the reliability
    /// protocol layered on top (CVM's UDP deployment): same API, plus the
    /// reliability counters.  The [`FaultPlan`](crate::reliable::FaultPlan)
    /// selects everything from plain Bernoulli loss to scripted
    /// partitions and kills.
    pub fn with_loss(
        n: usize,
        config: NetConfig,
        loss: crate::reliable::FaultPlan,
    ) -> (
        Vec<Endpoint>,
        Arc<NetStats>,
        Arc<crate::reliable::ReliabilityStats>,
    ) {
        let stats = NetStats::new();
        let (outbound_txs, deliver_rxs, rstats) = crate::reliable::build_reliable_fabric(n, loss);
        let endpoints = outbound_txs
            .into_iter()
            .zip(deliver_rxs)
            .enumerate()
            .map(|(i, (outbound, rx))| {
                let id = ProcId::from_index(i);
                Endpoint {
                    id,
                    sender: NetSender {
                        src: id,
                        transport: Transport::Reliable(outbound),
                        fanout: n,
                        stats: Arc::clone(&stats),
                        config,
                    },
                    rx,
                }
            })
            .collect();
        (endpoints, stats, rstats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> (Vec<Endpoint>, Arc<NetStats>) {
        Network::new(n, NetConfig::default())
    }

    #[test]
    fn point_to_point_delivery() {
        let (eps, _) = net(2);
        eps[0]
            .sender()
            .send(
                ProcId(1),
                0,
                ByteBreakdown::single(TrafficClass::Data, 3),
                vec![1, 2, 3],
            )
            .unwrap();
        let pkt = eps[1].recv().unwrap();
        assert_eq!(pkt.src, ProcId(0));
        assert_eq!(pkt.dst, ProcId(1));
        assert_eq!(pkt.payload, vec![1, 2, 3]);
    }

    #[test]
    fn links_are_ordered() {
        let (eps, _) = net(2);
        let tx = eps[0].sender();
        for i in 0u8..10 {
            tx.send(
                ProcId(1),
                0,
                ByteBreakdown::single(TrafficClass::Control, 1),
                vec![i],
            )
            .unwrap();
        }
        for i in 0u8..10 {
            assert_eq!(eps[1].recv().unwrap().payload, vec![i]);
        }
    }

    #[test]
    fn self_send_works() {
        let (eps, _) = net(1);
        eps[0]
            .sender()
            .send(ProcId(0), 7, ByteBreakdown::default(), vec![])
            .unwrap();
        let pkt = eps[0].recv().unwrap();
        assert_eq!(pkt.sent_at, 7);
    }

    #[test]
    fn oversized_message_rejected() {
        let (eps, stats) = Network::new(2, NetConfig { max_msg_bytes: 64 });
        let err = eps[0]
            .sender()
            .send(
                ProcId(1),
                0,
                ByteBreakdown::single(TrafficClass::Data, 100),
                vec![0; 100],
            )
            .unwrap_err();
        assert!(matches!(err, NetError::MsgTooLarge { size: 128, max: 64 }));
        // Rejected messages are not accounted.
        assert_eq!(stats.snapshot().msgs, 0);
    }

    #[test]
    fn stats_include_header_bytes() {
        let (eps, stats) = net(2);
        eps[0]
            .sender()
            .send(
                ProcId(1),
                0,
                ByteBreakdown::single(TrafficClass::Sync, 10),
                vec![0; 10],
            )
            .unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.msgs, 1);
        assert_eq!(snap.class_bytes(TrafficClass::Sync), 10);
        assert_eq!(snap.class_bytes(TrafficClass::Control), HEADER_BYTES);
    }

    #[test]
    #[should_panic(expected = "byte breakdown")]
    fn mismatched_breakdown_panics() {
        let (eps, _) = net(2);
        let _ = eps[0].sender().send(
            ProcId(1),
            0,
            ByteBreakdown::single(TrafficClass::Data, 5),
            vec![1, 2],
        );
    }

    #[test]
    fn try_recv_empty_then_ready() {
        let (eps, _) = net(2);
        assert_eq!(eps[1].try_recv().unwrap_err(), NetError::Empty);
        eps[0]
            .sender()
            .send(ProcId(1), 0, ByteBreakdown::default(), vec![])
            .unwrap();
        assert!(eps[1].try_recv().is_ok());
    }

    #[test]
    fn with_src_rebinds() {
        let (eps, _) = net(3);
        let tx = eps[0].sender().with_src(ProcId(2));
        tx.send(ProcId(1), 0, ByteBreakdown::default(), vec![])
            .unwrap();
        assert_eq!(eps[1].recv().unwrap().src, ProcId(2));
        assert_eq!(tx.fanout(), 3);
    }
}
