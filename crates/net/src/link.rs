//! Metered in-process links: the bounded-queue primitive behind every
//! transport channel.
//!
//! The simulated cluster's channels used to be plain unbounded crossbeam
//! channels, which meant a slow or partitioned consumer let its producers
//! queue without limit — the exact failure mode the paper's §4 GC
//! discipline exists to prevent for detection metadata.  [`metered_link`]
//! wraps a channel with a shared depth gauge and a high-water mark, so
//! every queue in the transport is *observable*: the resource report can
//! state the deepest any link ever got, and tests can assert boundedness
//! instead of hoping for it.
//!
//! Backpressure itself is enforced one layer up, by the reliability
//! engine's credit window (see [`crate::reliable`]): the window keeps the
//! number of in-flight datagrams per link at or below the configured
//! capacity, so these queues stay shallow by protocol rather than by
//! blocking sends (the vendored channel stub cannot block).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender, TryRecvError};

/// Creates a metered link whose high-water mark is folded into
/// `high_water` (shared across all links of one fabric: the mark records
/// the deepest *any* of them got).
pub(crate) fn metered_link<T>(high_water: Arc<AtomicU64>) -> (LinkTx<T>, LinkRx<T>) {
    let (tx, rx) = channel::unbounded();
    let depth = Arc::new(AtomicU64::new(0));
    (
        LinkTx {
            tx,
            depth: Arc::clone(&depth),
            high_water,
        },
        LinkRx { rx, depth },
    )
}

/// Sending half of a metered link.
pub(crate) struct LinkTx<T> {
    tx: Sender<T>,
    depth: Arc<AtomicU64>,
    high_water: Arc<AtomicU64>,
}

// Manual impl: `#[derive(Clone)]` would demand `T: Clone`.
impl<T> Clone for LinkTx<T> {
    fn clone(&self) -> Self {
        LinkTx {
            tx: self.tx.clone(),
            depth: Arc::clone(&self.depth),
            high_water: Arc::clone(&self.high_water),
        }
    }
}

impl<T> LinkTx<T> {
    /// Sends, accounting the queue depth; on a closed link the depth
    /// charge is rolled back before the error is reported.
    pub(crate) fn send(&self, value: T) -> Result<(), channel::SendError<T>> {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(depth, Ordering::Relaxed);
        match self.tx.send(value) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }
}

/// Receiving half of a metered link.
pub(crate) struct LinkRx<T> {
    rx: Receiver<T>,
    depth: Arc<AtomicU64>,
}

impl<T> LinkRx<T> {
    fn took(&self) {
        // Saturating: a parked replacement receiver shares no history.
        let _ = self
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1));
    }

    /// Blocking receive.
    pub(crate) fn recv(&self) -> Result<T, channel::RecvError> {
        let v = self.rx.recv()?;
        self.took();
        Ok(v)
    }

    /// Receive with a timeout (std-mpsc error type, matching the channel
    /// stub's implementation).
    pub(crate) fn recv_timeout(&self, d: Duration) -> Result<T, std::sync::mpsc::RecvTimeoutError> {
        let v = self.rx.recv_timeout(d)?;
        self.took();
        Ok(v)
    }

    /// Non-blocking receive; the error type lets a `LinkRx` stand in for a
    /// raw receiver inside `select!`.
    pub(crate) fn try_recv(&self) -> Result<T, TryRecvError> {
        let v = self.rx.try_recv()?;
        self.took();
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_and_high_water_track_queueing() {
        let hw = Arc::new(AtomicU64::new(0));
        let (tx, rx) = metered_link::<u32>(Arc::clone(&hw));
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(hw.load(Ordering::Relaxed), 5);
        for i in 0..5 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        // Draining does not lower the high-water mark.
        assert_eq!(hw.load(Ordering::Relaxed), 5);
        assert_eq!(rx.depth.load(Ordering::Relaxed), 0);
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 9);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        assert!(rx.recv_timeout(Duration::from_millis(1)).is_err());
    }

    #[test]
    fn shared_mark_records_deepest_link() {
        let hw = Arc::new(AtomicU64::new(0));
        let (a_tx, _a_rx) = metered_link::<u8>(Arc::clone(&hw));
        let (b_tx, _b_rx) = metered_link::<u8>(Arc::clone(&hw));
        a_tx.send(1).unwrap();
        for i in 0..3 {
            b_tx.send(i).unwrap();
        }
        assert_eq!(hw.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn closed_link_rolls_back_depth() {
        let hw = Arc::new(AtomicU64::new(0));
        let (tx, rx) = metered_link::<u8>(Arc::clone(&hw));
        drop(rx);
        // Note: depth on a dead link is moot, but it must not wedge high.
        assert!(tx.send(1).is_err());
        assert_eq!(tx.depth.load(Ordering::Relaxed), 0);
    }
}
