//! A small explicit wire codec.
//!
//! Hand-rolled rather than pulled from a serialization crate so that the
//! encoded size of every protocol structure is exact and auditable: the
//! paper's bandwidth-overhead metric is defined in terms of bytes added to
//! synchronization messages by read notices, and we reproduce it from real
//! encoded sizes.
//!
//! All integers are little-endian and fixed-width.  Collections are
//! prefixed with a `u32` count.

use std::fmt;

/// Error produced when decoding malformed or truncated bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes remained than the decoder needed.
    Truncated {
        /// Bytes the decoder asked for.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// A tag or discriminant byte had no matching variant.
    BadTag {
        /// Name of the type being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// Trailing bytes remained after a complete decode.
    Trailing(usize),
    /// A declared length was implausibly large.
    BadLength(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated message: needed {needed} bytes, had {remaining}"
                )
            }
            WireError::BadTag { what, tag } => write!(f, "bad tag {tag} decoding {what}"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after decode"),
            WireError::BadLength(n) => write!(f, "implausible length {n}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Decoding cursor over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Finishes decoding, failing if bytes remain.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Trailing`] if any bytes were not consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing(self.remaining()))
        }
    }
}

/// Types that can be encoded to and decoded from the wire format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated or malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encodes `self` into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decodes a value from a complete buffer, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated, malformed, or oversized input.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// Exact encoded size in bytes.
    fn wire_size(&self) -> u64 {
        // Default implementation encodes; override for hot paths if needed.
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len() as u64
    }
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let n = core::mem::size_of::<$t>();
                let b = r.take(n)?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("sized take")))
            }
            fn wire_size(&self) -> u64 {
                core::mem::size_of::<$t>() as u64
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i32, i64);

impl Wire for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
    fn wire_size(&self) -> u64 {
        8
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }
    fn wire_size(&self) -> u64 {
        1
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = u32::decode(r)?;
        // A count can never exceed the remaining byte count (items are at
        // least one byte); reject early to avoid huge preallocations.
        if n as usize > r.remaining() {
            return Err(WireError::BadLength(u64::from(n)));
        }
        let mut v = Vec::with_capacity(n as usize);
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
    fn wire_size(&self) -> u64 {
        4 + self.iter().map(Wire::wire_size).sum::<u64>()
    }
}

impl<T: Wire> Wire for std::sync::Arc<T> {
    // Transparent: an `Arc` on the wire is just its payload.  Protocol
    // structures fanned out to many receivers (barrier releases, lock
    // grants) share one allocation in memory and encode per receiver
    // without deep-cloning.
    fn encode(&self, buf: &mut Vec<u8>) {
        T::encode(self, buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(std::sync::Arc::new(T::decode(r)?))
    }
    fn wire_size(&self) -> u64 {
        T::wire_size(self)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
    fn wire_size(&self) -> u64 {
        1 + self.as_ref().map_or(0, Wire::wire_size)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
    fn wire_size(&self) -> u64 {
        self.0.wire_size() + self.1.wire_size()
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = u32::decode(r)? as usize;
        let b = r.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::BadTag {
            what: "String(utf8)",
            tag: 0,
        })
    }
    fn wire_size(&self) -> u64 {
        4 + self.len() as u64
    }
}

// Wire implementations for the page-substrate vocabulary, kept here so the
// page crate stays free of serialization concerns.
use cvm_page::{Bitmap, Diff, GAddr, PageBitmaps, PageId};

impl Wire for PageId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PageId(u32::decode(r)?))
    }
    fn wire_size(&self) -> u64 {
        4
    }
}

impl Wire for GAddr {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(GAddr(u64::decode(r)?))
    }
    fn wire_size(&self) -> u64 {
        8
    }
}

impl Wire for Bitmap {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for w in self.raw() {
            w.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let nbits = u32::decode(r)? as usize;
        let nwords = nbits.div_ceil(64);
        if nwords * 8 > r.remaining() {
            return Err(WireError::BadLength(nbits as u64));
        }
        let mut raw = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            raw.push(u64::decode(r)?);
        }
        Ok(Bitmap::from_raw(nbits, raw))
    }
    fn wire_size(&self) -> u64 {
        4 + self.wire_bytes()
    }
}

impl Wire for PageBitmaps {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.read.encode(buf);
        self.write.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PageBitmaps {
            read: Bitmap::decode(r)?,
            write: Bitmap::decode(r)?,
        })
    }
    fn wire_size(&self) -> u64 {
        self.read.wire_size() + self.write.wire_size()
    }
}

impl Wire for Diff {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.page.encode(buf);
        self.entries.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Diff {
            page: PageId::decode(r)?,
            entries: Vec::<(u32, u64)>::decode(r)?,
        })
    }
    fn wire_size(&self) -> u64 {
        self.page.wire_size() + 4 + self.entries.len() as u64 * 12
    }
}

// Wire implementations for the vclock vocabulary types, kept here so the
// vclock crate stays dependency-free.
use cvm_vclock::{IntervalId, IntervalStamp, ProcId, VClock};

impl Wire for ProcId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ProcId(u16::decode(r)?))
    }
    fn wire_size(&self) -> u64 {
        2
    }
}

impl Wire for VClock {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.entries().to_vec().encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(VClock::from(Vec::<u32>::decode(r)?))
    }
    fn wire_size(&self) -> u64 {
        4 + self.len() as u64 * 4
    }
}

impl Wire for IntervalId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.proc.encode(buf);
        self.index.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(IntervalId {
            proc: ProcId::decode(r)?,
            index: u32::decode(r)?,
        })
    }
    fn wire_size(&self) -> u64 {
        6
    }
}

impl Wire for IntervalStamp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.vc.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let id = IntervalId::decode(r)?;
        let vc = VClock::decode(r)?;
        Ok(IntervalStamp::new(id, vc))
    }
    fn wire_size(&self) -> u64 {
        self.id.wire_size() + self.vc.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len() as u64, v.wire_size(), "wire_size mismatch");
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(0xabu8);
        roundtrip(0x1234u16);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(-1i32);
        roundtrip(true);
        roundtrip(false);
        roundtrip(3.25f64);
        roundtrip(f64::NEG_INFINITY);
    }

    #[test]
    fn collection_roundtrips() {
        roundtrip(Vec::<u32>::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Some(7u32));
        roundtrip(Option::<u32>::None);
        roundtrip((5u8, vec![1u16, 2]));
        roundtrip("hello".to_string());
        roundtrip(String::new());
    }

    #[test]
    fn arc_is_wire_transparent() {
        use std::sync::Arc;
        roundtrip(Arc::new(vec![1u64, 2, 3]));
        roundtrip(vec![Arc::new(7u32), Arc::new(8)]);
        // An Arc'd value encodes identically to the bare value.
        let v = vec![5u32, 6];
        assert_eq!(Arc::new(v.clone()).to_bytes(), v.to_bytes());
        assert_eq!(Arc::new(v.clone()).wire_size(), v.wire_size());
    }

    #[test]
    fn vclock_vocabulary_roundtrips() {
        roundtrip(ProcId(3));
        roundtrip(VClock::from(vec![1, 2, 3]));
        roundtrip(IntervalId::new(ProcId(1), 9));
        roundtrip(IntervalStamp::new(
            IntervalId::new(ProcId(1), 9),
            VClock::from(vec![4, 9]),
        ));
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = 0xdead_beefu32.to_bytes();
        assert!(matches!(
            u64::from_bytes(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 1u32.to_bytes();
        bytes.push(0);
        assert_eq!(u32::from_bytes(&bytes), Err(WireError::Trailing(1)));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        assert!(matches!(
            bool::from_bytes(&[7]),
            Err(WireError::BadTag { what: "bool", .. })
        ));
    }

    #[test]
    fn hostile_length_rejected() {
        // Declared count of u32::MAX with a 5-byte body must not allocate.
        let mut bytes = u32::MAX.to_bytes();
        bytes.push(1);
        assert!(matches!(
            Vec::<u64>::from_bytes(&bytes),
            Err(WireError::BadLength(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = WireError::Truncated {
            needed: 8,
            remaining: 3,
        };
        assert!(e.to_string().contains("needed 8"));
    }
}
