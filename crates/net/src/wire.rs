//! A small explicit wire codec.
//!
//! Hand-rolled rather than pulled from a serialization crate so that the
//! encoded size of every protocol structure is exact and auditable: the
//! paper's bandwidth-overhead metric is defined in terms of bytes added to
//! synchronization messages by read notices, and we reproduce it from real
//! encoded sizes.
//!
//! All integers are little-endian and fixed-width.  Collections are
//! prefixed with a `u32` count.

use std::fmt;

/// Error produced when decoding malformed or truncated bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes remained than the decoder needed.
    Truncated {
        /// Bytes the decoder asked for.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// A tag or discriminant byte had no matching variant.
    BadTag {
        /// Name of the type being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// Trailing bytes remained after a complete decode.
    Trailing(usize),
    /// A declared length was implausibly large.
    BadLength(u64),
    /// A frame did not open with [`FRAME_MAGIC`].
    BadMagic {
        /// The bytes found where the magic belongs.
        got: u32,
    },
    /// A frame's body did not hash to the checksum it carried.
    Checksum {
        /// Checksum carried by the frame header.
        expected: u32,
        /// Checksum computed over the received body.
        got: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated message: needed {needed} bytes, had {remaining}"
                )
            }
            WireError::BadTag { what, tag } => write!(f, "bad tag {tag} decoding {what}"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after decode"),
            WireError::BadLength(n) => write!(f, "implausible length {n}"),
            WireError::BadMagic { got } => {
                write!(
                    f,
                    "bad frame magic {got:#010x} (expected {FRAME_MAGIC:#010x})"
                )
            }
            WireError::Checksum { expected, got } => {
                write!(f, "frame checksum mismatch: header says {expected:#010x}, body hashes to {got:#010x}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Decoding cursor over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Takes exactly `N` bytes as a fixed-size array.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than `N` bytes remain.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    /// Validates a declared element count against the unread bytes *before*
    /// anything is allocated: `count` elements of at least `min_elem_bytes`
    /// each must fit in what remains.  Every length-prefixed decoder runs
    /// its prefix through this, so a hostile (or bit-flipped) length can
    /// cost at most the real frame size, never an attacker-chosen
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadLength`] if the declared count cannot fit.
    pub fn check_count(&self, count: u64, min_elem_bytes: u64) -> Result<usize, WireError> {
        let need = count
            .checked_mul(min_elem_bytes.max(1))
            .ok_or(WireError::BadLength(count))?;
        if need > self.remaining() as u64 {
            return Err(WireError::BadLength(count));
        }
        Ok(count as usize)
    }

    /// Finishes decoding, failing if bytes remain.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Trailing`] if any bytes were not consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing(self.remaining()))
        }
    }
}

/// Types that can be encoded to and decoded from the wire format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated or malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encodes `self` into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decodes a value from a complete buffer, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated, malformed, or oversized input.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// Exact encoded size in bytes.
    fn wire_size(&self) -> u64 {
        // Default implementation encodes; override for hot paths if needed.
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len() as u64
    }

    /// Lower bound on the encoded size of *any* value of this type, used
    /// by [`Reader::check_count`] to reject hostile length prefixes before
    /// allocating.  The default (1 byte) is always sound; fixed-size types
    /// override it with their exact size to tighten the bound.
    fn min_wire_size() -> u64 {
        1
    }
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(<$t>::from_le_bytes(r.take_array()?))
            }
            fn wire_size(&self) -> u64 {
                core::mem::size_of::<$t>() as u64
            }
            fn min_wire_size() -> u64 {
                core::mem::size_of::<$t>() as u64
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i32, i64);

impl Wire for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
    fn wire_size(&self) -> u64 {
        8
    }
    fn min_wire_size() -> u64 {
        8
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }
    fn wire_size(&self) -> u64 {
        1
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        // A count can never need more bytes than remain in the frame;
        // reject early (against the element type's minimum encoded size)
        // to bound preallocation by the real input length.
        let declared = u32::decode(r)?;
        let n = r.check_count(u64::from(declared), T::min_wire_size())?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
    fn wire_size(&self) -> u64 {
        4 + self.iter().map(Wire::wire_size).sum::<u64>()
    }
    fn min_wire_size() -> u64 {
        4
    }
}

impl<T: Wire> Wire for std::sync::Arc<T> {
    // Transparent: an `Arc` on the wire is just its payload.  Protocol
    // structures fanned out to many receivers (barrier releases, lock
    // grants) share one allocation in memory and encode per receiver
    // without deep-cloning.
    fn encode(&self, buf: &mut Vec<u8>) {
        T::encode(self, buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(std::sync::Arc::new(T::decode(r)?))
    }
    fn wire_size(&self) -> u64 {
        T::wire_size(self)
    }
    fn min_wire_size() -> u64 {
        T::min_wire_size()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
    fn wire_size(&self) -> u64 {
        1 + self.as_ref().map_or(0, Wire::wire_size)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
    fn wire_size(&self) -> u64 {
        self.0.wire_size() + self.1.wire_size()
    }
    fn min_wire_size() -> u64 {
        A::min_wire_size() + B::min_wire_size()
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = u32::decode(r)? as usize;
        let b = r.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::BadTag {
            what: "String(utf8)",
            tag: 0,
        })
    }
    fn wire_size(&self) -> u64 {
        4 + self.len() as u64
    }
    fn min_wire_size() -> u64 {
        4
    }
}

/// Magic constant opening every wire frame ("CVMF" in ASCII).
pub const FRAME_MAGIC: u32 = 0x464D_5643;

/// Bytes prepended to each frame body: magic + body length + CRC-32C.
pub const FRAME_HEADER_BYTES: usize = 12;

/// Reflected CRC-32C (Castagnoli) polynomial, the checksum family used by
/// SCTP and iSCSI for exactly this job: it guarantees detection of every
/// error of up to 3 flipped bits at any datagram length we can send
/// (Hamming distance 4 to 2^31 bits), and of any single error burst up to
/// 32 bits.
const CRC32C_POLY: u32 = 0x82F6_3B78;

const fn crc32c_build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC32C_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32C_TABLE: [u32; 256] = crc32c_build_table();

/// CRC-32C (Castagnoli) checksum of `bytes`.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Wraps an encoded datagram body in an integrity frame:
/// `magic | body length | crc32c(body) | body`.
pub fn encode_frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + body.len());
    FRAME_MAGIC.encode(&mut out);
    (body.len() as u32).encode(&mut out);
    crc32c(body).encode(&mut out);
    out.extend_from_slice(body);
    out
}

/// Verifies a frame's magic, length, and checksum, returning the body.
///
/// Every corruption is caught by one of the checks: a flip in the magic
/// fails the magic test, a flip in the length field leaves the body short
/// ([`WireError::Truncated`]) or long ([`WireError::Trailing`]), and a
/// flip in the body or the checksum field fails the CRC.
///
/// # Errors
///
/// [`WireError::BadMagic`], [`WireError::Truncated`],
/// [`WireError::Trailing`], or [`WireError::Checksum`] as above.
pub fn decode_frame(frame: &[u8]) -> Result<&[u8], WireError> {
    let mut r = Reader::new(frame);
    let magic = u32::decode(&mut r)?;
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    let len = u32::decode(&mut r)? as usize;
    let expected = u32::decode(&mut r)?;
    let body = r.take(len)?;
    r.finish()?;
    let got = crc32c(body);
    if got != expected {
        return Err(WireError::Checksum { expected, got });
    }
    Ok(body)
}

// Wire implementations for the page-substrate vocabulary, kept here so the
// page crate stays free of serialization concerns.
use cvm_page::{Bitmap, Diff, GAddr, PageBitmaps, PageId};

impl Wire for PageId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PageId(u32::decode(r)?))
    }
    fn wire_size(&self) -> u64 {
        4
    }
    fn min_wire_size() -> u64 {
        4
    }
}

impl Wire for GAddr {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(GAddr(u64::decode(r)?))
    }
    fn wire_size(&self) -> u64 {
        8
    }
    fn min_wire_size() -> u64 {
        8
    }
}

impl Wire for Bitmap {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for w in self.raw() {
            w.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let nbits = u32::decode(r)? as usize;
        let nwords = (nbits as u64).div_ceil(64);
        let nwords = r.check_count(nwords, 8)?;
        // The word count is known arithmetically from the bit-length
        // prefix, so the whole word region is taken with one bounds check
        // and bulk-converted — no per-word cursor arithmetic on the hot
        // bitmap-reply path.
        let words = r.take(nwords * 8)?;
        let raw: Vec<u64> = words
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect();
        Ok(Bitmap::from_raw(nbits, raw))
    }
    fn wire_size(&self) -> u64 {
        4 + self.wire_bytes()
    }
    fn min_wire_size() -> u64 {
        4
    }
}

impl Wire for PageBitmaps {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.read.encode(buf);
        self.write.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PageBitmaps {
            read: Bitmap::decode(r)?,
            write: Bitmap::decode(r)?,
        })
    }
    fn wire_size(&self) -> u64 {
        self.read.wire_size() + self.write.wire_size()
    }
    fn min_wire_size() -> u64 {
        8
    }
}

impl Wire for Diff {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.page.encode(buf);
        self.entries.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Diff {
            page: PageId::decode(r)?,
            entries: Vec::<(u32, u64)>::decode(r)?,
        })
    }
    fn wire_size(&self) -> u64 {
        self.page.wire_size() + 4 + self.entries.len() as u64 * 12
    }
    fn min_wire_size() -> u64 {
        8
    }
}

// Wire implementations for the vclock vocabulary types, kept here so the
// vclock crate stays dependency-free.
use cvm_vclock::{IntervalId, IntervalStamp, ProcId, VClock};

impl Wire for ProcId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ProcId(u16::decode(r)?))
    }
    fn wire_size(&self) -> u64 {
        2
    }
    fn min_wire_size() -> u64 {
        2
    }
}

impl Wire for VClock {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.entries().to_vec().encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(VClock::from(Vec::<u32>::decode(r)?))
    }
    fn wire_size(&self) -> u64 {
        4 + self.len() as u64 * 4
    }
    fn min_wire_size() -> u64 {
        4
    }
}

impl Wire for IntervalId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.proc.encode(buf);
        self.index.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(IntervalId {
            proc: ProcId::decode(r)?,
            index: u32::decode(r)?,
        })
    }
    fn wire_size(&self) -> u64 {
        6
    }
    fn min_wire_size() -> u64 {
        6
    }
}

impl Wire for IntervalStamp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.vc.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let id = IntervalId::decode(r)?;
        let vc = VClock::decode(r)?;
        // `IntervalStamp::new` asserts the stamp's own-entry invariant;
        // on wire input that must be a structured error, not a panic.
        if id.proc.index() >= vc.len() || vc.get(id.proc) != id.index {
            return Err(WireError::BadTag {
                what: "IntervalStamp(own entry)",
                tag: 0,
            });
        }
        Ok(IntervalStamp::new(id, vc))
    }
    fn wire_size(&self) -> u64 {
        self.id.wire_size() + self.vc.wire_size()
    }
    fn min_wire_size() -> u64 {
        10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len() as u64, v.wire_size(), "wire_size mismatch");
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(0xabu8);
        roundtrip(0x1234u16);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(-1i32);
        roundtrip(true);
        roundtrip(false);
        roundtrip(3.25f64);
        roundtrip(f64::NEG_INFINITY);
    }

    #[test]
    fn collection_roundtrips() {
        roundtrip(Vec::<u32>::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Some(7u32));
        roundtrip(Option::<u32>::None);
        roundtrip((5u8, vec![1u16, 2]));
        roundtrip("hello".to_string());
        roundtrip(String::new());
    }

    #[test]
    fn arc_is_wire_transparent() {
        use std::sync::Arc;
        roundtrip(Arc::new(vec![1u64, 2, 3]));
        roundtrip(vec![Arc::new(7u32), Arc::new(8)]);
        // An Arc'd value encodes identically to the bare value.
        let v = vec![5u32, 6];
        assert_eq!(Arc::new(v.clone()).to_bytes(), v.to_bytes());
        assert_eq!(Arc::new(v.clone()).wire_size(), v.wire_size());
    }

    #[test]
    fn vclock_vocabulary_roundtrips() {
        roundtrip(ProcId(3));
        roundtrip(VClock::from(vec![1, 2, 3]));
        roundtrip(IntervalId::new(ProcId(1), 9));
        roundtrip(IntervalStamp::new(
            IntervalId::new(ProcId(1), 9),
            VClock::from(vec![4, 9]),
        ));
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = 0xdead_beefu32.to_bytes();
        assert!(matches!(
            u64::from_bytes(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 1u32.to_bytes();
        bytes.push(0);
        assert_eq!(u32::from_bytes(&bytes), Err(WireError::Trailing(1)));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        assert!(matches!(
            bool::from_bytes(&[7]),
            Err(WireError::BadTag { what: "bool", .. })
        ));
    }

    #[test]
    fn hostile_length_rejected() {
        // Declared count of u32::MAX with a 5-byte body must not allocate.
        let mut bytes = u32::MAX.to_bytes();
        bytes.push(1);
        assert!(matches!(
            Vec::<u64>::from_bytes(&bytes),
            Err(WireError::BadLength(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = WireError::Truncated {
            needed: 8,
            remaining: 3,
        };
        assert!(e.to_string().contains("needed 8"));
        let e = WireError::Checksum {
            expected: 1,
            got: 2,
        };
        assert!(e.to_string().contains("checksum"));
        assert!(WireError::BadMagic { got: 0 }.to_string().contains("magic"));
    }

    #[test]
    fn crc32c_known_vector() {
        // The RFC 3720 check value for "123456789".
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_ne!(crc32c(b"a"), crc32c(b"b"));
    }

    #[test]
    fn frame_roundtrips() {
        for body in [&b""[..], b"x", b"hello frame", &[0u8; 300]] {
            let frame = encode_frame(body);
            assert_eq!(frame.len(), FRAME_HEADER_BYTES + body.len());
            assert_eq!(decode_frame(&frame).expect("own frame"), body);
        }
    }

    #[test]
    fn frame_rejects_every_single_bit_flip() {
        let frame = encode_frame(b"some datagram body");
        for bit in 0..frame.len() * 8 {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_frame(&bad).is_err(),
                "bit {bit} flipped yet the frame decoded"
            );
        }
    }

    #[test]
    fn frame_rejects_truncation_and_garbage_tail() {
        let frame = encode_frame(b"body");
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).is_err(), "cut at {cut}");
        }
        let mut long = frame.clone();
        long.push(0xAB);
        assert_eq!(decode_frame(&long), Err(WireError::Trailing(1)));
        let mut wrong_magic = frame;
        wrong_magic[0] ^= 0xFF;
        assert!(matches!(
            decode_frame(&wrong_magic),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn check_count_bounds_allocation() {
        let bytes = [0u8; 16];
        let r = Reader::new(&bytes);
        assert_eq!(r.check_count(2, 8), Ok(2));
        assert_eq!(r.check_count(3, 8), Err(WireError::BadLength(3)));
        // Zero-size elements still count at least one byte each.
        assert_eq!(r.check_count(17, 0), Err(WireError::BadLength(17)));
        // Overflowing count * size must not wrap around to "fits".
        assert_eq!(
            r.check_count(u64::MAX, 8),
            Err(WireError::BadLength(u64::MAX))
        );
    }

    #[test]
    fn hostile_sized_vec_rejected_via_min_wire_size() {
        // 8 declared u64s but only 9 body bytes: the old 1-byte-per-item
        // bound would have allocated; the element-size-aware bound rejects.
        let mut bytes = 8u32.to_bytes();
        bytes.extend_from_slice(&[0; 9]);
        assert!(matches!(
            Vec::<u64>::from_bytes(&bytes),
            Err(WireError::BadLength(8))
        ));
    }

    #[test]
    fn forged_interval_stamp_errors_instead_of_panicking() {
        // Stamp whose clock disagrees with its own index.
        let mut bytes = Vec::new();
        IntervalId::new(ProcId(0), 9).encode(&mut bytes);
        VClock::from(vec![3, 1]).encode(&mut bytes);
        assert!(IntervalStamp::from_bytes(&bytes).is_err());
        // Stamp whose proc is outside its own clock.
        let mut bytes = Vec::new();
        IntervalId::new(ProcId(7), 1).encode(&mut bytes);
        VClock::from(vec![3, 1]).encode(&mut bytes);
        assert!(IntervalStamp::from_bytes(&bytes).is_err());
    }
}
