//! Bounded, deduplicating result store.
//!
//! Every completed seed run merges its race reports here, keyed by the
//! stable [`RaceReport::fingerprint`](cvm_race::RaceReport::fingerprint):
//! across a job's whole seed range each distinct race is stored once, with
//! a hit count, a representative rendered report, and the first seed that
//! produced it.  Retention is bounded in *bytes* (the PR 5 budget
//! philosophy applied to results): when the store crosses its budget, the
//! oldest terminal jobs' entries are evicted whole — never a partial job —
//! and the eviction is counted, not silent.

use std::collections::{BTreeMap, VecDeque};

use cvm_dsm::RunReport;
use parking_lot::Mutex;

use crate::job::JobId;

/// One deduplicated race across a job's seed range.
#[derive(Clone, Debug)]
pub struct DedupedRace {
    /// Stable fingerprint (dedup key).
    pub fingerprint: u64,
    /// Representative rendered report (first occurrence, symbolized).
    pub rendered: String,
    /// Reports folded into this entry, across all the job's seeds.
    pub hits: u64,
    /// First seed whose run produced it.
    pub first_seed: u64,
}

/// A job's deduplicated result set.
#[derive(Clone, Debug, Default)]
pub struct JobRaces {
    /// Distinct races, ordered by fingerprint.
    pub races: Vec<DedupedRace>,
    /// Total (pre-dedup) reports merged across the job's seeds.
    pub reports_merged: u64,
}

#[derive(Debug, Default)]
struct JobEntry {
    by_print: BTreeMap<u64, DedupedRace>,
    reports_merged: u64,
    bytes: u64,
    sealed: bool,
}

impl JobEntry {
    fn merge(&mut self, seed: u64, report: &RunReport) {
        for race in report.races.reports() {
            self.reports_merged += 1;
            let print = race.fingerprint();
            if let Some(entry) = self.by_print.get_mut(&print) {
                entry.hits += 1;
            } else {
                let rendered = race.render(&report.segments);
                // Entry overhead: fingerprint + counters + map node, called
                // 48 bytes, plus the rendered text.
                self.bytes += 48 + rendered.len() as u64;
                self.by_print.insert(
                    print,
                    DedupedRace {
                        fingerprint: print,
                        rendered,
                        hits: 1,
                        first_seed: seed,
                    },
                );
            }
        }
    }
}

/// Store-wide counters, surfaced through daemon stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Bytes currently retained.
    pub bytes_live: u64,
    /// Jobs whose results were evicted by the retention bound.
    pub jobs_evicted: u64,
    /// Distinct races currently retained, across all jobs.
    pub distinct_races: u64,
}

/// The bounded store.  All methods take `&self`; a single mutex guards the
/// interior (result merging is far off any hot path).
#[derive(Debug)]
pub struct ResultStore {
    inner: Mutex<StoreInner>,
    budget_bytes: u64,
}

#[derive(Debug, Default)]
struct StoreInner {
    jobs: BTreeMap<JobId, JobEntry>,
    /// Jobs in seal order: the eviction queue (oldest sealed first).
    sealed_order: VecDeque<JobId>,
    jobs_evicted: u64,
}

impl ResultStore {
    /// A store retaining at most `budget_bytes` of deduplicated results.
    pub fn new(budget_bytes: u64) -> Self {
        ResultStore {
            inner: Mutex::new(StoreInner::default()),
            budget_bytes,
        }
    }

    /// Merges one seed run's reports into `job`'s entry.  Returns the
    /// jobs the byte budget evicted to make room (so a durable daemon can
    /// journal the evictions).
    pub fn merge(&self, job: JobId, seed: u64, report: &RunReport) -> Vec<JobId> {
        let mut inner = self.inner.lock();
        inner.jobs.entry(job).or_default().merge(seed, report);
        self.enforce_budget(&mut inner)
    }

    /// Marks `job` complete: its entry becomes evictable.  In-flight jobs
    /// are never evicted, so a running job's dedup state cannot vanish
    /// under it.  Returns the jobs the byte budget evicted.
    pub fn seal(&self, job: JobId) -> Vec<JobId> {
        let mut inner = self.inner.lock();
        let known = match inner.jobs.get_mut(&job) {
            Some(entry) if !entry.sealed => {
                entry.sealed = true;
                true
            }
            Some(_) => false,
            // A job with zero reports still seals an (empty) entry so
            // `races` distinguishes "no races" from "evicted/unknown".
            None => {
                inner.jobs.insert(
                    job,
                    JobEntry {
                        sealed: true,
                        ..JobEntry::default()
                    },
                );
                true
            }
        };
        if known {
            inner.sealed_order.push_back(job);
        }
        self.enforce_budget(&mut inner)
    }

    /// Rebuilds one job's entry from journaled state (recovery path): the
    /// deduplicated races, pre-dedup merge count, and seal flag are
    /// restored verbatim; bytes are re-derived from the rendered text the
    /// same way live merging derives them.  The caller restores the
    /// eviction queue separately through [`restore_meta`](Self::restore_meta)
    /// — sealing here must not re-enqueue in recovered order.
    pub(crate) fn restore_job(
        &self,
        job: JobId,
        races: Vec<DedupedRace>,
        reports_merged: u64,
        sealed: bool,
    ) {
        let mut entry = JobEntry {
            reports_merged,
            sealed,
            ..JobEntry::default()
        };
        for race in races {
            entry.bytes += 48 + race.rendered.len() as u64;
            entry.by_print.insert(race.fingerprint, race);
        }
        self.inner.lock().jobs.insert(job, entry);
    }

    /// Restores the eviction queue (journal seal order) and the historic
    /// eviction count after [`restore_job`](Self::restore_job) calls.
    pub(crate) fn restore_meta(&self, sealed_order: Vec<JobId>, jobs_evicted: u64) {
        let mut inner = self.inner.lock();
        inner.sealed_order = sealed_order.into();
        inner.jobs_evicted = jobs_evicted;
    }

    /// The deduplicated result set of `job`: `None` when the job is
    /// unknown or its results were evicted.
    pub fn races(&self, job: JobId) -> Option<JobRaces> {
        let inner = self.inner.lock();
        inner.jobs.get(&job).map(|entry| JobRaces {
            races: entry.by_print.values().cloned().collect(),
            reports_merged: entry.reports_merged,
        })
    }

    /// Distinct races currently retained for `job` (0 when evicted).
    pub fn distinct_count(&self, job: JobId) -> usize {
        let inner = self.inner.lock();
        inner.jobs.get(&job).map_or(0, |e| e.by_print.len())
    }

    /// Store-wide counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            bytes_live: inner.jobs.values().map(|e| e.bytes).sum(),
            jobs_evicted: inner.jobs_evicted,
            distinct_races: inner.jobs.values().map(|e| e.by_print.len() as u64).sum(),
        }
    }

    fn enforce_budget(&self, inner: &mut StoreInner) -> Vec<JobId> {
        let mut evicted = Vec::new();
        let mut live: u64 = inner.jobs.values().map(|e| e.bytes).sum();
        while live > self.budget_bytes {
            let Some(oldest) = inner.sealed_order.pop_front() else {
                break; // Only in-flight jobs left: nothing evictable.
            };
            if let Some(entry) = inner.jobs.remove(&oldest) {
                live = live.saturating_sub(entry.bytes);
                inner.jobs_evicted += 1;
                evicted.push(oldest);
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvm_dsm::{Cluster, DsmConfig};

    fn racy_report(seed: u64) -> RunReport {
        let mut cfg = DsmConfig::new(2);
        cfg.net_loss = Some(cvm_dsm::FaultPlan::clean(seed));
        Cluster::run(
            cfg,
            |alloc| alloc.alloc("w", 64).unwrap(),
            |h, &w| {
                h.write(w, h.proc() as u64);
                h.barrier();
            },
        )
        .expect("healthy run")
    }

    #[test]
    fn dedups_across_seeds() {
        let store = ResultStore::new(u64::MAX);
        let job = JobId(1);
        let a = racy_report(1);
        let b = racy_report(2);
        store.merge(job, 1, &a);
        store.merge(job, 2, &b);
        store.seal(job);
        let races = store.races(job).expect("sealed job retained");
        // Deterministic workload: both seeds produce the same race set,
        // so dedup folds them.
        assert_eq!(races.races.len(), a.races.distinct_fingerprints().len());
        assert_eq!(races.reports_merged, (a.races.len() + b.races.len()) as u64);
        assert!(races.races.iter().all(|r| r.hits >= 2));
        assert!(races.races.iter().all(|r| r.first_seed == 1));
        assert!(races.races.iter().all(|r| r.rendered.contains("DATA RACE")));
    }

    #[test]
    fn sealed_empty_job_reads_as_no_races() {
        let store = ResultStore::new(u64::MAX);
        store.seal(JobId(9));
        let races = store.races(JobId(9)).expect("sealed job known");
        assert!(races.races.is_empty());
        assert!(store.races(JobId(10)).is_none(), "unknown job is None");
    }

    #[test]
    fn budget_evicts_oldest_sealed_jobs_whole() {
        let report = racy_report(1);
        let store = ResultStore::new(u64::MAX);
        store.merge(JobId(1), 1, &report);
        let one_job_bytes = store.stats().bytes_live;
        assert!(one_job_bytes > 0);

        // Budget fits two jobs but not three.
        let store = ResultStore::new(one_job_bytes * 2);
        for id in 1..=3u64 {
            store.merge(JobId(id), 1, &report);
            store.seal(JobId(id));
        }
        let stats = store.stats();
        assert_eq!(stats.jobs_evicted, 1, "third job must evict the first");
        assert!(store.races(JobId(1)).is_none(), "oldest evicted");
        assert!(store.races(JobId(3)).is_some(), "newest retained");
        assert!(stats.bytes_live <= one_job_bytes * 2);
    }

    #[test]
    fn in_flight_jobs_are_never_evicted() {
        let report = racy_report(1);
        let probe = ResultStore::new(u64::MAX);
        probe.merge(JobId(1), 1, &report);
        let one_job_bytes = probe.stats().bytes_live;

        // Budget below a single job, but the job is not sealed: it must
        // survive (dedup state cannot vanish under a running job).
        let store = ResultStore::new(one_job_bytes / 2);
        store.merge(JobId(1), 1, &report);
        assert!(store.races(JobId(1)).is_some());
        assert_eq!(store.stats().jobs_evicted, 0);
        // Sealing makes it evictable and the budget bites.
        store.seal(JobId(1));
        assert!(store.races(JobId(1)).is_none());
        assert_eq!(store.stats().jobs_evicted, 1);
    }
}
