//! Concurrent session-state map: `Arc<RwLock<BTreeMap<K, Arc<V>>>>`.
//!
//! The daemon's job table follows the StateMap idiom of long-lived agent
//! daemons: readers (status polls, the TCP front end) take the read lock
//! and clone the `Arc` out, so a held job handle stays valid while the
//! writer side inserts, lists, or evicts concurrently.  Lock poisoning is
//! tolerated rather than propagated — a panicked writer must never take
//! the whole daemon's bookkeeping down with it.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// A concurrent ordered map of shared state entries.
#[derive(Debug)]
pub struct StateMap<K, V> {
    inner: Arc<RwLock<BTreeMap<K, Arc<V>>>>,
}

impl<K, V> Clone for StateMap<K, V> {
    fn clone(&self) -> Self {
        StateMap {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<K: Ord + Clone, V> Default for StateMap<K, V> {
    fn default() -> Self {
        StateMap::new()
    }
}

impl<K: Ord + Clone, V> StateMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        StateMap {
            inner: Arc::new(RwLock::new(BTreeMap::new())),
        }
    }

    /// Inserts `value` under `key`, returning the shared handle.
    pub fn insert(&self, key: K, value: V) -> Arc<V> {
        let entry = Arc::new(value);
        let mut guard = self.inner.write().unwrap_or_else(|p| p.into_inner());
        guard.insert(key, Arc::clone(&entry));
        entry
    }

    /// The entry under `key`, if present.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let guard = self.inner.read().unwrap_or_else(|p| p.into_inner());
        guard.get(key).cloned()
    }

    /// Removes and returns the entry under `key`.
    pub fn remove(&self, key: &K) -> Option<Arc<V>> {
        let mut guard = self.inner.write().unwrap_or_else(|p| p.into_inner());
        guard.remove(key)
    }

    /// All keys, in order.
    pub fn keys(&self) -> Vec<K> {
        let guard = self.inner.read().unwrap_or_else(|p| p.into_inner());
        guard.keys().cloned().collect()
    }

    /// All entries, in key order.
    pub fn entries(&self) -> Vec<(K, Arc<V>)> {
        let guard = self.inner.read().unwrap_or_else(|p| p.into_inner());
        guard
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        let guard = self.inner.read().unwrap_or_else(|p| p.into_inner());
        guard.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let map: StateMap<u64, String> = StateMap::new();
        assert!(map.is_empty());
        let held = map.insert(2, "two".into());
        map.insert(1, "one".into());
        assert_eq!(map.len(), 2);
        assert_eq!(map.keys(), vec![1, 2]);
        assert_eq!(map.get(&2).unwrap().as_str(), "two");
        let removed = map.remove(&2).unwrap();
        assert!(map.get(&2).is_none());
        // The handle cloned out before removal stays valid.
        assert_eq!(held.as_str(), "two");
        assert_eq!(removed.as_str(), "two");
    }

    #[test]
    fn clones_share_state() {
        let map: StateMap<u64, u64> = StateMap::new();
        let clone = map.clone();
        map.insert(7, 42);
        assert_eq!(*clone.get(&7).unwrap(), 42);
    }

    #[test]
    fn survives_a_panicked_writer() {
        let map: StateMap<u64, u64> = StateMap::new();
        map.insert(1, 1);
        let m2 = map.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.inner.write().unwrap();
            panic!("poison the lock");
        })
        .join();
        // Poisoned lock is tolerated: the daemon keeps serving.
        map.insert(2, 2);
        assert_eq!(map.len(), 2);
    }
}
