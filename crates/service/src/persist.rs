//! Durable service state: write-ahead journal, snapshot compaction, and
//! crash recovery.
//!
//! The daemon's job table and deduplicated [`ResultStore`](crate::store)
//! live in memory; this module makes them survive a crash.  The design is
//! a classic write-ahead log with a shadow state machine:
//!
//! * **Journal** — every job lifecycle event ([`JournalRecord`]:
//!   `Submitted`, `SeedDone`, `Sealed`, `Cancelled`, `Evicted`) is
//!   appended to `journal.bin` as one CRC-32C frame
//!   ([`cvm_net::wire::encode_frame`]), *before* the in-memory effect the
//!   caller depends on.  Fsync frequency is a policy knob
//!   ([`FsyncPolicy`]): per record, every N records, or never.
//! * **Shadow** — each record is also applied to an in-memory
//!   [`ShadowState`], a compact image of everything recovery needs: specs,
//!   per-seed outcome images (fingerprints and rendered text included, so
//!   completed seeds are never recomputed), seal order, and evictions.
//! * **Snapshot** — every `compact_every` records the shadow is serialized
//!   into `snapshot.bin` behind a versioned header (the
//!   `checkpoint::NodeImage` discipline: magic, version, CRC-framed body),
//!   written tmp-then-rename so a torn snapshot can never shadow a good
//!   one, and the journal is trimmed.  The journal stays bounded.
//! * **Recovery** — [`Persist::open`] loads snapshot-then-journal.  Torn
//!   or corrupt journal tails are *truncated to the last valid frame* and
//!   counted, never panicked on (PR 4's trust-boundary discipline: decode
//!   failures steer to the previous good record).  Replay is idempotent,
//!   which closes the crash window between writing a snapshot and
//!   trimming the journal.
//!
//! Crash windows are exercised deterministically through
//! [`CrashPoint`]: a seeded hook that kills the daemon (or, for
//! in-process tests, wedges the persister) mid-record, post-record but
//! pre-fsync, mid-compaction, or post-snapshot pre-trim.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cvm_dsm::{DsmError, Protocol, RecoveryPolicy, RunReport};
use cvm_net::wire::{
    decode_frame, encode_frame, Reader, Wire, WireError, FRAME_HEADER_BYTES, FRAME_MAGIC,
};
use parking_lot::Mutex;

use crate::job::{JobId, JobSpec, SeedOutcome};
use crate::store::DedupedRace;
use crate::workload::{FaultSpec, KillSpec, PartitionSpec, Workload};

/// Journal file name inside the data directory.
pub const JOURNAL_FILE: &str = "journal.bin";
/// Live snapshot file name inside the data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Temporary snapshot name; only ever renamed onto [`SNAPSHOT_FILE`], and
/// deleted (stale) on open.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Snapshot header magic: `CVMS` little-endian.
const SNAPSHOT_MAGIC: u32 = 0x534D_5643;
/// Snapshot format version.
const SNAPSHOT_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// How often the journal is fsynced.
///
/// The trade-off is the classic WAL one: `Always` bounds loss to zero
/// completed records at a per-record fsync cost; `EveryN` amortizes the
/// fsync over N records and risks losing up to N-1 of them to a power
/// failure (a plain process crash loses nothing — the page cache
/// survives); `Never` leaves flushing entirely to the OS.  Whatever the
/// policy, recovery is correct: a lost suffix only re-runs work, because
/// every record is recomputable from `(spec, seed)` determinism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every appended record.
    Always,
    /// Fsync once every N appended records (N ≥ 1).
    EveryN(u32),
    /// Never fsync; the OS flushes on its own schedule.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, or `every:N`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            _ => {
                let n = s.strip_prefix("every:")?.parse::<u32>().ok()?;
                (n >= 1).then_some(FsyncPolicy::EveryN(n))
            }
        }
    }

    /// Wire/CSV name of the policy.
    pub fn name(self) -> String {
        match self {
            FsyncPolicy::Always => "always".into(),
            FsyncPolicy::EveryN(n) => format!("every:{n}"),
            FsyncPolicy::Never => "never".into(),
        }
    }
}

/// Durability knobs of a daemon.  `data_dir: None` (the default) disables
/// persistence entirely: the daemon behaves exactly as before this module
/// existed.
#[derive(Clone, Debug, Default)]
pub struct PersistConfig {
    /// Directory holding `journal.bin` / `snapshot.bin`.  Created if
    /// missing.  `None` disables persistence.
    pub data_dir: Option<PathBuf>,
    /// Journal fsync policy.
    pub fsync: FsyncPolicy,
    /// Compact (snapshot + trim the journal) every this many records.
    pub compact_every: u64,
    /// Deterministic crash injection, for recovery tests.
    pub crash: Option<CrashSpec>,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::EveryN(8)
    }
}

impl PersistConfig {
    /// Persistence into `dir` with default fsync/compaction policies.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            data_dir: Some(dir.into()),
            compact_every: 256,
            ..PersistConfig::default()
        }
    }

    /// Effective compaction interval (the zero default means 256).
    fn compact_every(&self) -> u64 {
        if self.compact_every == 0 {
            256
        } else {
            self.compact_every
        }
    }
}

// ---------------------------------------------------------------------------
// Crash injection
// ---------------------------------------------------------------------------

/// Named windows in the persistence path where a crash is interesting —
/// each one leaves the on-disk state in a different shape that recovery
/// must handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die after writing only half of a journal frame: a torn tail.
    MidRecord,
    /// Die after the frame is fully written but before any fsync: the
    /// record's durability is at the OS's mercy (either outcome must
    /// recover cleanly).
    PostRecordPreFsync,
    /// Die halfway through writing `snapshot.tmp`: the live snapshot and
    /// journal are untouched; the torn tmp must be discarded on open.
    MidCompaction,
    /// Die after renaming the new snapshot into place but before trimming
    /// the journal: replay of the un-trimmed journal onto the snapshot
    /// must be idempotent.
    PostSnapshotPreTrim,
}

impl CrashPoint {
    /// Every crash point, for test matrices.
    pub const ALL: [CrashPoint; 4] = [
        CrashPoint::MidRecord,
        CrashPoint::PostRecordPreFsync,
        CrashPoint::MidCompaction,
        CrashPoint::PostSnapshotPreTrim,
    ];

    /// Flag-friendly name.
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::MidRecord => "mid-record",
            CrashPoint::PostRecordPreFsync => "post-record-pre-fsync",
            CrashPoint::MidCompaction => "mid-compaction",
            CrashPoint::PostSnapshotPreTrim => "post-snapshot-pre-trim",
        }
    }

    /// Parses a [`name`](CrashPoint::name).
    pub fn parse(s: &str) -> Option<CrashPoint> {
        CrashPoint::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// What "crash" means when a [`CrashPoint`] fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// `std::process::abort()` — the real thing, for bin-level tests.
    Abort,
    /// Go inert: the persister stops writing (leaving the file exactly as
    /// the crash point left it) but the process lives on, so in-process
    /// tests can drop the daemon and reopen the directory.
    Wedge,
}

/// A scripted crash: die at the `at`-th hit of `point` (1-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// Where to die.
    pub point: CrashPoint,
    /// Which occurrence of the point to die at (1-based).
    pub at: u64,
    /// Abort the process or wedge the persister.
    pub mode: CrashMode,
}

impl CrashSpec {
    /// Parses `POINT:N` (e.g. `mid-record:3`) into an [`CrashMode::Abort`]
    /// spec, the shape the daemon binary's `--crash` flag takes.
    pub fn parse(s: &str) -> Option<CrashSpec> {
        let (point, at) = s.rsplit_once(':')?;
        let point = CrashPoint::parse(point)?;
        let at = at.parse::<u64>().ok()?;
        (at >= 1).then_some(CrashSpec {
            point,
            at,
            mode: CrashMode::Abort,
        })
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// Everything recovery needs from one seed's terminal outcome.
///
/// A `Done` image carries the run's race fingerprints *and* rendered text,
/// so a recovered daemon reconstructs the store entry byte-for-byte
/// without re-running the seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OutcomeImage {
    /// The seed completed; the store merge is replayable from the image.
    Done {
        /// Retries the seed consumed.
        retries: u32,
        /// Fingerprint of every (pre-dedup) race report, in report order.
        occurrences: Vec<u64>,
        /// Rendered text per distinct fingerprint of this run.
        rendered: Vec<(u64, String)>,
        /// Recovery telemetry: partitions healed, stale messages fenced,
        /// quorum losses, rejoin restores.
        recovery: [u64; 4],
    },
    /// The seed failed terminally.
    Failed {
        /// Rendered error.
        error: String,
        /// Whether the final failure was transient (budget exhausted).
        transient: bool,
        /// Retries the seed consumed.
        retries: u32,
    },
    /// The seed was cancelled.
    Cancelled,
}

impl OutcomeImage {
    /// Builds the image of a completed run.
    pub(crate) fn from_report(report: &RunReport, retries: u32) -> OutcomeImage {
        let mut occurrences = Vec::new();
        let mut rendered: Vec<(u64, String)> = Vec::new();
        for race in report.races.reports() {
            let print = race.fingerprint();
            occurrences.push(print);
            if !rendered.iter().any(|(p, _)| *p == print) {
                rendered.push((print, race.render(&report.segments)));
            }
        }
        let rec = &report.recovery;
        OutcomeImage::Done {
            retries,
            occurrences,
            rendered,
            recovery: [
                rec.partitions_healed,
                rec.stale_msgs_fenced,
                rec.quorum_losses,
                rec.rejoin_restores,
            ],
        }
    }

    /// The [`SeedOutcome`] this image replays into.
    pub(crate) fn to_outcome(&self) -> SeedOutcome {
        match self {
            OutcomeImage::Done {
                retries,
                occurrences,
                ..
            } => SeedOutcome::Done {
                races: occurrences.len(),
                retries: *retries,
            },
            OutcomeImage::Failed {
                error,
                transient,
                retries,
            } => SeedOutcome::Failed {
                error: error.clone(),
                transient: *transient,
                retries: *retries,
            },
            OutcomeImage::Cancelled => SeedOutcome::Cancelled,
        }
    }

    /// Retries this outcome consumed from the job's budget.
    pub(crate) fn retries(&self) -> u64 {
        match self {
            OutcomeImage::Done { retries, .. } | OutcomeImage::Failed { retries, .. } => {
                u64::from(*retries)
            }
            OutcomeImage::Cancelled => 0,
        }
    }
}

/// One journaled job lifecycle event.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalRecord {
    /// A job was admitted.
    Submitted {
        /// The assigned id.
        job: JobId,
        /// The validated spec.
        spec: JobSpec,
    },
    /// A seed reached its terminal outcome.
    SeedDone {
        /// The job.
        job: JobId,
        /// The seed.
        seed: u64,
        /// The outcome, with enough detail to replay the store merge.
        outcome: OutcomeImage,
    },
    /// The job went terminal and its store entry was sealed.
    Sealed {
        /// The job.
        job: JobId,
    },
    /// Cancellation was requested.
    Cancelled {
        /// The job.
        job: JobId,
    },
    /// The store's byte budget evicted the job's sealed results.
    Evicted {
        /// The job.
        job: JobId,
    },
}

// --- Wire impls -------------------------------------------------------------
//
// All journal/snapshot structures encode through the same hand-rolled
// codec as the DSM's own protocol messages: every length prefix is
// validated against the remaining bytes (`check_count`) before anything
// is allocated, so a corrupt length can cost at most the frame it rode
// in on.

impl Wire for JobId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(JobId(u64::decode(r)?))
    }
}

impl Wire for Workload {
    fn encode(&self, buf: &mut Vec<u8>) {
        let (tag, epochs, dwell): (u8, u64, u64) = match *self {
            Workload::RacyCounter { epochs } => (0, epochs, 0),
            Workload::DisjointGrid { epochs } => (1, epochs, 0),
            Workload::MixedStripes { epochs } => (2, epochs, 0),
            Workload::LockedCounter { epochs } => (3, epochs, 0),
            Workload::SleepyGrid { epochs, dwell_ms } => (4, epochs, dwell_ms),
            Workload::PanickyApp { epochs } => (5, epochs, 0),
        };
        tag.encode(buf);
        epochs.encode(buf);
        dwell.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = u8::decode(r)?;
        let epochs = u64::decode(r)?;
        let dwell_ms = u64::decode(r)?;
        Ok(match tag {
            0 => Workload::RacyCounter { epochs },
            1 => Workload::DisjointGrid { epochs },
            2 => Workload::MixedStripes { epochs },
            3 => Workload::LockedCounter { epochs },
            4 => Workload::SleepyGrid { epochs, dwell_ms },
            5 => Workload::PanickyApp { epochs },
            tag => {
                return Err(WireError::BadTag {
                    what: "Workload",
                    tag,
                })
            }
        })
    }
}

impl Wire for KillSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.node.encode(buf);
        self.at_event.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(KillSpec {
            node: u16::decode(r)?,
            at_event: u64::decode(r)?,
        })
    }
}

impl Wire for PartitionSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.node.encode(buf);
        self.at_datagram.encode(buf);
        self.heal_at.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PartitionSpec {
            node: u16::decode(r)?,
            at_datagram: u64::decode(r)?,
            heal_at: Option::<u64>::decode(r)?,
        })
    }
}

impl Wire for FaultSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.drop_rate.encode(buf);
        self.corrupt_rate.encode(buf);
        self.kill.encode(buf);
        self.partition.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FaultSpec {
            drop_rate: f64::decode(r)?,
            corrupt_rate: f64::decode(r)?,
            kill: Option::<KillSpec>::decode(r)?,
            partition: Option::<PartitionSpec>::decode(r)?,
        })
    }
}

impl Wire for JobSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.workload.encode(buf);
        (self.nprocs as u64).encode(buf);
        let protocol: u8 = match self.protocol {
            Protocol::SingleWriter => 0,
            Protocol::MultiWriter => 1,
        };
        protocol.encode(buf);
        self.pipelined.encode(buf);
        match self.recovery {
            RecoveryPolicy::Abort => {
                0u8.encode(buf);
                0u32.encode(buf);
            }
            RecoveryPolicy::Recover { max_attempts } => {
                1u8.encode(buf);
                max_attempts.encode(buf);
            }
        }
        self.fault.encode(buf);
        self.seed_base.encode(buf);
        self.seed_count.encode(buf);
        (self.run_deadline.as_nanos() as u64).encode(buf);
        self.retry_budget.encode(buf);
        self.flaky_first.encode(buf);
        self.stage_panic_epoch.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let workload = Workload::decode(r)?;
        let nprocs = u64::decode(r)? as usize;
        let protocol = match u8::decode(r)? {
            0 => Protocol::SingleWriter,
            1 => Protocol::MultiWriter,
            tag => {
                return Err(WireError::BadTag {
                    what: "Protocol",
                    tag,
                })
            }
        };
        let pipelined = bool::decode(r)?;
        let recovery_tag = u8::decode(r)?;
        let max_attempts = u32::decode(r)?;
        let recovery = match recovery_tag {
            0 => RecoveryPolicy::Abort,
            1 => RecoveryPolicy::Recover { max_attempts },
            tag => {
                return Err(WireError::BadTag {
                    what: "RecoveryPolicy",
                    tag,
                })
            }
        };
        let fault = FaultSpec::decode(r)?;
        Ok(JobSpec {
            workload,
            nprocs,
            protocol,
            pipelined,
            recovery,
            fault,
            seed_base: u64::decode(r)?,
            seed_count: u32::decode(r)?,
            run_deadline: Duration::from_nanos(u64::decode(r)?),
            retry_budget: u32::decode(r)?,
            flaky_first: u32::decode(r)?,
            stage_panic_epoch: Option::<u64>::decode(r)?,
        })
    }
}

impl Wire for OutcomeImage {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            OutcomeImage::Done {
                retries,
                occurrences,
                rendered,
                recovery,
            } => {
                0u8.encode(buf);
                retries.encode(buf);
                occurrences.encode(buf);
                rendered.encode(buf);
                for v in recovery {
                    v.encode(buf);
                }
            }
            OutcomeImage::Failed {
                error,
                transient,
                retries,
            } => {
                1u8.encode(buf);
                error.encode(buf);
                transient.encode(buf);
                retries.encode(buf);
            }
            OutcomeImage::Cancelled => 2u8.encode(buf),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => {
                let retries = u32::decode(r)?;
                let occurrences = Vec::<u64>::decode(r)?;
                let rendered = Vec::<(u64, String)>::decode(r)?;
                let mut recovery = [0u64; 4];
                for v in &mut recovery {
                    *v = u64::decode(r)?;
                }
                OutcomeImage::Done {
                    retries,
                    occurrences,
                    rendered,
                    recovery,
                }
            }
            1 => OutcomeImage::Failed {
                error: String::decode(r)?,
                transient: bool::decode(r)?,
                retries: u32::decode(r)?,
            },
            2 => OutcomeImage::Cancelled,
            tag => {
                return Err(WireError::BadTag {
                    what: "OutcomeImage",
                    tag,
                })
            }
        })
    }
}

impl Wire for JournalRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            JournalRecord::Submitted { job, spec } => {
                0u8.encode(buf);
                job.encode(buf);
                spec.encode(buf);
            }
            JournalRecord::SeedDone { job, seed, outcome } => {
                1u8.encode(buf);
                job.encode(buf);
                seed.encode(buf);
                outcome.encode(buf);
            }
            JournalRecord::Sealed { job } => {
                2u8.encode(buf);
                job.encode(buf);
            }
            JournalRecord::Cancelled { job } => {
                3u8.encode(buf);
                job.encode(buf);
            }
            JournalRecord::Evicted { job } => {
                4u8.encode(buf);
                job.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => JournalRecord::Submitted {
                job: JobId::decode(r)?,
                spec: JobSpec::decode(r)?,
            },
            1 => JournalRecord::SeedDone {
                job: JobId::decode(r)?,
                seed: u64::decode(r)?,
                outcome: OutcomeImage::decode(r)?,
            },
            2 => JournalRecord::Sealed {
                job: JobId::decode(r)?,
            },
            3 => JournalRecord::Cancelled {
                job: JobId::decode(r)?,
            },
            4 => JournalRecord::Evicted {
                job: JobId::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "JournalRecord",
                    tag,
                })
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Shadow state
// ---------------------------------------------------------------------------

/// One job's recovery image inside the shadow.
#[derive(Clone, Debug, PartialEq)]
pub struct ShadowJob {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Journaled per-seed outcomes.
    pub outcomes: BTreeMap<u64, OutcomeImage>,
    /// Seeds in outcome-arrival (journal) order — store replay and
    /// `first_error` both depend on it.
    pub order: Vec<u64>,
    /// Whether the store entry was sealed.
    pub sealed: bool,
    /// Whether cancellation was requested.
    pub cancelled: bool,
    /// Whether the store's budget evicted the results.
    pub evicted: bool,
}

impl ShadowJob {
    fn new(spec: JobSpec) -> ShadowJob {
        ShadowJob {
            spec,
            outcomes: BTreeMap::new(),
            order: Vec::new(),
            sealed: false,
            cancelled: false,
            evicted: false,
        }
    }

    /// Whether every seed has a journaled outcome.
    pub fn is_terminal(&self) -> bool {
        self.outcomes.len() as u32 >= self.spec.seed_count
    }

    /// Whether the live store had an entry for this job (any completed
    /// seed creates one, and sealing creates one even for empty jobs).
    pub fn has_store_entry(&self) -> bool {
        self.sealed
            || self
                .outcomes
                .values()
                .any(|o| matches!(o, OutcomeImage::Done { .. }))
    }

    /// Replays the store merge sequence of this job's journaled outcomes:
    /// deduplicated races (in fingerprint order) plus the pre-dedup merge
    /// count, exactly as the live [`ResultStore`](crate::store::ResultStore)
    /// accumulated them.
    pub fn replay_races(&self) -> (Vec<DedupedRace>, u64) {
        let mut by_print: BTreeMap<u64, DedupedRace> = BTreeMap::new();
        let mut merged = 0u64;
        for seed in &self.order {
            let Some(OutcomeImage::Done {
                occurrences,
                rendered,
                ..
            }) = self.outcomes.get(seed)
            else {
                continue;
            };
            for print in occurrences {
                merged += 1;
                if let Some(entry) = by_print.get_mut(print) {
                    entry.hits += 1;
                } else {
                    let text = rendered
                        .iter()
                        .find(|(p, _)| p == print)
                        .map(|(_, t)| t.clone())
                        .unwrap_or_default();
                    by_print.insert(
                        *print,
                        DedupedRace {
                            fingerprint: *print,
                            rendered: text,
                            hits: 1,
                            first_seed: *seed,
                        },
                    );
                }
            }
        }
        (by_print.into_values().collect(), merged)
    }
}

/// The replayable image of the daemon: what a snapshot serializes and
/// what recovery hands back to [`Daemon::open`](crate::Daemon::open).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShadowState {
    /// One past the highest assigned job id.
    pub next_job: u64,
    /// Jobs by id.
    pub jobs: BTreeMap<u64, ShadowJob>,
    /// Jobs currently in the store's eviction queue, in seal order.
    pub sealed_order: Vec<u64>,
    /// Jobs the store's budget has evicted.
    pub jobs_evicted: u64,
}

impl ShadowState {
    /// Applies one record.  Idempotent: re-applying a record already
    /// reflected (the post-snapshot-pre-trim crash window leaves the
    /// journal holding records the snapshot already contains) is a no-op.
    pub fn apply(&mut self, rec: &JournalRecord) {
        match rec {
            JournalRecord::Submitted { job, spec } => {
                self.next_job = self.next_job.max(job.0 + 1);
                self.jobs
                    .entry(job.0)
                    .or_insert_with(|| ShadowJob::new(spec.clone()));
            }
            JournalRecord::SeedDone { job, seed, outcome } => {
                if let Some(j) = self.jobs.get_mut(&job.0) {
                    if !j.outcomes.contains_key(seed) {
                        j.outcomes.insert(*seed, outcome.clone());
                        j.order.push(*seed);
                    }
                }
            }
            JournalRecord::Sealed { job } => {
                if let Some(j) = self.jobs.get_mut(&job.0) {
                    if !j.sealed {
                        j.sealed = true;
                        if !j.evicted {
                            self.sealed_order.push(job.0);
                        }
                    }
                }
            }
            JournalRecord::Cancelled { job } => {
                if let Some(j) = self.jobs.get_mut(&job.0) {
                    j.cancelled = true;
                }
            }
            JournalRecord::Evicted { job } => {
                if let Some(j) = self.jobs.get_mut(&job.0) {
                    if !j.evicted {
                        j.evicted = true;
                        self.jobs_evicted += 1;
                        self.sealed_order.retain(|&id| id != job.0);
                    }
                }
            }
        }
    }
}

impl Wire for ShadowJob {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.spec.encode(buf);
        (self.order.len() as u32).encode(buf);
        for seed in &self.order {
            seed.encode(buf);
            self.outcomes[seed].encode(buf);
        }
        self.sealed.encode(buf);
        self.cancelled.encode(buf);
        self.evicted.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let spec = JobSpec::decode(r)?;
        let count = u64::from(u32::decode(r)?);
        // Each entry is at least a seed (8) plus an outcome tag (1).
        let count = r.check_count(count, 9)?;
        let mut outcomes = BTreeMap::new();
        let mut order = Vec::with_capacity(count);
        for _ in 0..count {
            let seed = u64::decode(r)?;
            let outcome = OutcomeImage::decode(r)?;
            if outcomes.insert(seed, outcome).is_none() {
                order.push(seed);
            }
        }
        Ok(ShadowJob {
            spec,
            outcomes,
            order,
            sealed: bool::decode(r)?,
            cancelled: bool::decode(r)?,
            evicted: bool::decode(r)?,
        })
    }
}

impl Wire for ShadowState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.next_job.encode(buf);
        (self.jobs.len() as u32).encode(buf);
        for (id, job) in &self.jobs {
            id.encode(buf);
            job.encode(buf);
        }
        self.sealed_order.encode(buf);
        self.jobs_evicted.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let next_job = u64::decode(r)?;
        let count = u64::from(u32::decode(r)?);
        // Each job is at least an id (8) plus a minimal spec.
        let count = r.check_count(count, 16)?;
        let mut jobs = BTreeMap::new();
        for _ in 0..count {
            let id = u64::decode(r)?;
            jobs.insert(id, ShadowJob::decode(r)?);
        }
        Ok(ShadowState {
            next_job,
            jobs,
            sealed_order: Vec::<u64>::decode(r)?,
            jobs_evicted: u64::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct PersistCounters {
    journal_records: AtomicU64,
    snapshots_written: AtomicU64,
    recovered_jobs: AtomicU64,
    torn_tail_truncations: AtomicU64,
    fsyncs: AtomicU64,
    io_errors: AtomicU64,
}

/// Point-in-time persistence counters, surfaced through daemon stats and
/// the drain report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStatsSnapshot {
    /// Records currently live in the journal file (drops to zero at each
    /// compaction — the bounded-journal invariant is observable).
    pub journal_records: u64,
    /// Snapshots written by this process.
    pub snapshots_written: u64,
    /// Non-terminal jobs re-admitted at startup.
    pub recovered_jobs: u64,
    /// Torn or corrupt journal/snapshot tails truncated at open.
    pub torn_tail_truncations: u64,
    /// Journal fsyncs issued.
    pub fsyncs: u64,
    /// Persistence I/O failures after open (journaling degrades, the
    /// daemon keeps serving).
    pub io_errors: u64,
}

// ---------------------------------------------------------------------------
// The persister
// ---------------------------------------------------------------------------

struct PersistInner {
    dir: PathBuf,
    journal: File,
    fsync: FsyncPolicy,
    compact_every: u64,
    since_compact: u64,
    unsynced: u64,
    shadow: ShadowState,
    crash: Option<CrashSpec>,
    crash_hits: u64,
    wedged: bool,
}

/// The write-ahead journal engine.  `Disabled` (no data dir) variants are
/// free: every call is a no-op, so the daemon's non-durable mode pays
/// nothing.
pub struct Persist {
    inner: Option<Mutex<PersistInner>>,
    stats: PersistCounters,
}

fn persist_err(what: &str, path: &Path, e: &std::io::Error) -> DsmError {
    DsmError::Persist {
        context: format!("{what} {}: {e}", path.display()),
    }
}

impl Persist {
    /// A persister that journals nothing (the `data_dir: None` mode).
    pub fn disabled() -> Arc<Persist> {
        Arc::new(Persist {
            inner: None,
            stats: PersistCounters::default(),
        })
    }

    /// Whether a data directory backs this persister.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens (creating if needed) the data directory, recovers
    /// snapshot-then-journal, truncates any torn tail, and returns the
    /// engine plus the recovered [`ShadowState`] for the daemon to
    /// rebuild from.
    ///
    /// # Errors
    ///
    /// [`DsmError::Persist`] when the directory or its files cannot be
    /// created, read, or opened.  Torn and corrupt *contents* are not
    /// errors — they are truncated to the last valid prefix and counted.
    pub fn open(cfg: &PersistConfig) -> Result<(Arc<Persist>, ShadowState), DsmError> {
        let Some(dir) = &cfg.data_dir else {
            return Ok((Persist::disabled(), ShadowState::default()));
        };
        std::fs::create_dir_all(dir).map_err(|e| persist_err("create data dir", dir, &e))?;
        let stats = PersistCounters::default();

        // A stale tmp is a compaction that died mid-write: discard it.
        let tmp = dir.join(SNAPSHOT_TMP);
        match std::fs::remove_file(&tmp) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(persist_err("remove stale snapshot tmp", &tmp, &e)),
        }

        let mut shadow = ShadowState::default();
        let snap_path = dir.join(SNAPSHOT_FILE);
        match std::fs::read(&snap_path) {
            Ok(bytes) => match decode_snapshot(&bytes) {
                Ok(decoded) => shadow = decoded,
                Err(_) => {
                    // The atomic rename protocol never leaves a torn live
                    // snapshot, so this is disk rot: fall back to an empty
                    // shadow plus whatever the journal still holds, and
                    // count it rather than wedging the daemon.
                    stats.torn_tail_truncations.fetch_add(1, Ordering::Relaxed);
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(persist_err("read snapshot", &snap_path, &e)),
        }

        let journal_path = dir.join(JOURNAL_FILE);
        let mut records = 0u64;
        match std::fs::read(&journal_path) {
            Ok(bytes) => {
                let (valid_len, replayed, torn) = replay_journal(&bytes, &mut shadow);
                records = replayed;
                if torn {
                    stats.torn_tail_truncations.fetch_add(1, Ordering::Relaxed);
                    let f = OpenOptions::new()
                        .write(true)
                        .open(&journal_path)
                        .map_err(|e| persist_err("open journal for truncate", &journal_path, &e))?;
                    f.set_len(valid_len as u64)
                        .map_err(|e| persist_err("truncate journal", &journal_path, &e))?;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(persist_err("read journal", &journal_path, &e)),
        }

        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)
            .map_err(|e| persist_err("open journal", &journal_path, &e))?;

        stats.journal_records.store(records, Ordering::Relaxed);
        let persist = Persist {
            inner: Some(Mutex::new(PersistInner {
                dir: dir.clone(),
                journal,
                fsync: cfg.fsync,
                compact_every: cfg.compact_every(),
                since_compact: 0,
                unsynced: 0,
                shadow: shadow.clone(),
                crash: cfg.crash,
                crash_hits: 0,
                wedged: false,
            })),
            stats,
        };
        Ok((Arc::new(persist), shadow))
    }

    /// Journals one record (write-ahead: call this *before* relying on the
    /// in-memory effect), applying it to the shadow and compacting when
    /// due.  I/O failures after a successful open degrade to counted
    /// `io_errors` rather than killing the daemon — the in-memory service
    /// keeps working, durability is what's lost.
    pub fn record(&self, rec: &JournalRecord) {
        let Some(m) = &self.inner else { return };
        let mut inner = m.lock();
        if inner.wedged {
            return;
        }
        inner.shadow.apply(rec);
        let frame = encode_frame(&rec.to_bytes());

        if self.hits_crash_point(&mut inner, CrashPoint::MidRecord) {
            // Tear the frame: half the bytes reach the file, then die.
            let half = frame.len() / 2;
            let _ = inner.journal.write_all(&frame[..half]);
            let _ = inner.journal.sync_data();
            self.die(&mut inner);
            return;
        }

        if let Err(e) = inner.journal.write_all(&frame) {
            self.note_io_error("append journal record", &e);
            return;
        }
        self.stats.journal_records.fetch_add(1, Ordering::Relaxed);
        inner.unsynced += 1;

        if self.hits_crash_point(&mut inner, CrashPoint::PostRecordPreFsync) {
            self.die(&mut inner);
            return;
        }

        let due = match inner.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => inner.unsynced >= u64::from(n),
            FsyncPolicy::Never => false,
        };
        if due {
            match inner.journal.sync_data() {
                Ok(()) => {
                    self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                    inner.unsynced = 0;
                }
                Err(e) => self.note_io_error("fsync journal", &e),
            }
        }

        inner.since_compact += 1;
        if inner.since_compact >= inner.compact_every {
            self.compact_locked(&mut inner);
        }
    }

    /// Forces a compaction now (the drain path calls this so a restart
    /// after clean shutdown replays a snapshot, not a long journal).
    pub fn compact_now(&self) {
        let Some(m) = &self.inner else { return };
        let mut inner = m.lock();
        if inner.wedged {
            return;
        }
        self.compact_locked(&mut inner);
    }

    /// Counts `n` re-admitted jobs (the daemon calls this after rebuild).
    pub fn note_recovered_jobs(&self, n: u64) {
        self.stats.recovered_jobs.fetch_add(n, Ordering::Relaxed);
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> PersistStatsSnapshot {
        PersistStatsSnapshot {
            journal_records: self.stats.journal_records.load(Ordering::Relaxed),
            snapshots_written: self.stats.snapshots_written.load(Ordering::Relaxed),
            recovered_jobs: self.stats.recovered_jobs.load(Ordering::Relaxed),
            torn_tail_truncations: self.stats.torn_tail_truncations.load(Ordering::Relaxed),
            fsyncs: self.stats.fsyncs.load(Ordering::Relaxed),
            io_errors: self.stats.io_errors.load(Ordering::Relaxed),
        }
    }

    fn compact_locked(&self, inner: &mut PersistInner) {
        let tmp_path = inner.dir.join(SNAPSHOT_TMP);
        let snap_path = inner.dir.join(SNAPSHOT_FILE);
        let bytes = encode_snapshot(&inner.shadow);

        let mut tmp = match File::create(&tmp_path) {
            Ok(f) => f,
            Err(e) => {
                self.note_io_error("create snapshot tmp", &e);
                inner.since_compact = 0; // Back off; retry next interval.
                return;
            }
        };
        if self.hits_crash_point(inner, CrashPoint::MidCompaction) {
            // Tear the tmp: the live snapshot and journal are untouched.
            let _ = tmp.write_all(&bytes[..bytes.len() / 2]);
            let _ = tmp.sync_all();
            self.die(inner);
            return;
        }
        let written = tmp
            .write_all(&bytes)
            .and_then(|()| tmp.sync_all())
            .and_then(|()| {
                drop(tmp);
                std::fs::rename(&tmp_path, &snap_path)
            });
        if let Err(e) = written {
            self.note_io_error("write snapshot", &e);
            inner.since_compact = 0;
            return;
        }
        // Make the rename itself durable (best effort off Linux).
        if let Ok(d) = File::open(&inner.dir) {
            let _ = d.sync_all();
        }
        self.stats.snapshots_written.fetch_add(1, Ordering::Relaxed);

        if self.hits_crash_point(inner, CrashPoint::PostSnapshotPreTrim) {
            // The snapshot is live but the journal still holds everything
            // it contains: replay idempotency covers this window.
            self.die(inner);
            return;
        }

        match inner.journal.set_len(0) {
            Ok(()) => {
                self.stats.journal_records.store(0, Ordering::Relaxed);
                inner.unsynced = 0;
            }
            Err(e) => self.note_io_error("trim journal", &e),
        }
        inner.since_compact = 0;
    }

    /// Whether the armed crash point just hit its scripted occurrence.
    fn hits_crash_point(&self, inner: &mut PersistInner, point: CrashPoint) -> bool {
        let Some(spec) = inner.crash else {
            return false;
        };
        if spec.point != point {
            return false;
        }
        inner.crash_hits += 1;
        inner.crash_hits == spec.at
    }

    fn die(&self, inner: &mut PersistInner) {
        match inner.crash.map(|c| c.mode) {
            Some(CrashMode::Abort) => {
                eprintln!("cvm-service: scripted crash at persistence point");
                std::process::abort();
            }
            _ => inner.wedged = true,
        }
    }

    fn note_io_error(&self, what: &str, e: &std::io::Error) {
        self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
        eprintln!("cvm-service: persistence degraded: {what}: {e}");
    }
}

fn encode_snapshot(shadow: &ShadowState) -> Vec<u8> {
    let mut buf = Vec::new();
    SNAPSHOT_MAGIC.encode(&mut buf);
    SNAPSHOT_VERSION.encode(&mut buf);
    buf.extend_from_slice(&encode_frame(&shadow.to_bytes()));
    buf
}

fn decode_snapshot(bytes: &[u8]) -> Result<ShadowState, WireError> {
    let mut r = Reader::new(bytes);
    let magic = u32::decode(&mut r)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    let version = u32::decode(&mut r)?;
    if version != SNAPSHOT_VERSION {
        return Err(WireError::BadTag {
            what: "snapshot version",
            tag: version.min(255) as u8,
        });
    }
    let body = decode_frame(r.take(r.remaining())?)?;
    ShadowState::from_bytes(body)
}

/// Replays `bytes` as concatenated journal frames onto `shadow`.  Returns
/// `(valid_prefix_len, records_applied, torn)`; scanning stops at the
/// first bad magic, short frame, checksum failure, or record-decode
/// failure — that byte offset is where the caller truncates.
fn replay_journal(bytes: &[u8], shadow: &mut ShadowState) -> (usize, u64, bool) {
    let mut off = 0usize;
    let mut records = 0u64;
    while off < bytes.len() {
        let rest = &bytes[off..];
        if rest.len() < FRAME_HEADER_BYTES {
            return (off, records, true);
        }
        let magic = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        if magic != FRAME_MAGIC {
            return (off, records, true);
        }
        let len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]) as usize;
        let Some(total) = FRAME_HEADER_BYTES.checked_add(len) else {
            return (off, records, true);
        };
        if rest.len() < total {
            return (off, records, true);
        }
        let Ok(body) = decode_frame(&rest[..total]) else {
            return (off, records, true);
        };
        let Ok(rec) = JournalRecord::from_bytes(body) else {
            return (off, records, true);
        };
        shadow.apply(&rec);
        records += 1;
        off += total;
    }
    (off, records, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    fn spec() -> JobSpec {
        let mut s = JobSpec::new(Workload::RacyCounter { epochs: 2 }, 3, 7, 2);
        s.protocol = Protocol::MultiWriter;
        s.pipelined = true;
        s.recovery = RecoveryPolicy::Recover { max_attempts: 2 };
        s.fault.drop_rate = 0.05;
        s.fault.kill = Some(KillSpec {
            node: 1,
            at_event: 40,
        });
        s.stage_panic_epoch = Some(3);
        s
    }

    fn done_image() -> OutcomeImage {
        OutcomeImage::Done {
            retries: 1,
            occurrences: vec![10, 11, 10],
            rendered: vec![(10, "race ten".into()), (11, "race eleven".into())],
            recovery: [1, 2, 3, 4],
        }
    }

    #[test]
    fn records_roundtrip_through_wire() {
        let records = [
            JournalRecord::Submitted {
                job: JobId(3),
                spec: spec(),
            },
            JournalRecord::SeedDone {
                job: JobId(3),
                seed: 8,
                outcome: done_image(),
            },
            JournalRecord::SeedDone {
                job: JobId(3),
                seed: 9,
                outcome: OutcomeImage::Failed {
                    error: "boom".into(),
                    transient: true,
                    retries: 2,
                },
            },
            JournalRecord::Sealed { job: JobId(3) },
            JournalRecord::Cancelled { job: JobId(4) },
            JournalRecord::Evicted { job: JobId(3) },
        ];
        for rec in &records {
            let bytes = rec.to_bytes();
            assert_eq!(&JournalRecord::from_bytes(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn shadow_apply_is_idempotent() {
        let mut a = ShadowState::default();
        let records = [
            JournalRecord::Submitted {
                job: JobId(1),
                spec: spec(),
            },
            JournalRecord::SeedDone {
                job: JobId(1),
                seed: 7,
                outcome: done_image(),
            },
            JournalRecord::Sealed { job: JobId(1) },
            JournalRecord::Cancelled { job: JobId(1) },
            JournalRecord::Evicted { job: JobId(1) },
        ];
        for rec in &records {
            a.apply(rec);
        }
        let mut b = a.clone();
        for rec in &records {
            b.apply(rec); // Replaying the whole journal must change nothing.
        }
        assert_eq!(a, b);
        assert_eq!(a.jobs_evicted, 1);
        assert!(a.sealed_order.is_empty(), "evicted job left the queue");
    }

    #[test]
    fn shadow_snapshot_roundtrips() {
        let mut shadow = ShadowState::default();
        shadow.apply(&JournalRecord::Submitted {
            job: JobId(2),
            spec: spec(),
        });
        shadow.apply(&JournalRecord::SeedDone {
            job: JobId(2),
            seed: 8,
            outcome: done_image(),
        });
        shadow.apply(&JournalRecord::Sealed { job: JobId(2) });
        let bytes = encode_snapshot(&shadow);
        assert_eq!(decode_snapshot(&bytes).unwrap(), shadow);
        // A flipped body bit fails the CRC, not an assert deep in decode.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(decode_snapshot(&bad).is_err());
    }

    #[test]
    fn replay_races_mirrors_store_merge_semantics() {
        let mut shadow = ShadowState::default();
        shadow.apply(&JournalRecord::Submitted {
            job: JobId(1),
            spec: spec(),
        });
        // Seed 8 lands first (journal order), seed 7 second.
        shadow.apply(&JournalRecord::SeedDone {
            job: JobId(1),
            seed: 8,
            outcome: done_image(),
        });
        shadow.apply(&JournalRecord::SeedDone {
            job: JobId(1),
            seed: 7,
            outcome: done_image(),
        });
        let job = &shadow.jobs[&1];
        let (races, merged) = job.replay_races();
        assert_eq!(merged, 6, "three occurrences per seed, two seeds");
        assert_eq!(races.len(), 2);
        let ten = races.iter().find(|r| r.fingerprint == 10).unwrap();
        assert_eq!(ten.hits, 4, "duplicate occurrence folds per seed too");
        assert_eq!(ten.first_seed, 8, "first in arrival order, not value");
        assert_eq!(ten.rendered, "race ten");
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_prefix() {
        let rec = JournalRecord::Sealed { job: JobId(5) };
        let frame = encode_frame(&rec.to_bytes());
        let mut bytes = frame.clone();
        bytes.extend_from_slice(&frame[..frame.len() / 2]); // torn second frame

        let mut shadow = ShadowState::default();
        let (valid, records, torn) = replay_journal(&bytes, &mut shadow);
        assert_eq!(valid, frame.len());
        assert_eq!(records, 1);
        assert!(torn);

        // Garbage after a valid frame is also a (counted) tail.
        let mut garbage = frame.clone();
        garbage.extend_from_slice(b"not a frame at all........");
        let (valid, records, torn) = replay_journal(&garbage, &mut ShadowState::default());
        assert_eq!((valid, records, torn), (frame.len(), 1, true));

        // A clean journal replays whole.
        let (valid, records, torn) = replay_journal(&frame, &mut ShadowState::default());
        assert_eq!((valid, records, torn), (frame.len(), 1, false));
    }

    #[test]
    fn crash_and_fsync_specs_parse() {
        assert_eq!(
            CrashSpec::parse("mid-record:3"),
            Some(CrashSpec {
                point: CrashPoint::MidRecord,
                at: 3,
                mode: CrashMode::Abort,
            })
        );
        for p in CrashPoint::ALL {
            assert_eq!(CrashPoint::parse(p.name()), Some(p));
        }
        assert_eq!(CrashSpec::parse("mid-record"), None);
        assert_eq!(CrashSpec::parse("nowhere:1"), None);
        assert_eq!(CrashSpec::parse("mid-record:0"), None);

        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("every:16"),
            Some(FsyncPolicy::EveryN(16))
        );
        assert_eq!(FsyncPolicy::parse("every:0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        for p in [
            FsyncPolicy::Always,
            FsyncPolicy::Never,
            FsyncPolicy::EveryN(4),
        ] {
            assert_eq!(FsyncPolicy::parse(&p.name()), Some(p));
        }
    }
}
