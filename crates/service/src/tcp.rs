//! Line-delimited JSON TCP front end.
//!
//! One request per line, one response per line — no HTTP framework, no
//! framing beyond `\n`.  The accept loop runs nonblocking so the listener
//! observes its stop flag promptly; each connection gets its own thread
//! with a read timeout for the same reason.  A malformed request closes
//! nothing: the error is reported on the wire (`{"ok":false,...}`) and
//! the connection keeps serving.
//!
//! Hostile clients are bounded too ([`TcpTuning`]): a request line over
//! the cap gets a named error and a closed connection instead of
//! unbounded buffering, and a connection idle past its deadline is
//! reclaimed rather than pinning its accept slot forever.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cvm_dsm::{Protocol, RecoveryPolicy};

use crate::daemon::{Daemon, SubmitError};
use crate::job::{JobId, JobSnapshot, JobSpec};
use crate::json::{parse, Value};
use crate::workload::{FaultSpec, KillSpec, PartitionSpec, Workload};

/// Per-connection protection bounds.
#[derive(Clone, Copy, Debug)]
pub struct TcpTuning {
    /// Longest accepted request line, newline included.  A client pushing
    /// more without a newline gets a `line_too_long` error and a closed
    /// connection — the buffer never grows past the cap.
    pub max_line_bytes: usize,
    /// Idle deadline: a connection that sends nothing for this long gets
    /// an `idle_timeout` error and is closed, so half-open sockets cannot
    /// pin their slot forever.
    pub idle_deadline: Duration,
}

impl Default for TcpTuning {
    fn default() -> Self {
        TcpTuning {
            max_line_bytes: 64 * 1024,
            idle_deadline: Duration::from_secs(60),
        }
    }
}

/// A running TCP front end.  Dropping it (or calling
/// [`stop`](TcpFrontEnd::stop)) closes the listener; the daemon behind it
/// is unaffected.
pub struct TcpFrontEnd {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TcpFrontEnd {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `daemon` over it
    /// with default [`TcpTuning`].
    pub fn serve(daemon: Daemon, addr: &str) -> std::io::Result<TcpFrontEnd> {
        TcpFrontEnd::serve_with(daemon, addr, TcpTuning::default())
    }

    /// [`serve`](TcpFrontEnd::serve) with explicit protection bounds.
    pub fn serve_with(
        daemon: Daemon,
        addr: &str,
        tuning: TcpTuning,
    ) -> std::io::Result<TcpFrontEnd> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("svc-accept".into())
                .spawn(move || accept_loop(&listener, &daemon, &stop, tuning))
                .expect("spawn accept loop")
        };
        Ok(TcpFrontEnd {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop.  Open connections
    /// drain on their own read timeouts.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpFrontEnd {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, daemon: &Daemon, stop: &Arc<AtomicBool>, tuning: TcpTuning) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let daemon = daemon.clone();
                let stop = Arc::clone(stop);
                let _ = std::thread::Builder::new()
                    .name("svc-conn".into())
                    .spawn(move || serve_connection(stream, &daemon, &stop, tuning));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_connection(stream: TcpStream, daemon: &Daemon, stop: &Arc<AtomicBool>, tuning: TcpTuning) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = stream;
    // Raw buffered reads (not `read_line`) so the accumulation is bounded
    // by the tuning cap, not by how much the client cares to send.
    let mut buffer: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut last_activity = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        match reader.read(&mut chunk) {
            Ok(0) => return, // Peer closed.
            Ok(n) => {
                last_activity = Instant::now();
                buffer.extend_from_slice(&chunk[..n]);
                // Process every complete line in the buffer.
                while let Some(pos) = buffer.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buffer.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line);
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    let response = handle_line(daemon, trimmed);
                    if writer
                        .write_all(format!("{response}\n").as_bytes())
                        .is_err()
                    {
                        return;
                    }
                }
                if buffer.len() > tuning.max_line_bytes {
                    // No newline within the cap: reject and hang up
                    // instead of buffering without bound.
                    let response = error_response(
                        "line_too_long",
                        &format!(
                            "request line exceeds {} bytes without a newline",
                            tuning.max_line_bytes
                        ),
                    );
                    let _ = writer.write_all(format!("{response}\n").as_bytes());
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle poll: re-check the stop flag and the deadline.
                if last_activity.elapsed() > tuning.idle_deadline {
                    let response = error_response(
                        "idle_timeout",
                        &format!("no request within {} ms", tuning.idle_deadline.as_millis()),
                    );
                    let _ = writer.write_all(format!("{response}\n").as_bytes());
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Handles one request line, producing one response value.  Public so the
/// soak suite can exercise the protocol without sockets.
pub fn handle_line(daemon: &Daemon, line: &str) -> Value {
    let request = match parse(line) {
        Ok(v) => v,
        Err(e) => return error_response("bad_json", &e.to_string()),
    };
    match dispatch(daemon, &request) {
        Ok(v) => v,
        Err((reason, detail)) => error_response(reason, &detail),
    }
}

fn error_response(reason: &str, detail: &str) -> Value {
    Value::obj([
        ("ok", Value::Bool(false)),
        ("reason", Value::Str(reason.into())),
        ("error", Value::Str(detail.into())),
    ])
}

type WireError = (&'static str, String);

fn dispatch(daemon: &Daemon, request: &Value) -> Result<Value, WireError> {
    let op = request
        .get("op")
        .and_then(Value::as_str)
        .ok_or(("bad_request", "missing string field 'op'".to_string()))?;
    match op {
        "ping" => Ok(Value::obj([
            ("ok", Value::Bool(true)),
            ("pong", Value::Bool(true)),
        ])),
        "submit" => submit(daemon, request),
        "status" => {
            let id = job_id(request)?;
            let snap = daemon
                .status(id)
                .ok_or(("unknown_job", format!("{id} is not known")))?;
            Ok(snapshot_value(&snap))
        }
        "jobs" => Ok(Value::obj([
            ("ok", Value::Bool(true)),
            (
                "jobs",
                Value::Arr(daemon.jobs().iter().map(snapshot_value).collect()),
            ),
        ])),
        "cancel" => {
            let id = job_id(request)?;
            let known = daemon.cancel(id);
            if !known {
                return Err(("unknown_job", format!("{id} is not known")));
            }
            Ok(Value::obj([
                ("ok", Value::Bool(true)),
                ("cancelled", Value::Bool(true)),
            ]))
        }
        "races" => {
            let id = job_id(request)?;
            let races = daemon
                .races(id)
                .ok_or(("unknown_job", format!("{id} has no retained results")))?;
            let items = races
                .races
                .iter()
                .map(|r| {
                    Value::obj([
                        // Full 64-bit width survives as hex text.
                        ("fingerprint", Value::Str(format!("{:016x}", r.fingerprint))),
                        ("hits", Value::Int(r.hits as i64)),
                        ("first_seed", Value::Int(r.first_seed as i64)),
                        ("rendered", Value::Str(r.rendered.clone())),
                    ])
                })
                .collect();
            Ok(Value::obj([
                ("ok", Value::Bool(true)),
                ("races", Value::Arr(items)),
                ("reports_merged", Value::Int(races.reports_merged as i64)),
            ]))
        }
        "stats" => {
            let stats = daemon.stats();
            Ok(Value::obj([
                ("ok", Value::Bool(true)),
                ("jobs_submitted", Value::Int(stats.jobs_submitted as i64)),
                ("jobs_rejected", Value::Int(stats.jobs_rejected as i64)),
                ("jobs_active", Value::Int(stats.jobs_active as i64)),
                ("draining", Value::Bool(stats.draining)),
                ("attempts", Value::Int(stats.pool.attempts as i64)),
                ("retries", Value::Int(stats.pool.retries as i64)),
                ("panics_caught", Value::Int(stats.pool.panics_caught as i64)),
                (
                    "deadline_overruns",
                    Value::Int(stats.pool.deadline_overruns as i64),
                ),
                ("store_bytes", Value::Int(stats.store.bytes_live as i64)),
                ("jobs_evicted", Value::Int(stats.store.jobs_evicted as i64)),
                (
                    "distinct_races",
                    Value::Int(stats.store.distinct_races as i64),
                ),
                (
                    "journal_records",
                    Value::Int(stats.persist.journal_records as i64),
                ),
                (
                    "snapshots_written",
                    Value::Int(stats.persist.snapshots_written as i64),
                ),
                (
                    "recovered_jobs",
                    Value::Int(stats.persist.recovered_jobs as i64),
                ),
                (
                    "torn_tail_truncations",
                    Value::Int(stats.persist.torn_tail_truncations as i64),
                ),
                ("fsyncs", Value::Int(stats.persist.fsyncs as i64)),
            ]))
        }
        "drain" => {
            let deadline_ms = request
                .get("deadline_ms")
                .and_then(Value::as_u64)
                .unwrap_or(5_000);
            let report = daemon.drain(Duration::from_millis(deadline_ms));
            Ok(Value::obj([
                ("ok", Value::Bool(true)),
                ("clean", Value::Bool(report.clean)),
                ("jobs_cancelled", Value::Int(report.jobs_cancelled as i64)),
                (
                    "journal_records",
                    Value::Int(report.persist.journal_records as i64),
                ),
                (
                    "snapshots_written",
                    Value::Int(report.persist.snapshots_written as i64),
                ),
                (
                    "recovered_jobs",
                    Value::Int(report.persist.recovered_jobs as i64),
                ),
                (
                    "torn_tail_truncations",
                    Value::Int(report.persist.torn_tail_truncations as i64),
                ),
            ]))
        }
        other => Err(("bad_request", format!("unknown op '{other}'"))),
    }
}

fn job_id(request: &Value) -> Result<JobId, WireError> {
    request
        .get("job")
        .and_then(Value::as_u64)
        .map(JobId)
        .ok_or(("bad_request", "missing integer field 'job'".to_string()))
}

fn submit(daemon: &Daemon, request: &Value) -> Result<Value, WireError> {
    let spec = spec_from_request(request)?;
    match daemon.submit(spec) {
        Ok(id) => Ok(Value::obj([
            ("ok", Value::Bool(true)),
            ("job", Value::Int(id.0 as i64)),
        ])),
        Err(SubmitError::Invalid(why)) => Err(("invalid_spec", why)),
        Err(e @ SubmitError::QueueFull { .. }) => Err(("queue_full", e.to_string())),
        Err(SubmitError::Draining) => Err(("draining", "daemon is draining".into())),
    }
}

fn spec_from_request(request: &Value) -> Result<JobSpec, WireError> {
    let get_u64 = |key: &str, default: u64| -> Result<u64, WireError> {
        match request.get(key) {
            None => Ok(default),
            Some(v) => v.as_u64().ok_or((
                "bad_request",
                format!("field '{key}' must be a non-negative integer"),
            )),
        }
    };
    let name = request
        .get("workload")
        .and_then(Value::as_str)
        .ok_or(("bad_request", "missing string field 'workload'".to_string()))?;
    let epochs = get_u64("epochs", 2)?;
    let dwell_ms = get_u64("dwell_ms", 0)?;
    let workload = Workload::from_name(name, epochs, dwell_ms)
        .ok_or(("bad_request", format!("unknown workload '{name}'")))?;

    let nprocs = get_u64("nprocs", 2)? as usize;
    let seed_base = get_u64("seed_base", 1)?;
    let seed_count = get_u64("seed_count", 1)? as u32;
    let mut spec = JobSpec::new(workload, nprocs, seed_base, seed_count);

    if let Some(v) = request.get("protocol") {
        spec.protocol = match v.as_str() {
            Some("single_writer") => Protocol::SingleWriter,
            Some("multi_writer") => Protocol::MultiWriter,
            _ => {
                return Err((
                    "bad_request",
                    "protocol must be 'single_writer' or 'multi_writer'".into(),
                ))
            }
        };
    }
    if let Some(v) = request.get("pipelined") {
        spec.pipelined = v.as_bool().ok_or((
            "bad_request",
            "field 'pipelined' must be a bool".to_string(),
        ))?;
    }
    if let Some(v) = request.get("recover_attempts") {
        let attempts = v.as_u64().ok_or((
            "bad_request",
            "field 'recover_attempts' must be a non-negative integer".to_string(),
        ))?;
        spec.recovery = if attempts == 0 {
            RecoveryPolicy::Abort
        } else {
            RecoveryPolicy::Recover {
                max_attempts: attempts as u32,
            }
        };
    }

    let mut fault = FaultSpec::default();
    if let Some(v) = request.get("drop_rate") {
        fault.drop_rate = v.as_f64().ok_or((
            "bad_request",
            "field 'drop_rate' must be a number".to_string(),
        ))?;
    }
    if let Some(v) = request.get("corrupt_rate") {
        fault.corrupt_rate = v.as_f64().ok_or((
            "bad_request",
            "field 'corrupt_rate' must be a number".to_string(),
        ))?;
    }
    if let Some(v) = request.get("kill_node") {
        let node = v.as_u64().ok_or((
            "bad_request",
            "field 'kill_node' must be a non-negative integer".to_string(),
        ))?;
        fault.kill = Some(KillSpec {
            node: node as u16,
            at_event: get_u64("kill_at_event", 40)?,
        });
    }
    if let Some(v) = request.get("partition_node") {
        let node = v.as_u64().ok_or((
            "bad_request",
            "field 'partition_node' must be a non-negative integer".to_string(),
        ))?;
        let heal_at = match request.get("partition_heal_at") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or((
                "bad_request",
                "field 'partition_heal_at' must be a non-negative integer".to_string(),
            ))?),
        };
        fault.partition = Some(PartitionSpec {
            node: node as u16,
            at_datagram: get_u64("partition_at", 40)?,
            heal_at,
        });
    }
    spec.fault = fault;

    if let Some(v) = request.get("run_deadline_ms") {
        let ms = v.as_u64().ok_or((
            "bad_request",
            "field 'run_deadline_ms' must be a non-negative integer".to_string(),
        ))?;
        spec.run_deadline = Duration::from_millis(ms);
    }
    spec.retry_budget = get_u64("retry_budget", u64::from(spec.retry_budget))? as u32;
    spec.flaky_first = get_u64("flaky_first", 0)? as u32;
    if let Some(v) = request.get("stage_panic_epoch") {
        spec.stage_panic_epoch = Some(v.as_u64().ok_or((
            "bad_request",
            "field 'stage_panic_epoch' must be a non-negative integer".to_string(),
        ))?);
    }
    Ok(spec)
}

fn snapshot_value(snap: &JobSnapshot) -> Value {
    Value::obj([
        ("ok", Value::Bool(true)),
        ("job", Value::Int(snap.id.0 as i64)),
        ("phase", Value::Str(snap.phase.name().into())),
        ("seeds_total", Value::Int(i64::from(snap.seeds_total))),
        ("seeds_done", Value::Int(i64::from(snap.seeds_done))),
        ("seeds_failed", Value::Int(i64::from(snap.seeds_failed))),
        (
            "seeds_cancelled",
            Value::Int(i64::from(snap.seeds_cancelled)),
        ),
        ("retries", Value::Int(snap.retries as i64)),
        (
            "deadline_overruns",
            Value::Int(snap.deadline_overruns as i64),
        ),
        (
            "first_error",
            snap.first_error.clone().map_or(Value::Null, Value::Str),
        ),
        ("distinct_races", Value::Int(snap.distinct_races as i64)),
        (
            "partitions_healed",
            Value::Int(snap.partitions_healed as i64),
        ),
        (
            "stale_msgs_fenced",
            Value::Int(snap.stale_msgs_fenced as i64),
        ),
        ("quorum_losses", Value::Int(snap.quorum_losses as i64)),
        ("rejoin_restores", Value::Int(snap.rejoin_restores as i64)),
        ("recovered", Value::Bool(snap.recovered)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::DaemonConfig;
    use std::io::{BufRead, BufReader};

    #[test]
    fn protocol_handles_ping_and_rejects_garbage() {
        let daemon = Daemon::start(DaemonConfig::default());
        let pong = handle_line(&daemon, r#"{"op":"ping"}"#);
        assert_eq!(pong.get("ok").and_then(Value::as_bool), Some(true));

        let bad = handle_line(&daemon, "not json at all");
        assert_eq!(bad.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(bad.get("reason").and_then(Value::as_str), Some("bad_json"));

        let bad = handle_line(&daemon, r#"{"op":"frobnicate"}"#);
        assert_eq!(
            bad.get("reason").and_then(Value::as_str),
            Some("bad_request")
        );

        let bad = handle_line(&daemon, r#"{"op":"status","job":12345}"#);
        assert_eq!(
            bad.get("reason").and_then(Value::as_str),
            Some("unknown_job")
        );
    }

    #[test]
    fn submit_parses_the_full_spec_surface() {
        let daemon = Daemon::start(DaemonConfig::default());
        let response = handle_line(
            &daemon,
            r#"{"op":"submit","workload":"mixed_stripes","epochs":1,"nprocs":3,
                "seed_base":5,"seed_count":1,"protocol":"multi_writer","pipelined":true,
                "recover_attempts":2,"drop_rate":0.05,"retry_budget":4,
                "run_deadline_ms":20000}"#
                .replace('\n', " ")
                .as_str(),
        );
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "submit failed: {response}"
        );
        let id = JobId(response.get("job").and_then(Value::as_u64).unwrap());
        let spec = {
            // Drain to make sure the job lands before inspecting.
            daemon.drain(Duration::from_secs(60));
            daemon.status(id).unwrap()
        };
        assert!(spec.phase.is_terminal());
    }

    #[test]
    fn invalid_specs_surface_their_reason() {
        let daemon = Daemon::start(DaemonConfig::default());
        let response = handle_line(
            &daemon,
            r#"{"op":"submit","workload":"racy_counter","nprocs":0}"#,
        );
        assert_eq!(
            response.get("reason").and_then(Value::as_str),
            Some("invalid_spec")
        );
        let response = handle_line(&daemon, r#"{"op":"submit","workload":"nope"}"#);
        assert_eq!(
            response.get("reason").and_then(Value::as_str),
            Some("bad_request")
        );
    }

    #[test]
    fn tcp_roundtrip_over_a_real_socket() {
        let daemon = Daemon::start(DaemonConfig {
            workers: 2,
            ..DaemonConfig::default()
        });
        let mut front = TcpFrontEnd::serve(daemon.clone(), "127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(front.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let mut ask = |line: &str| -> Value {
            writer.write_all(format!("{line}\n").as_bytes()).unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            parse(response.trim()).unwrap()
        };

        let submitted = ask(
            r#"{"op":"submit","workload":"racy_counter","epochs":2,"nprocs":2,"seed_base":1,"seed_count":2}"#,
        );
        assert_eq!(submitted.get("ok").and_then(Value::as_bool), Some(true));
        let job = submitted.get("job").and_then(Value::as_u64).unwrap();

        // Poll status over the wire until terminal.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let phase = loop {
            let status = ask(&format!(r#"{{"op":"status","job":{job}}}"#));
            let phase = status
                .get("phase")
                .and_then(Value::as_str)
                .unwrap()
                .to_string();
            if phase != "queued" && phase != "running" {
                break phase;
            }
            assert!(std::time::Instant::now() < deadline, "job stuck");
            std::thread::sleep(Duration::from_millis(10));
        };
        assert_eq!(phase, "done");

        let races = ask(&format!(r#"{{"op":"races","job":{job}}}"#));
        let items = races.get("races").and_then(Value::as_arr).unwrap();
        assert!(!items.is_empty(), "racy_counter must surface races");
        for item in items {
            let print = item.get("fingerprint").and_then(Value::as_str).unwrap();
            assert_eq!(print.len(), 16, "fingerprint travels as 16 hex chars");
            assert!(u64::from_str_radix(print, 16).is_ok());
        }

        front.stop();
        // The daemon outlives its front end.
        assert!(daemon.status(JobId(job)).is_some());
    }

    #[test]
    fn oversized_line_gets_named_error_and_close() {
        let daemon = Daemon::start(DaemonConfig::default());
        let mut front = TcpFrontEnd::serve_with(
            daemon,
            "127.0.0.1:0",
            TcpTuning {
                max_line_bytes: 256,
                ..TcpTuning::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(front.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Push well past the cap without ever sending a newline.
        stream.write_all(&vec![b'x'; 4096]).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.contains("line_too_long"),
            "named error expected, got: {response}"
        );
        // read_to_string returning means the server closed the socket.
        front.stop();
    }

    #[test]
    fn idle_connection_is_reclaimed() {
        let daemon = Daemon::start(DaemonConfig::default());
        let mut front = TcpFrontEnd::serve_with(
            daemon,
            "127.0.0.1:0",
            TcpTuning {
                idle_deadline: Duration::from_millis(200),
                ..TcpTuning::default()
            },
        )
        .unwrap();
        // A half-open client: connects, says nothing.
        let mut stream = TcpStream::connect(front.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let started = Instant::now();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.contains("idle_timeout"),
            "named error expected, got: {response}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(8),
            "idle reclaim must not take the full read timeout"
        );
        front.stop();
    }
}
