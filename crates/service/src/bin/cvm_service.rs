//! `cvm-service` — the race-hunt daemon, as a process.
//!
//! ```text
//! cvm-service [--addr 127.0.0.1:7199] [--workers 4] [--queue 64] [--store-mb 16]
//!             [--data-dir PATH] [--fsync always|never|every:N] [--compact-every N]
//!             [--crash POINT:N]
//! ```
//!
//! Serves the line-delimited JSON protocol on `--addr` and prints
//! `listening on <addr>` once ready (port 0 resolves to the kernel's
//! pick, so scripts can parse the line).  Shuts down gracefully — drain
//! admission, finish or cancel in-flight jobs, join the pool — when
//! stdin reaches EOF or a line reading `drain` arrives; exits 0 iff
//! every admitted job reached a terminal state.
//!
//! `--data-dir` turns on the write-ahead journal: job state survives a
//! crash and is recovered on the next start from the same directory.
//! `--crash` (recovery tests only) aborts the process at the Nth hit of
//! a named persistence crash point, e.g. `--crash mid-record:3`.

use std::io::BufRead;
use std::time::Duration;

use cvm_service::{CrashSpec, Daemon, DaemonConfig, FsyncPolicy, TcpFrontEnd};

struct Args {
    addr: String,
    cfg: DaemonConfig,
    drain_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7199".into(),
        cfg: DaemonConfig::default(),
        drain_ms: 30_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue" => {
                args.cfg.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?;
            }
            "--store-mb" => {
                let mb: u64 = value("--store-mb")?
                    .parse()
                    .map_err(|e| format!("--store-mb: {e}"))?;
                args.cfg.store_budget_bytes = mb << 20;
            }
            "--drain-ms" => {
                args.drain_ms = value("--drain-ms")?
                    .parse()
                    .map_err(|e| format!("--drain-ms: {e}"))?;
            }
            "--data-dir" => {
                args.cfg.persist.data_dir = Some(value("--data-dir")?.into());
                if args.cfg.persist.compact_every == 0 {
                    args.cfg.persist.compact_every = 256;
                }
            }
            "--fsync" => {
                let policy = value("--fsync")?;
                args.cfg.persist.fsync = FsyncPolicy::parse(&policy)
                    .ok_or_else(|| format!("--fsync: '{policy}' (want always|never|every:N)"))?;
            }
            "--compact-every" => {
                args.cfg.persist.compact_every = value("--compact-every")?
                    .parse()
                    .map_err(|e| format!("--compact-every: {e}"))?;
            }
            "--crash" => {
                let spec = value("--crash")?;
                args.cfg.persist.crash = Some(
                    CrashSpec::parse(&spec)
                        .ok_or_else(|| format!("--crash: '{spec}' (want POINT:N)"))?,
                );
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(why) => {
            eprintln!("cvm-service: {why}");
            eprintln!(
                "usage: cvm-service [--addr HOST:PORT] [--workers N] [--queue N] \
                 [--store-mb N] [--drain-ms N] [--data-dir PATH] \
                 [--fsync always|never|every:N] [--compact-every N] [--crash POINT:N]"
            );
            std::process::exit(2);
        }
    };

    let daemon = match Daemon::open(args.cfg) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("cvm-service: cannot open data directory: {e}");
            std::process::exit(1);
        }
    };
    let mut front = match TcpFrontEnd::serve(daemon.clone(), &args.addr) {
        Ok(front) => front,
        Err(e) => {
            eprintln!("cvm-service: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!("listening on {}", front.addr());

    // Block on stdin: EOF or an explicit `drain` line triggers graceful
    // shutdown (the SIGTERM-equivalent for a pipe-supervised daemon).
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(text) if text.trim() == "drain" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }

    front.stop();
    let report = daemon.drain(Duration::from_millis(args.drain_ms));
    let stats = daemon.stats();
    eprintln!(
        "drained: {} jobs submitted, {} cancelled at shutdown, {} retries, {} panics caught",
        stats.jobs_submitted, report.jobs_cancelled, stats.pool.retries, stats.pool.panics_caught
    );
    if stats.persist.journal_records
        + stats.persist.snapshots_written
        + stats.persist.recovered_jobs
        + stats.persist.torn_tail_truncations
        > 0
    {
        eprintln!(
            "durable: {} journal records, {} snapshots, {} recovered jobs, {} torn tails truncated",
            stats.persist.journal_records,
            stats.persist.snapshots_written,
            stats.persist.recovered_jobs,
            stats.persist.torn_tail_truncations
        );
    }
    // Exit 0 iff every admitted job is terminal (drain guarantees this
    // unless the pool wedged, which is exactly what CI wants to catch).
    let all_terminal = daemon.jobs().iter().all(|j| j.phase.is_terminal());
    std::process::exit(i32::from(!all_terminal));
}
