//! Named, deterministic detection workloads and the job → `DsmConfig`
//! expansion.
//!
//! A service job cannot ship a closure over the wire, so it names one of a
//! fixed menu of workloads instead.  Every workload is deterministic in
//! `(spec, seed)`: the daemon's run for a seed and a direct
//! [`Cluster::run`] with [`run_direct`] produce byte-identical race
//! reports — that equivalence is the soak suite's central assertion.

use std::time::Duration;

use cvm_dsm::{Cluster, DsmConfig, FaultPlan, ProcHandle, RunError, RunReport};
use cvm_page::GAddr;
use cvm_vclock::ProcId;

use crate::job::JobSpec;

/// The workload menu: small kernels with known race characters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    /// Every process writes a shared counter word unsynchronized each
    /// epoch: guaranteed write-write races.
    RacyCounter {
        /// Barrier epochs to run.
        epochs: u64,
    },
    /// Each process writes only its own stripe: race-free by
    /// construction (any report is a detector bug).
    DisjointGrid {
        /// Barrier epochs to run.
        epochs: u64,
    },
    /// Races, false sharing, and a race-free stripe mixed: proc `p`
    /// writes words `p + 16k` and reads a word another proc writes.
    MixedStripes {
        /// Barrier epochs to run.
        epochs: u64,
    },
    /// Lock-protected shared counter: race-free, exercises the
    /// distributed lock path under service load.
    LockedCounter {
        /// Barrier epochs to run.
        epochs: u64,
    },
    /// Disjoint writes plus a real wall-clock dwell per epoch: the
    /// workload for exercising per-run deadlines.
    SleepyGrid {
        /// Barrier epochs to run.
        epochs: u64,
        /// Milliseconds of wall-clock dwell per epoch per process.
        dwell_ms: u64,
    },
    /// Disjoint writes, but process 0 panics (a genuine application bug,
    /// not a `DsmError`) after the last barrier: the workload for
    /// exercising the pool's crash isolation — `Cluster::run` re-throws
    /// genuine app panics after draining.
    PanickyApp {
        /// Barrier epochs to run before the scripted panic.
        epochs: u64,
    },
}

impl Workload {
    /// Wire name of the workload kind.
    pub fn name(self) -> &'static str {
        match self {
            Workload::RacyCounter { .. } => "racy_counter",
            Workload::DisjointGrid { .. } => "disjoint_grid",
            Workload::MixedStripes { .. } => "mixed_stripes",
            Workload::LockedCounter { .. } => "locked_counter",
            Workload::SleepyGrid { .. } => "sleepy_grid",
            Workload::PanickyApp { .. } => "panicky_app",
        }
    }

    /// Parses a wire name plus parameters.
    pub fn from_name(name: &str, epochs: u64, dwell_ms: u64) -> Option<Workload> {
        Some(match name {
            "racy_counter" => Workload::RacyCounter { epochs },
            "disjoint_grid" => Workload::DisjointGrid { epochs },
            "mixed_stripes" => Workload::MixedStripes { epochs },
            "locked_counter" => Workload::LockedCounter { epochs },
            "sleepy_grid" => Workload::SleepyGrid { epochs, dwell_ms },
            "panicky_app" => Workload::PanickyApp { epochs },
            _ => return None,
        })
    }

    /// Barrier epochs the workload executes.
    pub fn epochs(self) -> u64 {
        match self {
            Workload::RacyCounter { epochs }
            | Workload::DisjointGrid { epochs }
            | Workload::MixedStripes { epochs }
            | Workload::LockedCounter { epochs }
            | Workload::SleepyGrid { epochs, .. }
            | Workload::PanickyApp { epochs } => epochs,
        }
    }

    /// Bytes of shared segment every workload allocates.
    pub fn alloc_bytes(self) -> u64 {
        8 * 256
    }

    /// Sanity bounds, mirrored into [`JobSpec::validate`].
    pub fn validate(self) -> Result<(), String> {
        if self.epochs() == 0 {
            return Err("workload epochs must be at least 1".into());
        }
        if self.epochs() > 256 {
            return Err("workload epochs above 256 is not a service-shaped run".into());
        }
        if let Workload::SleepyGrid { dwell_ms, .. } = self {
            if dwell_ms > 10_000 {
                return Err("sleepy_grid dwell above 10s".into());
            }
        }
        Ok(())
    }

    /// One process's body, against the shared base address.
    pub fn body(self, h: &ProcHandle, base: GAddr) {
        let me = h.proc() as u64;
        match self {
            Workload::RacyCounter { epochs } => {
                for e in 0..epochs {
                    h.write(base, me + e); // Shared word: the race.
                    h.write(base.word(1 + me), e); // Private stripe.
                    h.barrier();
                }
            }
            Workload::DisjointGrid { epochs } => {
                for e in 0..epochs {
                    for k in 0..4u64 {
                        h.write(base.word(me * 16 + k), e + k);
                    }
                    h.barrier();
                }
            }
            Workload::MixedStripes { epochs } => {
                for e in 0..epochs {
                    for k in 0..4u64 {
                        h.write(base.word((me + k * 16 + e) % 128), me + e);
                    }
                    let _ = h.read(base.word((me + e + 1) % 32));
                    h.barrier();
                }
            }
            Workload::LockedCounter { epochs } => {
                for _ in 0..epochs {
                    h.lock(0);
                    let v = h.read(base);
                    h.write(base, v + 1);
                    h.unlock(0);
                    h.barrier();
                }
            }
            Workload::SleepyGrid { epochs, dwell_ms } => {
                for e in 0..epochs {
                    std::thread::sleep(Duration::from_millis(dwell_ms));
                    h.write(base.word(me * 16), e);
                    h.barrier();
                }
            }
            Workload::PanickyApp { epochs } => {
                for e in 0..epochs {
                    h.write(base.word(me * 16), e);
                    h.barrier();
                }
                if me == 0 {
                    panic!("scripted application bug after epoch {epochs}");
                }
            }
        }
    }
}

/// Scripted node death: `node` dies at its `at_event`-th reliability-engine
/// event.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct KillSpec {
    /// The victim.
    pub node: u16,
    /// Engine-event ordinal at which it dies.
    pub at_event: u64,
}

/// Scripted network partition: `node` is cut from the fabric at its
/// `at_datagram`-th wire datagram, healing (if ever) at `heal_at`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PartitionSpec {
    /// The node cut off.
    pub node: u16,
    /// Wire-datagram ordinal at which the cut starts.
    pub at_datagram: u64,
    /// Wire-datagram ordinal at which the cut heals; `None` makes the
    /// partition permanent for the run.
    pub heal_at: Option<u64>,
}

/// Wire-fault knobs of a job, keyed by each run's seed (the plan itself is
/// identical across seeds; the injection *stream* differs per seed).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct FaultSpec {
    /// Bernoulli datagram loss in `[0, 1)`.
    pub drop_rate: f64,
    /// Seeded payload corruption in `[0, 1)`.
    pub corrupt_rate: f64,
    /// Scripted kill, if any.
    pub kill: Option<KillSpec>,
    /// Scripted partition (transient or permanent), if any.
    pub partition: Option<PartitionSpec>,
}

impl FaultSpec {
    /// Whether any fault is configured (a fault-free spec runs on perfect
    /// channels, skipping the reliability layer entirely).
    pub fn is_faulty(&self) -> bool {
        self.drop_rate > 0.0
            || self.corrupt_rate > 0.0
            || self.kill.is_some()
            || self.partition.is_some()
    }

    /// Range checks, surfaced to the submitter.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.drop_rate) {
            return Err("drop_rate out of [0, 1)".into());
        }
        if !(0.0..1.0).contains(&self.corrupt_rate) {
            return Err("corrupt_rate out of [0, 1)".into());
        }
        if let Some(p) = &self.partition {
            if let Some(heal) = p.heal_at {
                if heal <= p.at_datagram {
                    return Err("partition_heal_at must be after partition_at".into());
                }
            }
        }
        Ok(())
    }

    /// The transport plan for one seed: tight RTO/backoff so scripted
    /// kills are diagnosed in milliseconds, not deployment-default
    /// timeouts.
    pub fn plan(&self, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::new(self.drop_rate, seed)
            .with_rto(Duration::from_millis(2), Duration::from_millis(16))
            .with_max_retransmits(8);
        if self.corrupt_rate > 0.0 {
            plan = plan.with_corruption(self.corrupt_rate);
        }
        if let Some(kill) = self.kill {
            plan = plan.with_kill(ProcId(kill.node), kill.at_event);
        }
        if let Some(p) = self.partition {
            plan = match p.heal_at {
                Some(heal) => plan.with_partition_healed(ProcId(p.node), p.at_datagram, heal),
                None => plan.with_partition(ProcId(p.node), p.at_datagram),
            };
        }
        plan
    }
}

/// Expands `(spec, seed)` into the exact `DsmConfig` the daemon runs —
/// exported so tests and clients can reproduce any service run directly.
pub fn build_config(spec: &JobSpec, seed: u64) -> DsmConfig {
    let mut cfg = DsmConfig::new(spec.nprocs);
    cfg.protocol = spec.protocol;
    cfg.detect.pipelined = spec.pipelined;
    cfg.detect.stage_panic_epoch = spec.stage_panic_epoch;
    cfg.recovery = spec.recovery;
    cfg.op_deadline = Duration::from_secs(10);
    if spec.fault.is_faulty() {
        cfg.net_loss = Some(spec.fault.plan(seed));
    }
    cfg
}

/// Runs one seed of `spec` directly, bypassing the daemon: the reference
/// execution service outputs are compared against.
pub fn run_direct(spec: &JobSpec, seed: u64) -> Result<RunReport, RunError> {
    run_with_config(spec, build_config(spec, seed))
}

/// Runs one seed with an explicit (possibly cancellation-carrying) config.
pub(crate) fn run_with_config(spec: &JobSpec, cfg: DsmConfig) -> Result<RunReport, RunError> {
    let workload = spec.workload;
    Cluster::run(
        cfg,
        |alloc| {
            alloc
                .alloc("shared", workload.alloc_bytes())
                .expect("workload allocation fits the default segment")
        },
        move |h, &base| workload.body(h, base),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for w in [
            Workload::RacyCounter { epochs: 2 },
            Workload::DisjointGrid { epochs: 2 },
            Workload::MixedStripes { epochs: 2 },
            Workload::LockedCounter { epochs: 2 },
            Workload::SleepyGrid {
                epochs: 2,
                dwell_ms: 1,
            },
        ] {
            assert_eq!(Workload::from_name(w.name(), 2, 1), Some(w));
            assert!(w.validate().is_ok());
        }
        assert_eq!(Workload::from_name("nonsense", 2, 0), None);
        assert!(Workload::RacyCounter { epochs: 0 }.validate().is_err());
    }

    #[test]
    fn racy_counter_races_and_disjoint_grid_does_not() {
        let racy = JobSpec::new(Workload::RacyCounter { epochs: 2 }, 3, 1, 1);
        let report = run_direct(&racy, 1).expect("healthy run");
        assert!(!report.races.is_empty(), "racy_counter must race");

        let clean = JobSpec::new(Workload::DisjointGrid { epochs: 2 }, 3, 1, 1);
        let report = run_direct(&clean, 1).expect("healthy run");
        assert!(report.races.is_empty(), "disjoint_grid must not race");

        let locked = JobSpec::new(Workload::LockedCounter { epochs: 2 }, 3, 1, 1);
        let report = run_direct(&locked, 1).expect("healthy run");
        assert!(report.races.is_empty(), "locked_counter must not race");
    }

    #[test]
    fn fault_spec_builds_the_expected_plan() {
        let spec = FaultSpec {
            drop_rate: 0.1,
            corrupt_rate: 0.05,
            kill: Some(KillSpec {
                node: 1,
                at_event: 40,
            }),
            partition: Some(PartitionSpec {
                node: 0,
                at_datagram: 30,
                heal_at: Some(90),
            }),
        };
        assert!(spec.is_faulty());
        assert!(spec.validate().is_ok());
        let plan = spec.plan(9);
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.events.len(), 2, "kill and partition both planned");
        assert!((plan.drop_rate - 0.1).abs() < 1e-12);
        assert!(!FaultSpec::default().is_faulty());
        assert!(FaultSpec {
            drop_rate: 1.5,
            ..FaultSpec::default()
        }
        .validate()
        .is_err());
        // A heal point at or before the cut is a submitter error, not a
        // builder panic inside the daemon.
        assert!(FaultSpec {
            partition: Some(PartitionSpec {
                node: 0,
                at_datagram: 50,
                heal_at: Some(50),
            }),
            ..FaultSpec::default()
        }
        .validate()
        .is_err());
        let transient_only = FaultSpec {
            partition: Some(PartitionSpec {
                node: 1,
                at_datagram: 40,
                heal_at: None,
            }),
            ..FaultSpec::default()
        };
        assert!(transient_only.is_faulty());
        assert_eq!(transient_only.plan(3).events.len(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = JobSpec::new(Workload::MixedStripes { epochs: 2 }, 3, 5, 1);
        let a = run_direct(&spec, 5).expect("run a");
        let b = run_direct(&spec, 5).expect("run b");
        assert_eq!(
            a.races.fingerprints(),
            b.races.fingerprints(),
            "same (spec, seed) must reproduce the same reports"
        );
    }
}
