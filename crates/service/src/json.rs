//! Minimal JSON: a parser and writer for the line-delimited wire protocol.
//!
//! The hermetic build has no serde, so the TCP front end speaks through
//! this hand-rolled value type instead.  It covers exactly what the
//! protocol needs — objects, arrays, strings with standard escapes,
//! integers, floats, booleans, null — and rejects everything else with a
//! positioned error.  Integers are kept as `i64` (not coerced through
//! `f64`), and anything that must survive full 64-bit width (race
//! fingerprints) travels as a hex *string* by convention.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (fits `i64`).
    Int(i64),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.  `BTreeMap` keeps serialization deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    f.write_str("null") // JSON has no Inf/NaN.
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure, with the byte offset where it was diagnosed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.what)
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> ParseError {
        ParseError {
            at: self.pos,
            what: what.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates (used by real JSON for astral
                            // chars) are out of protocol scope: reject.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is a surrogate"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len()
                        && !self.bytes[end].is_ascii()
                        && (self.bytes[end] & 0xC0) == 0x80
                    {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("bad float literal"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("bad integer literal"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (text, value) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("42", Value::Int(42)),
            ("-7", Value::Int(-7)),
            ("1.5", Value::Float(1.5)),
            ("\"hi\"", Value::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), value, "parse {text}");
            assert_eq!(
                parse(&value.to_string()).unwrap(),
                value,
                "roundtrip {text}"
            );
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text = r#"{"op":"submit","nested":{"a":[1,2,3],"b":null},"ok":true}"#;
        let value = parse(text).unwrap();
        assert_eq!(value.get("op").and_then(Value::as_str), Some("submit"));
        assert_eq!(
            value
                .get("nested")
                .and_then(|n| n.get("a"))
                .and_then(Value::as_arr)
                .map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(parse(&value.to_string()).unwrap(), value);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Value::Str("line\nquote\"slash\\tab\tunicode\u{1}é".into());
        let encoded = original.to_string();
        assert_eq!(parse(&encoded).unwrap(), original);
    }

    #[test]
    fn errors_are_positioned() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "tru", "1 2", "{'a':1}"] {
            let err = parse(bad).expect_err(bad);
            assert!(err.at <= bad.len());
            assert!(!err.what.is_empty());
        }
    }

    #[test]
    fn large_integers_keep_precision() {
        // 2^60 + 1 would be mangled through f64.
        let n = (1i64 << 60) + 1;
        let text = n.to_string();
        assert_eq!(parse(&text).unwrap(), Value::Int(n));
        assert_eq!(Value::Int(n).to_string(), text);
    }

    #[test]
    fn accessor_helpers() {
        let v = parse(r#"{"n":5,"f":2.5,"s":"x","b":false,"a":[]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(5));
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(2.5));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(5.0));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("a").and_then(Value::as_arr).map(<[Value]>::len),
            Some(0)
        );
        assert!(v.get("missing").is_none());
        assert_eq!(Value::Int(-1).as_u64(), None);
    }
}
