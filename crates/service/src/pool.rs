//! Supervised worker pool: crash-isolated, deadline-bounded, retrying.
//!
//! Workers pull per-seed tasks off a shared queue and run each one under
//! full supervision:
//!
//! * **Crash isolation** — the attempt executes inside `catch_unwind` on a
//!   helper thread; a panicking run (or detector stage) becomes that
//!   seed's terminal `Failed` outcome, never a dead worker.
//! * **Deadlines** — an attempt still executing past the job's
//!   `run_deadline` has its per-attempt [`CancelToken`] fired, which
//!   drains the in-flight cluster; the overrun is counted and classified
//!   as *transient* (a retry may land under the deadline).
//! * **Retries** — transient failures ([`RunError::is_transient`]) retry
//!   under the job-wide budget with capped exponential backoff and
//!   seeded jitter (the same splitmix64 dice as the transport's fault
//!   injection, so reruns are reproducible).
//! * **Cancellation** — the job's token is observed between attempts and
//!   propagated into running clusters, so cancel latency is bounded by
//!   the cluster's own poll interval, not by run length.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use cvm_dsm::{CancelToken, DsmError};
use parking_lot::Mutex;

use crate::job::{JobState, SeedOutcome};
use crate::persist::{JournalRecord, OutcomeImage, Persist};
use crate::store::ResultStore;
use crate::workload::{build_config, run_with_config};

/// How often a supervising worker wakes to check deadline and
/// cancellation while its helper thread runs an attempt.
const SUPERVISE_TICK: Duration = Duration::from_millis(10);

/// Grace period after firing an attempt's cancel token before the worker
/// detaches the helper thread and moves on.  Covers the cluster's drain
/// path with wide margin; a helper that outlives it keeps running detached
/// and its (late) result is discarded by the job's terminal-state guard.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// One unit of pool work: run `seed` of `job` to a terminal
/// [`SeedOutcome`].
pub(crate) struct SeedTask {
    pub(crate) job: Arc<JobState>,
    pub(crate) seed: u64,
}

/// Pool-wide supervision counters.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Seed tasks brought to a terminal outcome.
    pub seeds_finished: AtomicU64,
    /// Run attempts started (including retries).
    pub attempts: AtomicU64,
    /// Attempts that ended in a caught panic.
    pub panics_caught: AtomicU64,
    /// Attempts cancelled for overrunning their deadline.
    pub deadline_overruns: AtomicU64,
    /// Transient failures that were retried.
    pub retries: AtomicU64,
    /// Helper threads detached after the drain grace expired.
    pub detached_helpers: AtomicU64,
    /// Attempts currently under supervision.  A detached helper leaves
    /// the gauge when its supervisor gives up on it — its late result is
    /// discarded anyway — so drain-time accounting can never be pinned by
    /// a straggler that will not exit.
    pub active_helpers: AtomicU64,
}

/// Point-in-time copy of [`PoolStats`], for stats queries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStatsSnapshot {
    /// Seed tasks brought to a terminal outcome.
    pub seeds_finished: u64,
    /// Run attempts started (including retries).
    pub attempts: u64,
    /// Attempts that ended in a caught panic.
    pub panics_caught: u64,
    /// Attempts cancelled for overrunning their deadline.
    pub deadline_overruns: u64,
    /// Transient failures that were retried.
    pub retries: u64,
    /// Helper threads detached after the drain grace expired.
    pub detached_helpers: u64,
    /// Attempts currently under supervision (detached helpers excluded).
    pub active_helpers: u64,
}

impl PoolStats {
    fn snapshot(&self) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            seeds_finished: self.seeds_finished.load(Ordering::Relaxed),
            attempts: self.attempts.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            deadline_overruns: self.deadline_overruns.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            detached_helpers: self.detached_helpers.load(Ordering::Relaxed),
            active_helpers: self.active_helpers.load(Ordering::Relaxed),
        }
    }
}

/// Decrements the active-helper gauge on *every* exit from supervision —
/// normal completion, cancellation, and the detach path alike.  Detach
/// used to be the leak: a supervisor walking away from a stuck helper
/// without releasing the gauge left drain deadlines counting a worker
/// that would never report back.
struct ActiveGuard<'a>(&'a AtomicU64);

impl<'a> ActiveGuard<'a> {
    fn arm(gauge: &'a AtomicU64) -> Self {
        gauge.fetch_add(1, Ordering::Relaxed);
        ActiveGuard(gauge)
    }
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Everything a worker thread needs to supervise attempts.
struct WorkerCtx {
    store: Arc<ResultStore>,
    stats: Arc<PoolStats>,
    persist: Arc<Persist>,
    drain_grace: Duration,
}

/// The pool: a fixed set of supervising workers over a shared task queue.
pub(crate) struct WorkerPool {
    tx: Option<Sender<SeedTask>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<PoolStats>,
}

impl WorkerPool {
    /// Spawns `workers` supervising threads, merging results into `store`
    /// and journaling lifecycle records through `persist`.
    pub(crate) fn new(workers: usize, store: Arc<ResultStore>, persist: Arc<Persist>) -> Self {
        WorkerPool::with_grace(workers, store, persist, DRAIN_GRACE)
    }

    /// [`new`](Self::new) with an explicit detach grace, so tests can
    /// exercise the detach path without waiting out the production 10 s.
    pub(crate) fn with_grace(
        workers: usize,
        store: Arc<ResultStore>,
        persist: Arc<Persist>,
        drain_grace: Duration,
    ) -> Self {
        let (tx, rx) = unbounded::<SeedTask>();
        // mpsc receivers are single-consumer: workers share it through a
        // mutex, holding the lock only for the dequeue itself.
        let rx = Arc::new(Mutex::new(rx));
        let stats = Arc::new(PoolStats::default());
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let ctx = WorkerCtx {
                    store: Arc::clone(&store),
                    stats: Arc::clone(&stats),
                    persist: Arc::clone(&persist),
                    drain_grace,
                };
                std::thread::Builder::new()
                    .name(format!("svc-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &ctx))
                    .expect("spawn service worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            stats,
        }
    }

    /// Enqueues one seed task.
    pub(crate) fn submit(&self, task: SeedTask) {
        if let Some(tx) = &self.tx {
            // Send only fails after shutdown dropped the receiver side,
            // and the daemon stops admitting before shutting the pool.
            let _ = tx.send(task);
        }
    }

    /// Supervision counters.
    pub(crate) fn stats(&self) -> PoolStatsSnapshot {
        self.stats.snapshot()
    }

    /// Closes the queue and joins every worker.  Already-queued tasks
    /// still run to a terminal outcome (fire the jobs' cancel tokens
    /// first for a fast drain).
    pub(crate) fn shutdown(&mut self) {
        self.tx = None; // Disconnect: workers exit once the queue drains.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<SeedTask>>, ctx: &WorkerCtx) {
    loop {
        // Dequeue under the lock, run without it.
        let task = {
            let guard = rx.lock();
            guard.recv_timeout(Duration::from_millis(20))
        };
        match task {
            Ok(task) => run_seed(&task, ctx),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// What one supervised attempt produced.
enum Attempt {
    Done(Box<cvm_dsm::RunReport>),
    /// The job's token cancelled the attempt.
    Cancelled,
    /// Failed; retryable iff `transient`.
    Failed {
        error: String,
        transient: bool,
    },
}

/// Runs `task.seed` to a terminal outcome: attempts, retries, recording.
///
/// Persistence is write-ahead throughout: the `SeedDone` record (with the
/// full outcome image — fingerprints and rendered text for a completed
/// run) is journaled *before* the in-memory store merge and the job's
/// outcome recording, so a crash at any point leaves the journal at least
/// as informed as the state it shadows.
fn run_seed(task: &SeedTask, ctx: &WorkerCtx) {
    let (store, stats) = (&ctx.store, &ctx.stats);
    let job = &task.job;
    let seed = task.seed;
    job.note_started();

    let mut retries: u32 = 0;
    let mut synthetic_left = job.spec.flaky_first;
    let (outcome, image) = loop {
        if job.cancel_requested() {
            break (SeedOutcome::Cancelled, OutcomeImage::Cancelled);
        }
        if retries > 0 {
            // Capped exponential backoff with seeded jitter, keyed so
            // each (job, seed, attempt) sleeps a reproducible interval.
            let key = splitmix64(job.id.0 ^ seed.rotate_left(17));
            std::thread::sleep(backoff_delay(u64::from(retries), key));
        }
        stats.attempts.fetch_add(1, Ordering::Relaxed);

        let attempt = if synthetic_left > 0 {
            // Scripted supervision fault: a transient failure before any
            // real run, exercising the retry path deterministically.
            synthetic_left -= 1;
            Attempt::Failed {
                error: "injected transient fault (flaky_first)".into(),
                transient: true,
            }
        } else {
            run_attempt(task, ctx)
        };

        match attempt {
            Attempt::Done(report) => {
                let image = OutcomeImage::from_report(&report, retries);
                ctx.persist.record(&JournalRecord::SeedDone {
                    job: job.id,
                    seed,
                    outcome: image.clone(),
                });
                job.note_recovery(&report.recovery);
                for evicted in store.merge(job.id, seed, &report) {
                    ctx.persist.record(&JournalRecord::Evicted { job: evicted });
                }
                break (
                    SeedOutcome::Done {
                        races: report.races.len(),
                        retries,
                    },
                    image,
                );
            }
            Attempt::Cancelled => break (SeedOutcome::Cancelled, OutcomeImage::Cancelled),
            Attempt::Failed { error, transient } => {
                if transient && job.try_consume_retry() {
                    stats.retries.fetch_add(1, Ordering::Relaxed);
                    retries += 1;
                    continue;
                }
                let image = OutcomeImage::Failed {
                    error: error.clone(),
                    transient,
                    retries,
                };
                break (
                    SeedOutcome::Failed {
                        error,
                        transient,
                        retries,
                    },
                    image,
                );
            }
        }
    };

    // The `Done` arm already journaled its record (ahead of the merge);
    // failure and cancellation images are journaled here.
    if !matches!(outcome, SeedOutcome::Done { .. }) {
        ctx.persist.record(&JournalRecord::SeedDone {
            job: job.id,
            seed,
            outcome: image,
        });
    }

    stats.seeds_finished.fetch_add(1, Ordering::Relaxed);
    if job.record_outcome(seed, outcome) {
        // Last seed recorded: the job just went terminal.
        ctx.persist.record(&JournalRecord::Sealed { job: job.id });
        for evicted in store.seal(job.id) {
            ctx.persist.record(&JournalRecord::Evicted { job: evicted });
        }
    }
}

/// One crash-isolated, deadline-supervised attempt.
fn run_attempt(task: &SeedTask, ctx: &WorkerCtx) -> Attempt {
    let stats = &ctx.stats;
    let job = &task.job;
    let seed = task.seed;
    let _active = ActiveGuard::arm(&stats.active_helpers);
    let attempt_cancel = CancelToken::new();
    let mut cfg = build_config(&job.spec, seed);
    cfg.cancel = Some(attempt_cancel.clone());

    let (tx, rx) = std::sync::mpsc::channel();
    let spec = job.spec.clone();
    let helper = std::thread::Builder::new()
        .name(format!("svc-run-{}-s{seed}", job.id))
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| run_with_config(&spec, cfg)));
            let _ = tx.send(result);
        })
        .expect("spawn attempt helper");

    let started = Instant::now();
    let deadline = job.spec.run_deadline;
    let mut cancelled_for = None::<Attempt>; // Why we fired the token.
    loop {
        match rx.recv_timeout(SUPERVISE_TICK) {
            Ok(result) => {
                let _ = helper.join();
                let outcome = match result {
                    Ok(Ok(report)) => Attempt::Done(Box::new(report)),
                    Ok(Err(err)) => {
                        if err.error == DsmError::Cancelled {
                            // We fired the token; report the reason, not
                            // the sentinel error.
                            cancelled_for.unwrap_or(Attempt::Cancelled)
                        } else {
                            Attempt::Failed {
                                error: err.to_string(),
                                transient: err.is_transient(),
                            }
                        }
                    }
                    Err(payload) => {
                        stats.panics_caught.fetch_add(1, Ordering::Relaxed);
                        Attempt::Failed {
                            error: format!("run panicked: {}", panic_text(&payload)),
                            transient: false,
                        }
                    }
                };
                return outcome;
            }
            Err(RecvTimeoutError::Timeout) => {
                if let Some(why) = cancelled_for.take() {
                    if started.elapsed() > deadline + ctx.drain_grace {
                        // The cluster refused to drain: detach the helper
                        // and report; a late duplicate recording is
                        // rejected by the job's terminal-state guard.
                        stats.detached_helpers.fetch_add(1, Ordering::Relaxed);
                        return why;
                    }
                    cancelled_for = Some(why);
                    continue;
                }
                if job.cancel_requested() {
                    attempt_cancel.cancel();
                    cancelled_for = Some(Attempt::Cancelled);
                } else if started.elapsed() > deadline {
                    stats.deadline_overruns.fetch_add(1, Ordering::Relaxed);
                    job.note_overrun();
                    attempt_cancel.cancel();
                    cancelled_for = Some(Attempt::Failed {
                        error: format!("run overran its {}ms deadline", deadline.as_millis()),
                        transient: true, // A retry may land under it.
                    });
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // The helper died without sending: catch_unwind makes
                // this unreachable short of an abort, but classify it
                // terminally rather than looping forever.
                return Attempt::Failed {
                    error: "attempt helper vanished".into(),
                    transient: false,
                };
            }
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}

/// Capped exponential backoff with seeded jitter (mirrors the cluster's
/// node-restart backoff construction).
fn backoff_delay(attempt: u64, seed: u64) -> Duration {
    const CAP_MS: u64 = 64;
    let step_ms = (1u64 << attempt.saturating_sub(1).min(6)).min(CAP_MS);
    let jitter_us =
        splitmix64(seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % (step_ms * 500);
    Duration::from_micros(step_ms * 1000 - jitter_us)
}

/// SplitMix64 finalizer: one u64 in, one well-mixed u64 out.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobPhase, JobSpec};
    use crate::workload::Workload;

    fn pool_and_store(workers: usize) -> (WorkerPool, Arc<ResultStore>) {
        let store = Arc::new(ResultStore::new(u64::MAX));
        (
            WorkerPool::new(workers, Arc::clone(&store), Persist::disabled()),
            store,
        )
    }

    fn wait_terminal(job: &Arc<JobState>, budget: Duration) {
        let start = Instant::now();
        while !job.is_terminal() {
            assert!(
                start.elapsed() < budget,
                "job never reached a terminal state"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn runs_a_job_to_done_and_dedups() {
        let (pool, store) = pool_and_store(2);
        let spec = JobSpec::new(Workload::RacyCounter { epochs: 2 }, 2, 1, 3);
        let job = Arc::new(JobState::new(JobId(1), spec));
        for seed in job.spec.seeds() {
            pool.submit(SeedTask {
                job: Arc::clone(&job),
                seed,
            });
        }
        wait_terminal(&job, Duration::from_secs(30));
        let snap = job.snapshot();
        assert_eq!(snap.phase, JobPhase::Done);
        assert_eq!(snap.seeds_done, 3);
        let races = store.races(JobId(1)).expect("sealed results");
        assert!(!races.races.is_empty(), "racy_counter must race");
        assert!(
            races.reports_merged > races.races.len() as u64,
            "3 seeds dedup"
        );
    }

    #[test]
    fn flaky_first_retries_then_succeeds() {
        let (pool, _store) = pool_and_store(1);
        let mut spec = JobSpec::new(Workload::DisjointGrid { epochs: 1 }, 2, 5, 1);
        spec.flaky_first = 2;
        spec.retry_budget = 3;
        let job = Arc::new(JobState::new(JobId(2), spec));
        pool.submit(SeedTask {
            job: Arc::clone(&job),
            seed: 5,
        });
        wait_terminal(&job, Duration::from_secs(30));
        let snap = job.snapshot();
        assert_eq!(snap.phase, JobPhase::Done);
        assert_eq!(snap.retries, 2, "both injected faults retried");
        assert_eq!(
            job.outcome(5),
            Some(SeedOutcome::Done {
                races: 0,
                retries: 2
            })
        );
        assert_eq!(pool.stats().retries, 2);
    }

    #[test]
    fn exhausted_budget_turns_transient_into_failed() {
        let (pool, _store) = pool_and_store(1);
        let mut spec = JobSpec::new(Workload::DisjointGrid { epochs: 1 }, 2, 5, 1);
        spec.flaky_first = 5;
        spec.retry_budget = 2;
        let job = Arc::new(JobState::new(JobId(3), spec));
        pool.submit(SeedTask {
            job: Arc::clone(&job),
            seed: 5,
        });
        wait_terminal(&job, Duration::from_secs(30));
        let snap = job.snapshot();
        assert_eq!(snap.phase, JobPhase::Failed);
        assert_eq!(snap.retries, 2);
        match job.outcome(5) {
            Some(SeedOutcome::Failed {
                transient, retries, ..
            }) => {
                assert!(transient, "final failure was transient, budget spent");
                assert_eq!(retries, 2);
            }
            other => panic!("expected Failed outcome, got {other:?}"),
        }
    }

    #[test]
    fn stage_panic_is_caught_and_terminal() {
        let (pool, _store) = pool_and_store(1);
        let mut spec = JobSpec::new(Workload::DisjointGrid { epochs: 3 }, 2, 9, 1);
        spec.pipelined = true;
        spec.stage_panic_epoch = Some(1);
        let job = Arc::new(JobState::new(JobId(4), spec));
        pool.submit(SeedTask {
            job: Arc::clone(&job),
            seed: 9,
        });
        wait_terminal(&job, Duration::from_secs(30));
        let snap = job.snapshot();
        assert_eq!(snap.phase, JobPhase::Failed);
        assert_eq!(snap.retries, 0, "panics are terminal, never retried");
        let err = snap.first_error.expect("error recorded");
        assert!(
            err.contains("panic") || err.contains("stage"),
            "error names the panic: {err}"
        );
    }

    #[test]
    fn deadline_overrun_is_transient_and_counted() {
        let (pool, _store) = pool_and_store(1);
        let mut spec = JobSpec::new(
            Workload::SleepyGrid {
                epochs: 50,
                dwell_ms: 100,
            },
            2,
            3,
            1,
        );
        spec.run_deadline = Duration::from_millis(150);
        spec.retry_budget = 1;
        let job = Arc::new(JobState::new(JobId(5), spec));
        pool.submit(SeedTask {
            job: Arc::clone(&job),
            seed: 3,
        });
        wait_terminal(&job, Duration::from_secs(60));
        let snap = job.snapshot();
        assert_eq!(snap.phase, JobPhase::Failed);
        assert!(
            snap.deadline_overruns >= 2,
            "first try and the one retry overrun"
        );
        assert_eq!(snap.retries, 1, "overrun consumed the retry budget");
        let err = snap.first_error.expect("error recorded");
        assert!(err.contains("deadline"), "error names the overrun: {err}");
    }

    #[test]
    fn cancellation_reaches_queued_and_running_seeds() {
        let (pool, _store) = pool_and_store(1);
        // Long-dwell runs on one worker: later seeds sit queued while the
        // first runs.
        let spec = JobSpec::new(
            Workload::SleepyGrid {
                epochs: 100,
                dwell_ms: 50,
            },
            2,
            1,
            3,
        );
        let job = Arc::new(JobState::new(JobId(6), spec));
        for seed in job.spec.seeds() {
            pool.submit(SeedTask {
                job: Arc::clone(&job),
                seed,
            });
        }
        std::thread::sleep(Duration::from_millis(100));
        job.cancel();
        wait_terminal(&job, Duration::from_secs(30));
        let snap = job.snapshot();
        assert_eq!(snap.phase, JobPhase::Cancelled);
        assert_eq!(
            snap.seeds_cancelled, 3,
            "running and queued seeds cancelled"
        );
    }

    #[test]
    fn shutdown_finishes_queued_work() {
        let (mut pool, _store) = pool_and_store(2);
        let spec = JobSpec::new(Workload::DisjointGrid { epochs: 1 }, 2, 1, 4);
        let job = Arc::new(JobState::new(JobId(7), spec));
        for seed in job.spec.seeds() {
            pool.submit(SeedTask {
                job: Arc::clone(&job),
                seed,
            });
        }
        pool.shutdown();
        // Shutdown drains the queue before joining: all seeds terminal.
        assert!(job.is_terminal());
        assert_eq!(job.snapshot().phase, JobPhase::Done);
    }

    #[test]
    fn detached_helper_releases_the_active_gauge() {
        // A short grace plus a workload that dwells far past it forces
        // the detach path: the supervisor walks away from the helper.
        let store = Arc::new(ResultStore::new(u64::MAX));
        let pool = WorkerPool::with_grace(
            1,
            Arc::clone(&store),
            Persist::disabled(),
            Duration::from_millis(50),
        );
        let mut spec = JobSpec::new(
            Workload::SleepyGrid {
                epochs: 1,
                dwell_ms: 400,
            },
            2,
            3,
            1,
        );
        spec.run_deadline = Duration::from_millis(50);
        spec.retry_budget = 0;
        let job = Arc::new(JobState::new(JobId(8), spec));
        pool.submit(SeedTask {
            job: Arc::clone(&job),
            seed: 3,
        });
        wait_terminal(&job, Duration::from_secs(30));
        assert_eq!(job.snapshot().phase, JobPhase::Failed);
        let stats = pool.stats();
        assert!(
            stats.detached_helpers >= 1,
            "dwell past grace must detach: {stats:?}"
        );
        assert_eq!(
            stats.active_helpers, 0,
            "a detached helper must still release the active gauge"
        );
    }

    #[test]
    fn backoff_is_capped_and_deterministic() {
        for attempt in 1..12u64 {
            let d = backoff_delay(attempt, 42);
            assert!(d <= Duration::from_millis(64));
            assert_eq!(d, backoff_delay(attempt, 42));
        }
        assert_ne!(backoff_delay(3, 1), backoff_delay(3, 2), "jitter is keyed");
    }
}
