//! The race-hunt daemon: admission, lifecycle, queries, graceful drain.
//!
//! A [`Daemon`] owns the job table (the [`StateMap`] idiom), the bounded
//! [`ResultStore`], and the supervised [`WorkerPool`].  It is cheaply
//! cloneable — every front end (in-process handles, the TCP listener's
//! connection threads) holds a clone and the shared interior does the
//! synchronization.
//!
//! Admission is *bounded*: at most `queue_capacity` jobs may be
//! non-terminal at once; excess submissions are rejected with
//! [`SubmitError::QueueFull`] rather than queued without limit, keeping
//! the daemon's memory and latency under overload a function of its
//! configuration, not its callers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cvm_dsm::DsmError;
use parking_lot::Mutex;

use crate::job::{JobId, JobSnapshot, JobSpec, JobState};
use crate::persist::{JournalRecord, OutcomeImage, Persist, PersistConfig, PersistStatsSnapshot};
use crate::pool::{PoolStatsSnapshot, SeedTask, WorkerPool};
use crate::statemap::StateMap;
use crate::store::{JobRaces, ResultStore, StoreStats};

/// Daemon sizing knobs.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Supervising worker threads.
    pub workers: usize,
    /// Maximum non-terminal jobs admitted at once.
    pub queue_capacity: usize,
    /// Byte budget of the deduplicated result store.
    pub store_budget_bytes: u64,
    /// Durability: data directory, fsync policy, compaction interval.
    /// The default (`data_dir: None`) keeps the daemon purely in-memory.
    pub persist: PersistConfig,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: 4,
            queue_capacity: 64,
            store_budget_bytes: 16 << 20,
            persist: PersistConfig::default(),
        }
    }
}

/// Why a submission was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The spec failed validation.
    Invalid(String),
    /// The admission bound is full: retry after jobs finish.
    QueueFull {
        /// Non-terminal jobs currently admitted.
        active: usize,
        /// The admission bound.
        capacity: usize,
    },
    /// The daemon is draining and admits nothing new.
    Draining,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(why) => write!(f, "invalid job spec: {why}"),
            SubmitError::QueueFull { active, capacity } => {
                write!(f, "queue full: {active} active jobs at capacity {capacity}")
            }
            SubmitError::Draining => write!(f, "daemon is draining"),
        }
    }
}

/// Daemon-wide counters for the `stats` query.
#[derive(Clone, Debug)]
pub struct DaemonStats {
    /// Jobs admitted since start.
    pub jobs_submitted: u64,
    /// Submissions rejected (validation, queue-full, or draining).
    pub jobs_rejected: u64,
    /// Jobs currently non-terminal.
    pub jobs_active: usize,
    /// Whether the daemon is draining.
    pub draining: bool,
    /// Pool supervision counters.
    pub pool: PoolStatsSnapshot,
    /// Result-store counters.
    pub store: StoreStats,
    /// Durability counters (all zero when persistence is disabled).
    pub persist: PersistStatsSnapshot,
}

/// Outcome of a graceful drain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs that were still running at the deadline and had to be
    /// cancelled.
    pub jobs_cancelled: usize,
    /// Whether every admitted job reached a terminal phase by return.
    pub clean: bool,
    /// Durability counters at drain completion (after the final
    /// compaction).
    pub persist: PersistStatsSnapshot,
}

struct DaemonInner {
    cfg: DaemonConfig,
    jobs: StateMap<JobId, JobState>,
    store: Arc<ResultStore>,
    persist: Arc<Persist>,
    pool: Mutex<WorkerPool>,
    next_id: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    draining: AtomicBool,
    /// Serializes admission so the bound cannot be raced past.
    admit: Mutex<()>,
}

/// Handle to a running daemon.  Clone freely; drop of the last clone
/// shuts the pool down (queued work still completes — use
/// [`drain`](Daemon::drain) for a bounded, observable shutdown).
#[derive(Clone)]
pub struct Daemon {
    inner: Arc<DaemonInner>,
}

impl Daemon {
    /// Starts a daemon with `cfg`.  Infallible for in-memory daemons;
    /// panics if a configured data directory cannot be opened (use
    /// [`open`](Daemon::open) to handle that as an error).
    pub fn start(cfg: DaemonConfig) -> Daemon {
        Daemon::open(cfg).expect("open daemon data directory")
    }

    /// Opens a daemon, recovering durable state when `cfg.persist` names
    /// a data directory: the snapshot is loaded, the journal replayed
    /// (torn tails truncated and counted, never panicked on), sealed
    /// results are restored byte-identical from their journaled
    /// fingerprints, and jobs that were still running at crash time are
    /// re-admitted through the normal pool path — only their seeds
    /// *without* a journaled outcome run again.
    ///
    /// # Errors
    ///
    /// [`DsmError::Persist`] when the data directory or its files cannot
    /// be created or opened.
    pub fn open(cfg: DaemonConfig) -> Result<Daemon, DsmError> {
        let (persist, shadow) = Persist::open(&cfg.persist)?;
        let store = Arc::new(ResultStore::new(cfg.store_budget_bytes));

        // Restore sealed (and partially-merged) results from journaled
        // fingerprints: completed seeds are never recomputed.
        for (&id, sj) in &shadow.jobs {
            if sj.evicted || !sj.has_store_entry() {
                continue;
            }
            let (races, merged) = sj.replay_races();
            store.restore_job(JobId(id), races, merged, sj.sealed);
        }
        store.restore_meta(
            shadow.sealed_order.iter().map(|&id| JobId(id)).collect(),
            shadow.jobs_evicted,
        );

        let pool = WorkerPool::new(cfg.workers, Arc::clone(&store), Arc::clone(&persist));
        let jobs: StateMap<JobId, JobState> = StateMap::new();

        // Rebuild job lifecycle state and collect the seeds still owed.
        let mut pending: Vec<SeedTask> = Vec::new();
        let mut recovered_jobs = 0u64;
        for (&id, sj) in &shadow.jobs {
            let id = JobId(id);
            let job = jobs.insert(id, JobState::new(id, sj.spec.clone()));
            job.mark_recovered();
            if !sj.order.is_empty() {
                job.note_started();
            }
            let mut retries_consumed = 0u64;
            for seed in &sj.order {
                let img = &sj.outcomes[seed];
                retries_consumed += img.retries();
                if let OutcomeImage::Done { recovery, .. } = img {
                    let stats = cvm_dsm::RecoveryStats {
                        partitions_healed: recovery[0],
                        stale_msgs_fenced: recovery[1],
                        quorum_losses: recovery[2],
                        rejoin_restores: recovery[3],
                        ..cvm_dsm::RecoveryStats::default()
                    };
                    job.note_recovery(&stats);
                }
                job.record_outcome(*seed, img.to_outcome());
            }
            job.restore_retries(retries_consumed);
            if sj.cancelled {
                job.cancel();
            }
            if job.is_terminal() {
                // Terminal but never sealed: the crash hit between the
                // last outcome record and the seal.  Finish the seal now.
                if !sj.sealed {
                    persist.record(&JournalRecord::Sealed { job: id });
                    for evicted in store.seal(id) {
                        persist.record(&JournalRecord::Evicted { job: evicted });
                    }
                }
            } else {
                recovered_jobs += 1;
                for seed in job.spec.seeds() {
                    if !sj.outcomes.contains_key(&seed) {
                        pending.push(SeedTask {
                            job: Arc::clone(&job),
                            seed,
                        });
                    }
                }
            }
        }
        persist.note_recovered_jobs(recovered_jobs);

        let submitted = shadow.jobs.len() as u64;
        let daemon = Daemon {
            inner: Arc::new(DaemonInner {
                next_id: AtomicU64::new(shadow.next_job.max(1)),
                cfg,
                jobs,
                store,
                persist,
                pool: Mutex::new(pool),
                submitted: AtomicU64::new(submitted),
                rejected: AtomicU64::new(0),
                draining: AtomicBool::new(false),
                admit: Mutex::new(()),
            }),
        };
        // Re-admit the owed seeds through the normal pool path.
        {
            let pool = daemon.inner.pool.lock();
            for task in pending {
                pool.submit(task);
            }
        }
        Ok(daemon)
    }

    /// Validates and admits `spec`, expanding it onto the pool.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let inner = &self.inner;
        let result = (|| {
            if inner.draining.load(Ordering::SeqCst) {
                return Err(SubmitError::Draining);
            }
            spec.validate().map_err(SubmitError::Invalid)?;
            // Admission check and insert under one lock: concurrent
            // submitters cannot both squeeze into the last slot.
            let _admit = inner.admit.lock();
            let active = self.active_jobs();
            if active >= inner.cfg.queue_capacity {
                return Err(SubmitError::QueueFull {
                    active,
                    capacity: inner.cfg.queue_capacity,
                });
            }
            let id = JobId(inner.next_id.fetch_add(1, Ordering::SeqCst));
            let job = inner.jobs.insert(id, JobState::new(id, spec));
            // Write-ahead: the admission is durable before any seed runs.
            inner.persist.record(&JournalRecord::Submitted {
                job: id,
                spec: job.spec.clone(),
            });
            let pool = inner.pool.lock();
            for seed in job.spec.seeds() {
                pool.submit(SeedTask {
                    job: Arc::clone(&job),
                    seed,
                });
            }
            Ok(id)
        })();
        match &result {
            Ok(_) => inner.submitted.fetch_add(1, Ordering::Relaxed),
            Err(_) => inner.rejected.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Status snapshot of `id`, with the store's distinct-race count
    /// folded in.
    pub fn status(&self, id: JobId) -> Option<JobSnapshot> {
        let job = self.inner.jobs.get(&id)?;
        let mut snap = job.snapshot();
        snap.distinct_races = self.inner.store.distinct_count(id);
        Some(snap)
    }

    /// All jobs' snapshots, in submission order.
    pub fn jobs(&self) -> Vec<JobSnapshot> {
        self.inner
            .jobs
            .entries()
            .into_iter()
            .map(|(id, job)| {
                let mut snap = job.snapshot();
                snap.distinct_races = self.inner.store.distinct_count(id);
                snap
            })
            .collect()
    }

    /// Requests cancellation of `id`; `false` when unknown.  Terminal
    /// jobs are unaffected (cancel is idempotent and never regresses a
    /// phase).
    pub fn cancel(&self, id: JobId) -> bool {
        match self.inner.jobs.get(&id) {
            Some(job) => {
                self.inner
                    .persist
                    .record(&JournalRecord::Cancelled { job: id });
                job.cancel();
                true
            }
            None => false,
        }
    }

    /// Deduplicated races of `id`: `None` while unknown or evicted.
    pub fn races(&self, id: JobId) -> Option<JobRaces> {
        self.inner.store.races(id)
    }

    /// Daemon-wide counters.
    pub fn stats(&self) -> DaemonStats {
        let inner = &self.inner;
        DaemonStats {
            jobs_submitted: inner.submitted.load(Ordering::Relaxed),
            jobs_rejected: inner.rejected.load(Ordering::Relaxed),
            jobs_active: self.active_jobs(),
            draining: inner.draining.load(Ordering::SeqCst),
            pool: inner.pool.lock().stats(),
            store: inner.store.stats(),
            persist: inner.persist.stats(),
        }
    }

    /// Whether the daemon is draining (new submissions are rejected).
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Graceful drain: stop admission, give in-flight jobs `deadline` to
    /// finish, cancel stragglers, and shut the pool down.  Every admitted
    /// job is terminal when this returns (enforced by the pool's own
    /// bounded attempt supervision).
    pub fn drain(&self, deadline: Duration) -> DrainReport {
        let inner = &self.inner;
        inner.draining.store(true, Ordering::SeqCst);

        let waited = Instant::now();
        while self.active_jobs() > 0 && waited.elapsed() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }

        // Cancel whatever outlived the deadline; their runs drain via the
        // cancellation token within the pool's supervision bounds.
        let mut cancelled = 0usize;
        for (_, job) in inner.jobs.entries() {
            if !job.is_terminal() {
                job.cancel();
                cancelled += 1;
            }
        }

        // Closing the queue and joining the workers forces every queued
        // and running seed to a terminal outcome.
        inner.pool.lock().shutdown();
        // Fold the whole journal into a snapshot: the next open replays a
        // compact image instead of the full record stream.
        inner.persist.compact_now();
        DrainReport {
            jobs_cancelled: cancelled,
            clean: cancelled == 0 && self.active_jobs() == 0,
            persist: inner.persist.stats(),
        }
    }

    fn active_jobs(&self) -> usize {
        self.inner
            .jobs
            .entries()
            .iter()
            .filter(|(_, job)| !job.is_terminal())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobPhase;
    use crate::workload::Workload;

    fn wait_phase(daemon: &Daemon, id: JobId, budget: Duration) -> JobSnapshot {
        let start = Instant::now();
        loop {
            let snap = daemon.status(id).expect("job known");
            if snap.phase.is_terminal() {
                return snap;
            }
            assert!(start.elapsed() < budget, "job {id} never went terminal");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn submit_run_query_roundtrip() {
        let daemon = Daemon::start(DaemonConfig {
            workers: 2,
            ..DaemonConfig::default()
        });
        let spec = JobSpec::new(Workload::RacyCounter { epochs: 2 }, 2, 1, 2);
        let id = daemon.submit(spec).expect("admitted");
        let snap = wait_phase(&daemon, id, Duration::from_secs(30));
        assert_eq!(snap.phase, JobPhase::Done);
        assert_eq!(snap.seeds_done, 2);
        assert!(snap.distinct_races > 0);
        let races = daemon.races(id).expect("results retained");
        assert_eq!(races.races.len(), snap.distinct_races);
        let stats = daemon.stats();
        assert_eq!(stats.jobs_submitted, 1);
        assert_eq!(stats.jobs_active, 0);
    }

    #[test]
    fn invalid_specs_are_rejected_not_run() {
        let daemon = Daemon::start(DaemonConfig::default());
        let mut spec = JobSpec::new(Workload::RacyCounter { epochs: 1 }, 2, 1, 1);
        spec.nprocs = 0;
        match daemon.submit(spec) {
            Err(SubmitError::Invalid(why)) => assert!(why.contains("nprocs")),
            other => panic!("expected Invalid, got {other:?}"),
        }
        assert_eq!(daemon.stats().jobs_rejected, 1);
        assert!(daemon.jobs().is_empty());
    }

    #[test]
    fn admission_is_bounded() {
        let daemon = Daemon::start(DaemonConfig {
            workers: 1,
            queue_capacity: 2,
            ..DaemonConfig::default()
        });
        // Slow jobs occupy both slots.
        let slow = JobSpec::new(
            Workload::SleepyGrid {
                epochs: 40,
                dwell_ms: 50,
            },
            2,
            1,
            1,
        );
        let a = daemon.submit(slow.clone()).expect("slot 1");
        let b = daemon.submit(slow.clone()).expect("slot 2");
        match daemon.submit(slow.clone()) {
            Err(SubmitError::QueueFull { active, capacity }) => {
                assert_eq!((active, capacity), (2, 2));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        daemon.cancel(a);
        daemon.cancel(b);
        wait_phase(&daemon, a, Duration::from_secs(30));
        wait_phase(&daemon, b, Duration::from_secs(30));
        // Slots freed: admission opens again.
        let c = daemon
            .submit(JobSpec::new(Workload::DisjointGrid { epochs: 1 }, 2, 1, 1))
            .expect("slot reopened");
        wait_phase(&daemon, c, Duration::from_secs(30));
    }

    #[test]
    fn cancel_is_idempotent_and_unknown_is_false() {
        let daemon = Daemon::start(DaemonConfig::default());
        assert!(!daemon.cancel(JobId(99)));
        let id = daemon
            .submit(JobSpec::new(Workload::DisjointGrid { epochs: 1 }, 2, 1, 1))
            .expect("admitted");
        let snap = wait_phase(&daemon, id, Duration::from_secs(30));
        assert_eq!(snap.phase, JobPhase::Done);
        // Cancelling a terminal job is accepted but changes nothing.
        assert!(daemon.cancel(id));
        assert_eq!(daemon.status(id).unwrap().phase, JobPhase::Done);
    }

    #[test]
    fn drain_rejects_new_work_and_terminates_everything() {
        let daemon = Daemon::start(DaemonConfig {
            workers: 2,
            ..DaemonConfig::default()
        });
        let slow = JobSpec::new(
            Workload::SleepyGrid {
                epochs: 100,
                dwell_ms: 50,
            },
            2,
            1,
            2,
        );
        let id = daemon.submit(slow.clone()).expect("admitted");
        // Short deadline: the slow job must be cancelled, not waited out.
        let report = daemon.drain(Duration::from_millis(100));
        assert_eq!(report.jobs_cancelled, 1);
        assert!(!report.clean);
        assert!(daemon.status(id).unwrap().phase.is_terminal());
        assert_eq!(daemon.submit(slow), Err(SubmitError::Draining));
        assert!(daemon.stats().draining);
    }

    #[test]
    fn drain_of_an_idle_daemon_is_clean() {
        let daemon = Daemon::start(DaemonConfig::default());
        let id = daemon
            .submit(JobSpec::new(Workload::DisjointGrid { epochs: 1 }, 2, 1, 1))
            .expect("admitted");
        wait_phase(&daemon, id, Duration::from_secs(30));
        let report = daemon.drain(Duration::from_secs(5));
        assert!(report.clean);
        assert_eq!(report.jobs_cancelled, 0);
    }
}
