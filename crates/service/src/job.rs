//! Detection jobs: specification, lifecycle state machine, and per-seed
//! outcomes.
//!
//! A *job* names a workload, a cluster configuration, a fault plan, and a
//! seed range; the daemon expands it into one deterministic
//! [`Cluster::run`](cvm_dsm::Cluster::run) per seed.  The lifecycle is a
//! strict machine — `Queued → Running → {Done, Failed, Cancelled}` — with
//! every transition taken under the job's lock, so observers can never see
//! a terminal job regress or a cancelled job complete.

use std::fmt;
use std::time::{Duration, Instant};

use cvm_dsm::{CancelToken, Protocol, RecoveryPolicy};
use parking_lot::Mutex;

use crate::workload::{FaultSpec, Workload};

/// Identifier of one submitted job (daemon-assigned, monotonically
/// increasing).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Everything needed to expand a job into per-seed detection runs.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// The named workload to hunt races in.
    pub workload: Workload,
    /// Cluster size for every run.
    pub nprocs: usize,
    /// Coherence protocol.
    pub protocol: Protocol,
    /// Pipelined detection epochs (reports stay byte-identical).
    pub pipelined: bool,
    /// What a run does when one of its nodes dies.
    pub recovery: RecoveryPolicy,
    /// Wire faults injected into every run, keyed by the run's seed.
    pub fault: FaultSpec,
    /// First seed of the range.
    pub seed_base: u64,
    /// Number of seeds (runs) in the job.
    pub seed_count: u32,
    /// Per-run wall-clock deadline: an attempt still executing past this
    /// bound is cancelled and classified as a transient overrun.
    pub run_deadline: Duration,
    /// Job-wide budget of transient-failure retries.  Each retried attempt
    /// consumes one; an exhausted budget turns the next transient failure
    /// into that seed's terminal outcome.
    pub retry_budget: u32,
    /// Fault injection for supervision tests: synthesize this many
    /// transient failures per seed *before* the first real attempt runs.
    /// `0` (the default) injects nothing.
    pub flaky_first: u32,
    /// Fault injection: panic the pipelined detection stage thread at this
    /// epoch (forwarded to
    /// [`DetectConfig::stage_panic_epoch`](cvm_dsm::DetectConfig)).
    pub stage_panic_epoch: Option<u64>,
}

impl JobSpec {
    /// A job running `workload` on `nprocs` processes over `seed_count`
    /// seeds starting at `seed_base`, with service defaults everywhere
    /// else: single-writer protocol, synchronous master, abort-on-failure,
    /// clean wire, 30 s per-run deadline, 3 retries.
    pub fn new(workload: Workload, nprocs: usize, seed_base: u64, seed_count: u32) -> Self {
        JobSpec {
            workload,
            nprocs,
            protocol: Protocol::SingleWriter,
            pipelined: false,
            recovery: RecoveryPolicy::Abort,
            fault: FaultSpec::default(),
            seed_base,
            seed_count,
            run_deadline: Duration::from_secs(30),
            retry_budget: 3,
            flaky_first: 0,
            stage_panic_epoch: None,
        }
    }

    /// The seeds this job expands into.
    pub fn seeds(&self) -> impl Iterator<Item = u64> + '_ {
        (0..u64::from(self.seed_count)).map(|i| self.seed_base.wrapping_add(i))
    }

    /// Validates the spec, returning a human-readable complaint for the
    /// submitter instead of panicking inside the daemon.
    pub fn validate(&self) -> Result<(), String> {
        if self.nprocs == 0 {
            return Err("nprocs must be at least 1".into());
        }
        if self.nprocs > 64 {
            return Err("nprocs above 64 is not a service-shaped job".into());
        }
        if self.seed_count == 0 {
            return Err("seed_count must be at least 1".into());
        }
        if self.seed_count > 10_000 {
            return Err("seed_count above 10000 per job; split the range".into());
        }
        if self.run_deadline < Duration::from_millis(1) {
            return Err("run_deadline below 1ms cannot admit any run".into());
        }
        self.workload.validate()?;
        self.fault.validate()?;
        if let Some(kill) = &self.fault.kill {
            if usize::from(kill.node) >= self.nprocs {
                return Err(format!(
                    "kill targets node {} outside the {}-process cluster",
                    kill.node, self.nprocs
                ));
            }
        }
        if let Some(p) = &self.fault.partition {
            if usize::from(p.node) >= self.nprocs {
                return Err(format!(
                    "partition targets node {} outside the {}-process cluster",
                    p.node, self.nprocs
                ));
            }
        }
        Ok(())
    }
}

/// Lifecycle phase of a job.  Transitions only ever move rightward:
/// `Queued → Running → {Done, Failed, Cancelled}`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobPhase {
    /// Accepted, no seed started yet.
    Queued,
    /// At least one seed run has started.
    Running,
    /// Every seed completed successfully.
    Done,
    /// Terminal: at least one seed failed (the others still ran).
    Failed,
    /// Terminal: cancelled before all seeds completed.
    Cancelled,
}

impl JobPhase {
    /// Whether the phase is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobPhase::Done | JobPhase::Failed | JobPhase::Cancelled
        )
    }

    /// Lower-case name for the wire protocol.
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
            JobPhase::Cancelled => "cancelled",
        }
    }
}

/// Terminal outcome of one seed's run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeedOutcome {
    /// The run completed; its deduplicated race fingerprints were merged
    /// into the job's result entry.
    Done {
        /// Race reports the run produced (pre-dedup).
        races: usize,
        /// Attempts beyond the first this seed consumed.
        retries: u32,
    },
    /// The run failed terminally (or exhausted the retry budget).
    Failed {
        /// Rendered error.
        error: String,
        /// Whether the *final* failure was transient (budget exhausted)
        /// rather than terminal by classification.
        transient: bool,
        /// Attempts beyond the first this seed consumed.
        retries: u32,
    },
    /// The job was cancelled before this seed completed.
    Cancelled,
}

/// Point-in-time snapshot of a job's status (what `status` queries and the
/// TCP front end return).
#[derive(Clone, Debug)]
pub struct JobSnapshot {
    /// The job.
    pub id: JobId,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Seeds in the job.
    pub seeds_total: u32,
    /// Seeds that completed successfully.
    pub seeds_done: u32,
    /// Seeds that ended in a terminal failure.
    pub seeds_failed: u32,
    /// Seeds cancelled before completion.
    pub seeds_cancelled: u32,
    /// Transient-failure retries consumed (job-wide).
    pub retries: u64,
    /// Run attempts cancelled for overrunning the per-run deadline.
    pub deadline_overruns: u64,
    /// First error any seed surfaced, rendered.
    pub first_error: Option<String>,
    /// Distinct race fingerprints accumulated so far.
    pub distinct_races: usize,
    /// Transient partitions observed healed, summed over completed runs.
    pub partitions_healed: u64,
    /// Stale-term master messages fenced, summed over completed runs.
    pub stale_msgs_fenced: u64,
    /// Master seats abandoned for lack of an ack quorum, summed over
    /// completed runs.
    pub quorum_losses: u64,
    /// Cut-time masters restored back in as workers, summed over
    /// completed runs.
    pub rejoin_restores: u64,
    /// Whether this job was rebuilt from the durable journal after a
    /// daemon restart (its journaled seed outcomes were replayed, not
    /// recomputed).
    pub recovered: bool,
}

/// Internal mutable job state, guarded by the job's lock.
#[derive(Debug)]
pub(crate) struct JobInner {
    pub(crate) phase: JobPhase,
    pub(crate) seeds_done: u32,
    pub(crate) seeds_failed: u32,
    pub(crate) seeds_cancelled: u32,
    pub(crate) retries: u64,
    pub(crate) deadline_overruns: u64,
    pub(crate) retry_budget_left: u32,
    pub(crate) partitions_healed: u64,
    pub(crate) stale_msgs_fenced: u64,
    pub(crate) quorum_losses: u64,
    pub(crate) rejoin_restores: u64,
    pub(crate) first_error: Option<String>,
    pub(crate) recovered: bool,
    pub(crate) outcomes: std::collections::BTreeMap<u64, SeedOutcome>,
    pub(crate) started: Option<Instant>,
    pub(crate) finished: Option<Instant>,
}

/// One submitted job: spec, lifecycle state, and the cancellation token
/// shared with every in-flight run of the job.
#[derive(Debug)]
pub struct JobState {
    /// The job's identity.
    pub id: JobId,
    /// The submitted specification.
    pub spec: JobSpec,
    /// Fired by [`cancel`](JobState::cancel); every run's `DsmConfig`
    /// carries a clone, so in-flight clusters drain promptly.
    pub(crate) cancel: CancelToken,
    pub(crate) inner: Mutex<JobInner>,
}

impl JobState {
    pub(crate) fn new(id: JobId, spec: JobSpec) -> Self {
        let budget = spec.retry_budget;
        JobState {
            id,
            spec,
            cancel: CancelToken::new(),
            inner: Mutex::new(JobInner {
                phase: JobPhase::Queued,
                seeds_done: 0,
                seeds_failed: 0,
                seeds_cancelled: 0,
                retries: 0,
                deadline_overruns: 0,
                retry_budget_left: budget,
                partitions_healed: 0,
                stale_msgs_fenced: 0,
                quorum_losses: 0,
                rejoin_restores: 0,
                first_error: None,
                recovered: false,
                outcomes: std::collections::BTreeMap::new(),
                started: None,
                finished: None,
            }),
        }
    }

    /// Requests cancellation: the phase moves to `Cancelled` once every
    /// in-flight run has drained (seeds never started are cancelled
    /// immediately).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Whether cancellation has been requested.
    pub fn cancel_requested(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Current status snapshot.  `distinct_races` is filled by the daemon
    /// (the store owns dedup state); this method reports zero.
    pub fn snapshot(&self) -> JobSnapshot {
        let inner = self.inner.lock();
        JobSnapshot {
            id: self.id,
            phase: inner.phase,
            seeds_total: self.spec.seed_count,
            seeds_done: inner.seeds_done,
            seeds_failed: inner.seeds_failed,
            seeds_cancelled: inner.seeds_cancelled,
            retries: inner.retries,
            deadline_overruns: inner.deadline_overruns,
            first_error: inner.first_error.clone(),
            recovered: inner.recovered,
            distinct_races: 0,
            partitions_healed: inner.partitions_healed,
            stale_msgs_fenced: inner.stale_msgs_fenced,
            quorum_losses: inner.quorum_losses,
            rejoin_restores: inner.rejoin_restores,
        }
    }

    /// Terminal outcome of `seed`, once recorded.
    pub fn outcome(&self, seed: u64) -> Option<SeedOutcome> {
        self.inner.lock().outcomes.get(&seed).cloned()
    }

    /// Whether the job has reached a terminal phase.
    pub fn is_terminal(&self) -> bool {
        self.inner.lock().phase.is_terminal()
    }

    /// Marks the first seed start: `Queued → Running`.
    pub(crate) fn note_started(&self) {
        let mut inner = self.inner.lock();
        if inner.phase == JobPhase::Queued {
            inner.phase = JobPhase::Running;
            inner.started = Some(Instant::now());
        }
    }

    /// Records `seed`'s terminal outcome; when it is the last one, the job
    /// transitions to its terminal phase.  Returns `true` exactly once,
    /// for the recording that completed the job.
    pub(crate) fn record_outcome(&self, seed: u64, outcome: SeedOutcome) -> bool {
        let mut inner = self.inner.lock();
        if inner.phase.is_terminal() {
            return false; // Late result of a detached overrun attempt.
        }
        match &outcome {
            SeedOutcome::Done { .. } => inner.seeds_done += 1,
            SeedOutcome::Failed { error, .. } => {
                inner.seeds_failed += 1;
                if inner.first_error.is_none() {
                    inner.first_error = Some(error.clone());
                }
            }
            SeedOutcome::Cancelled => inner.seeds_cancelled += 1,
        }
        inner.outcomes.insert(seed, outcome);
        let all = inner.outcomes.len() as u32 >= self.spec.seed_count;
        if all {
            inner.phase = if inner.seeds_cancelled > 0 {
                JobPhase::Cancelled
            } else if inner.seeds_failed > 0 {
                JobPhase::Failed
            } else {
                JobPhase::Done
            };
            inner.finished = Some(Instant::now());
        }
        all
    }

    /// Consumes one unit of retry budget, returning `false` when
    /// exhausted.
    pub(crate) fn try_consume_retry(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.retry_budget_left == 0 {
            return false;
        }
        inner.retry_budget_left -= 1;
        inner.retries += 1;
        true
    }

    /// Counts one deadline overrun.
    pub(crate) fn note_overrun(&self) {
        self.inner.lock().deadline_overruns += 1;
    }

    /// Marks the job as rebuilt from the durable journal.
    pub(crate) fn mark_recovered(&self) {
        self.inner.lock().recovered = true;
    }

    /// Restores retry accounting replayed from the journal: the budget
    /// shrinks by what past attempts consumed (saturating — a spec edit
    /// between runs must not underflow) and the job-wide counter reflects
    /// them.
    pub(crate) fn restore_retries(&self, consumed: u64) {
        let mut inner = self.inner.lock();
        inner.retry_budget_left = inner
            .retry_budget_left
            .saturating_sub(consumed.min(u64::from(u32::MAX)) as u32);
        inner.retries += consumed;
    }

    /// Accumulates a completed run's recovery telemetry into the job-wide
    /// totals the status surface reports.
    pub(crate) fn note_recovery(&self, rec: &cvm_dsm::RecoveryStats) {
        let mut inner = self.inner.lock();
        inner.partitions_healed += rec.partitions_healed;
        inner.stale_msgs_fenced += rec.stale_msgs_fenced;
        inner.quorum_losses += rec.quorum_losses;
        inner.rejoin_restores += rec.rejoin_restores;
    }

    /// Wall-clock time from first seed start to terminal transition.
    pub fn elapsed(&self) -> Option<Duration> {
        let inner = self.inner.lock();
        match (inner.started, inner.finished) {
            (Some(s), Some(f)) => Some(f.duration_since(s)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    fn spec(seeds: u32) -> JobSpec {
        JobSpec::new(Workload::RacyCounter { epochs: 1 }, 2, 7, seeds)
    }

    #[test]
    fn spec_validation_rejects_nonsense() {
        assert!(spec(1).validate().is_ok());
        let mut s = spec(1);
        s.nprocs = 0;
        assert!(s.validate().is_err());
        let mut s = spec(1);
        s.seed_count = 0;
        assert!(s.validate().is_err());
        let mut s = spec(1);
        s.run_deadline = Duration::ZERO;
        assert!(s.validate().is_err());
    }

    #[test]
    fn seeds_enumerate_the_range() {
        let s = spec(3);
        assert_eq!(s.seeds().collect::<Vec<_>>(), vec![7, 8, 9]);
    }

    #[test]
    fn lifecycle_queued_running_done() {
        let job = JobState::new(JobId(1), spec(2));
        assert_eq!(job.snapshot().phase, JobPhase::Queued);
        job.note_started();
        assert_eq!(job.snapshot().phase, JobPhase::Running);
        assert!(!job.record_outcome(
            7,
            SeedOutcome::Done {
                races: 0,
                retries: 0
            }
        ));
        assert_eq!(job.snapshot().phase, JobPhase::Running);
        assert!(job.record_outcome(
            8,
            SeedOutcome::Done {
                races: 2,
                retries: 1
            }
        ));
        let snap = job.snapshot();
        assert_eq!(snap.phase, JobPhase::Done);
        assert!(snap.phase.is_terminal());
        assert_eq!(snap.seeds_done, 2);
        assert!(job.elapsed().is_some());
    }

    #[test]
    fn one_failed_seed_fails_the_job_but_not_the_others() {
        let job = JobState::new(JobId(2), spec(2));
        job.note_started();
        job.record_outcome(
            7,
            SeedOutcome::Failed {
                error: "boom".into(),
                transient: false,
                retries: 0,
            },
        );
        job.record_outcome(
            8,
            SeedOutcome::Done {
                races: 1,
                retries: 0,
            },
        );
        let snap = job.snapshot();
        assert_eq!(snap.phase, JobPhase::Failed);
        assert_eq!(snap.seeds_done, 1);
        assert_eq!(snap.seeds_failed, 1);
        assert_eq!(snap.first_error.as_deref(), Some("boom"));
    }

    #[test]
    fn any_cancelled_seed_makes_the_job_cancelled() {
        let job = JobState::new(JobId(3), spec(2));
        job.note_started();
        job.record_outcome(
            7,
            SeedOutcome::Done {
                races: 0,
                retries: 0,
            },
        );
        job.record_outcome(8, SeedOutcome::Cancelled);
        assert_eq!(job.snapshot().phase, JobPhase::Cancelled);
    }

    #[test]
    fn terminal_jobs_ignore_late_results() {
        let job = JobState::new(JobId(4), spec(1));
        job.note_started();
        assert!(job.record_outcome(7, SeedOutcome::Cancelled));
        // A detached overrun attempt finishing late must not resurrect
        // the job or double-count the seed.
        assert!(!job.record_outcome(
            7,
            SeedOutcome::Done {
                races: 5,
                retries: 0
            }
        ));
        let snap = job.snapshot();
        assert_eq!(snap.phase, JobPhase::Cancelled);
        assert_eq!(snap.seeds_done, 0);
    }

    #[test]
    fn retry_budget_is_job_wide_and_bounded() {
        let mut s = spec(4);
        s.retry_budget = 2;
        let job = JobState::new(JobId(5), s);
        assert!(job.try_consume_retry());
        assert!(job.try_consume_retry());
        assert!(!job.try_consume_retry(), "budget must exhaust");
        assert_eq!(job.snapshot().retries, 2);
    }
}
