//! `cvm-service`: the always-on race-hunt daemon.
//!
//! Everything below this crate is a *library* for running one detection
//! job at a time; this crate turns it into a *service*: submit a job
//! (workload + cluster config + fault plan + seed range), and the daemon
//! expands it into per-seed deterministic runs on a supervised worker
//! pool, retains deduplicated race reports, and answers status queries —
//! while surviving everything those runs can throw at it.
//!
//! The robustness contract, end to end:
//!
//! * **Crash isolation** ([`pool`]) — a panicking run (app bug, injected
//!   detector-stage panic) is caught on its helper thread and becomes a
//!   terminal seed outcome; the worker and the daemon keep serving.
//! * **Deadlines** ([`pool`]) — attempts overrunning the job's per-run
//!   deadline are cancelled through the cluster's own
//!   [`CancelToken`](cvm_dsm::CancelToken) path and classified transient.
//! * **Retries** ([`pool`], [`cvm_dsm::DsmError::is_transient`]) —
//!   transient failures retry under a job-wide budget with capped,
//!   seeded-jitter exponential backoff; terminal failures never retry.
//! * **Bounded everything** ([`daemon`], [`store`]) — admission is capped
//!   (excess submissions get [`SubmitError::QueueFull`]), and the result
//!   store evicts whole sealed jobs oldest-first under a byte budget.
//! * **Graceful drain** ([`Daemon::drain`]) — stop admission, wait out
//!   in-flight jobs to a deadline, cancel stragglers, join the pool;
//!   every admitted job is terminal on return.
//!
//! Front ends: an in-process handle ([`Daemon`], cheap to clone) and a
//! line-delimited JSON TCP listener ([`TcpFrontEnd`]) with a hand-rolled
//! parser ([`json`]) — the hermetic build has no serde and no HTTP stack.
//!
//! Determinism is preserved through the service layer: a job's per-seed
//! runs produce race reports byte-identical to a direct
//! [`Cluster::run`](cvm_dsm::Cluster::run) with the expanded config
//! ([`workload::run_direct`]), which the soak suite asserts via the
//! stable report fingerprints.

pub mod daemon;
pub mod job;
pub mod json;
pub mod persist;
pub mod pool;
pub mod statemap;
pub mod store;
pub mod tcp;
pub mod workload;

pub use daemon::{Daemon, DaemonConfig, DaemonStats, DrainReport, SubmitError};
pub use job::{JobId, JobPhase, JobSnapshot, JobSpec, JobState, SeedOutcome};
pub use persist::{
    CrashMode, CrashPoint, CrashSpec, FsyncPolicy, JournalRecord, OutcomeImage, Persist,
    PersistConfig, PersistStatsSnapshot, ShadowState,
};
pub use pool::PoolStatsSnapshot;
pub use statemap::StateMap;
pub use store::{DedupedRace, JobRaces, ResultStore, StoreStats};
pub use tcp::{TcpFrontEnd, TcpTuning};
pub use workload::{build_config, run_direct, FaultSpec, KillSpec, Workload};
