//! Process-level graceful shutdown: the `cvm-service` binary under load.
//!
//! Spawns the real daemon binary, submits work over its TCP socket, then
//! delivers the drain signal (a `drain` line on stdin — the
//! SIGTERM-equivalent for a pipe-supervised process) *mid-load*.  The
//! contract: the process exits 0, and it only exits 0 when every accepted
//! job reached a terminal phase — slow jobs are allowed to be cancelled
//! by the drain window, but none may be lost or left running.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use cvm_service::json::{parse, Value};

struct DaemonProc {
    child: Child,
    addr: String,
}

fn spawn_daemon(extra: &[&str]) -> DaemonProc {
    let mut args = vec!["--addr", "127.0.0.1:0", "--workers", "2"];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_cvm-service"))
        .args(&args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cvm-service");
    // First stdout line announces the resolved address.
    let stdout = child.stdout.take().expect("stdout piped");
    let first = BufReader::new(stdout)
        .lines()
        .next()
        .expect("daemon prints its address")
        .expect("readable stdout");
    let addr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first}"))
        .trim()
        .to_string();
    DaemonProc { child, addr }
}

fn wait_with_deadline(child: &mut Child, budget: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(
            start.elapsed() < budget,
            "daemon did not exit within {budget:?} of the drain signal"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        Client {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
        }
    }

    fn ask(&mut self, line: &str) -> Value {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("request written");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("response read");
        parse(response.trim()).expect("well-formed response")
    }
}

#[test]
fn drain_mid_load_exits_zero_with_every_job_terminal() {
    // Short drain window: the slow jobs cannot finish inside it and must
    // be cancelled — which still counts as terminal, so exit is 0.
    let mut daemon = spawn_daemon(&["--drain-ms", "5000"]);
    let mut client = Client::connect(&daemon.addr);

    let pong = client.ask(r#"{"op":"ping"}"#);
    assert_eq!(pong.get("ok").and_then(Value::as_bool), Some(true));

    // A fast job and two slow jobs (≈5 s of dwell each).
    let fast = client.ask(
        r#"{"op":"submit","workload":"racy_counter","epochs":2,"nprocs":2,"seed_base":1,"seed_count":1}"#,
    );
    assert_eq!(fast.get("ok").and_then(Value::as_bool), Some(true));
    for seed in [10, 20] {
        let slow = client.ask(&format!(
            r#"{{"op":"submit","workload":"sleepy_grid","epochs":100,"dwell_ms":50,"nprocs":2,"seed_base":{seed},"seed_count":1}}"#
        ));
        assert_eq!(
            slow.get("ok").and_then(Value::as_bool),
            Some(true),
            "{slow}"
        );
    }

    // Mid-load drain: the SIGTERM-equivalent for a pipe-supervised
    // daemon.
    daemon
        .child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(b"drain\n")
        .expect("drain delivered");

    let status = wait_with_deadline(&mut daemon.child, Duration::from_secs(60));
    assert!(
        status.success(),
        "graceful drain must exit 0 (got {status:?})"
    );

    // The shutdown report names the load it drained.
    let mut stderr = String::new();
    std::io::Read::read_to_string(
        &mut daemon.child.stderr.take().expect("stderr piped"),
        &mut stderr,
    )
    .expect("readable stderr");
    assert!(
        stderr.contains("3 jobs submitted"),
        "shutdown report accounts for all accepted jobs: {stderr}"
    );
    assert!(
        stderr.contains("cancelled at shutdown"),
        "shutdown report renders the cancellation count: {stderr}"
    );
}

#[test]
fn stdin_eof_also_drains_cleanly() {
    let mut daemon = spawn_daemon(&["--drain-ms", "30000"]);
    let mut client = Client::connect(&daemon.addr);
    let submitted = client.ask(
        r#"{"op":"submit","workload":"racy_counter","epochs":1,"nprocs":2,"seed_base":3,"seed_count":1}"#,
    );
    assert_eq!(submitted.get("ok").and_then(Value::as_bool), Some(true));

    // Closing stdin (supervisor died / pipe closed) is the other shutdown
    // path; the fast job fits the window, so the drain is clean.
    drop(daemon.child.stdin.take());
    let status = wait_with_deadline(&mut daemon.child, Duration::from_secs(60));
    assert!(status.success(), "EOF drain must exit 0 (got {status:?})");
}

#[test]
fn bad_flags_exit_nonzero_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_cvm-service"))
        .arg("--frobnicate")
        .output()
        .expect("run cvm-service");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "usage on bad flags: {stderr}");
}
