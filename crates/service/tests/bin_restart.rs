//! Kill-and-restart against the real `cvm-service` binary: at every
//! persistence crash point the process is aborted mid-journal (the
//! `--crash POINT:N` flag scripts `std::process::abort()`), restarted
//! from the same `--data-dir`, and must converge to the same terminal
//! status and race fingerprints as an uninterrupted run of the same
//! spec.  `PERSIST_SEED` (the CI matrix axis) shifts both the workload
//! seeds and which record the abort lands on.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cvm_service::json::{parse, Value};
use cvm_service::CrashPoint;

fn persist_seed() -> u64 {
    std::env::var("PERSIST_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

static DIR_SERIAL: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let serial = DIR_SERIAL.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cvm-restart-{tag}-{}-{serial}", std::process::id()))
}

struct DaemonProc {
    child: Child,
    addr: String,
}

fn spawn_daemon(extra: &[&str]) -> DaemonProc {
    let mut args = vec!["--addr", "127.0.0.1:0", "--workers", "2"];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_cvm-service"))
        .args(&args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cvm-service");
    let stdout = child.stdout.take().expect("stdout piped");
    let first = BufReader::new(stdout)
        .lines()
        .next()
        .expect("daemon prints its address")
        .expect("readable stdout");
    let addr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first}"))
        .trim()
        .to_string();
    DaemonProc { child, addr }
}

fn wait_with_deadline(child: &mut Child, budget: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(
            start.elapsed() < budget,
            "daemon did not exit within {budget:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        Client {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
        }
    }

    fn ask(&mut self, line: &str) -> Value {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("request written");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("response read");
        parse(response.trim()).expect("well-formed response")
    }
}

/// Order-insensitive result image of one job, read over the protocol.
#[derive(Debug, PartialEq, Eq)]
struct JobImage {
    phase: String,
    seeds_done: u64,
    races: Vec<(String, u64)>,
    reports_merged: u64,
}

/// Polls `job` to a terminal phase, then reads its deduplicated races.
fn image_of(client: &mut Client, job: u64, budget: Duration) -> JobImage {
    let start = Instant::now();
    let status = loop {
        let status = client.ask(&format!(r#"{{"op":"status","job":{job}}}"#));
        let phase = status
            .get("phase")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("status has a phase: {status}"));
        if matches!(phase, "done" | "failed" | "cancelled") {
            break status;
        }
        assert!(
            start.elapsed() < budget,
            "job {job} never went terminal: {status}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let races = client.ask(&format!(r#"{{"op":"races","job":{job}}}"#));
    assert_eq!(
        races.get("ok").and_then(Value::as_bool),
        Some(true),
        "{races}"
    );
    let mut pairs: Vec<(String, u64)> = races
        .get("races")
        .and_then(Value::as_arr)
        .expect("races array")
        .iter()
        .map(|r| {
            (
                r.get("fingerprint")
                    .and_then(Value::as_str)
                    .expect("hex fingerprint")
                    .to_string(),
                r.get("hits").and_then(Value::as_u64).expect("hits"),
            )
        })
        .collect();
    pairs.sort();
    JobImage {
        phase: status
            .get("phase")
            .and_then(Value::as_str)
            .unwrap()
            .to_string(),
        seeds_done: status.get("seeds_done").and_then(Value::as_u64).unwrap(),
        races: pairs,
        reports_merged: races.get("reports_merged").and_then(Value::as_u64).unwrap(),
    }
}

const SUBMIT: &str = r#"{"op":"submit","workload":"racy_counter","epochs":2,"nprocs":2,"seed_base":SEED,"seed_count":3}"#;

fn submit_hunt(client: &mut Client) -> u64 {
    let line = SUBMIT.replace("SEED", &persist_seed().to_string());
    let response = client.ask(&line);
    assert_eq!(
        response.get("ok").and_then(Value::as_bool),
        Some(true),
        "{response}"
    );
    response.get("job").and_then(Value::as_u64).expect("job id")
}

fn drain(daemon: &mut DaemonProc) -> std::process::ExitStatus {
    daemon
        .child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(b"drain\n")
        .expect("drain delivered");
    wait_with_deadline(&mut daemon.child, Duration::from_secs(60))
}

/// The uninterrupted run the crashed-and-recovered one must match.
fn reference_image() -> JobImage {
    let mut daemon = spawn_daemon(&[]);
    let mut client = Client::connect(&daemon.addr);
    let job = submit_hunt(&mut client);
    let image = image_of(&mut client, job, Duration::from_secs(60));
    assert_eq!(image.phase, "done", "reference run completes: {image:?}");
    assert!(!image.races.is_empty(), "racy workload must race");
    drop(client);
    assert!(drain(&mut daemon).success());
    image
}

/// Aborts the daemon at `point` mid-hunt, restarts it on the same data
/// directory, and asserts the recovered job converges to `reference`.
fn crash_restart_and_compare(point: CrashPoint, reference: &JobImage) {
    let dir = scratch_dir(point.name());
    let dir_str = dir.to_str().expect("utf-8 temp path").to_string();
    // One 3-seed job journals: Submitted, SeedDone x3, Sealed — and
    // `--compact-every 3` fires a compaction after the third record.
    // Record-level points abort within records 2..=5 (always after the
    // Submitted record is durable, so the admission must survive);
    // compaction-level points abort at the first compaction.
    let at = match point {
        CrashPoint::MidRecord | CrashPoint::PostRecordPreFsync => 2 + (persist_seed() % 4),
        CrashPoint::MidCompaction | CrashPoint::PostSnapshotPreTrim => 1,
    };
    let crash = format!("{}:{at}", point.name());
    let mut daemon = spawn_daemon(&[
        "--data-dir",
        &dir_str,
        "--fsync",
        "always",
        "--compact-every",
        "3",
        "--crash",
        &crash,
    ]);
    let mut client = Client::connect(&daemon.addr);
    let job = submit_hunt(&mut client);
    drop(client);

    // The scripted abort is not a graceful exit.
    let status = wait_with_deadline(&mut daemon.child, Duration::from_secs(60));
    assert!(
        !status.success(),
        "{crash} must abort the process, got {status:?}"
    );

    // Restart clean on the same directory: the job must be present,
    // converge to the reference image, and drain cleanly.
    let mut daemon = spawn_daemon(&["--data-dir", &dir_str, "--fsync", "always"]);
    let mut client = Client::connect(&daemon.addr);
    let image = image_of(&mut client, job, Duration::from_secs(60));
    assert_eq!(&image, reference, "divergence after {crash}");
    if point == CrashPoint::MidRecord {
        // A mid-record abort leaves a torn tail; recovery must have
        // counted the truncation rather than panicking over it.
        let stats = client.ask(r#"{"op":"stats"}"#);
        let torn = stats
            .get("torn_tail_truncations")
            .and_then(Value::as_u64)
            .expect("stats carry truncations");
        assert!(torn >= 1, "torn tail counted: {stats}");
    }
    drop(client);
    assert!(
        drain(&mut daemon).success(),
        "recovered daemon drains clean"
    );

    let mut stderr = String::new();
    std::io::Read::read_to_string(
        &mut daemon.child.stderr.take().expect("stderr piped"),
        &mut stderr,
    )
    .expect("readable stderr");
    assert!(
        stderr.contains("durable:"),
        "shutdown report renders persistence counters: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn abort_mid_record_recovers_identical_results() {
    crash_restart_and_compare(CrashPoint::MidRecord, &reference_image());
}

#[test]
fn abort_post_record_pre_fsync_recovers_identical_results() {
    crash_restart_and_compare(CrashPoint::PostRecordPreFsync, &reference_image());
}

#[test]
fn abort_mid_compaction_recovers_identical_results() {
    crash_restart_and_compare(CrashPoint::MidCompaction, &reference_image());
}

#[test]
fn abort_post_snapshot_pre_trim_recovers_identical_results() {
    crash_restart_and_compare(CrashPoint::PostSnapshotPreTrim, &reference_image());
}
