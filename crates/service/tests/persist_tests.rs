//! Durability integration tests: journal integrity under fuzzed
//! corruption, byte-identical recovery after clean restarts, and the
//! full crash-point × fsync-policy matrix in wedge mode (the process
//! survives, so one test can crash, reopen, and compare).
//!
//! The property every test asserts, one way or another: whatever the
//! journal tail looks like, `Persist::open` lands on the longest valid
//! prefix without panicking, and a reopened daemon converges to the
//! same terminal statuses and race fingerprints as an uninterrupted
//! run.  `PERSIST_SEED` (also the CI matrix axis) shifts the seeds and
//! the scripted crash offsets.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cvm_net::wire::{encode_frame, Wire};
use cvm_service::persist::JOURNAL_FILE;
use cvm_service::{
    CrashMode, CrashPoint, CrashSpec, Daemon, DaemonConfig, FsyncPolicy, JobId, JobPhase, JobSpec,
    JournalRecord, OutcomeImage, Persist, PersistConfig, ShadowState, Workload,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// The CI matrix axis: shifts workload seeds and crash offsets.
fn persist_seed() -> u64 {
    std::env::var("PERSIST_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

static DIR_SERIAL: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory under the system temp dir (the hermetic
/// build has no tempfile crate).
fn scratch_dir(tag: &str) -> PathBuf {
    let serial = DIR_SERIAL.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cvm-persist-{tag}-{}-{serial}", std::process::id()))
}

fn wait_all_terminal(daemon: &Daemon, budget: Duration) {
    let start = Instant::now();
    loop {
        if daemon.jobs().iter().all(|j| j.phase.is_terminal()) {
            return;
        }
        assert!(
            start.elapsed() < budget,
            "jobs never went terminal: {:?}",
            daemon.jobs()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Order-insensitive result image of one job: phase plus the store's
/// deduplicated `(fingerprint, hits)` pairs and pre-dedup merge count.
/// (`first_seed` is excluded: concurrent seeds merge in nondeterministic
/// order even without a crash.)
#[derive(Debug, PartialEq, Eq)]
struct JobImage {
    phase: JobPhase,
    seeds_done: u32,
    races: Vec<(u64, u64)>,
    reports_merged: u64,
}

fn job_image(daemon: &Daemon, id: JobId) -> JobImage {
    let snap = daemon.status(id).expect("job known");
    let races = daemon.races(id).unwrap_or_default();
    JobImage {
        phase: snap.phase,
        seeds_done: snap.seeds_done,
        races: races
            .races
            .iter()
            .map(|r| (r.fingerprint, r.hits))
            .collect(),
        reports_merged: races.reports_merged,
    }
}

fn racy_spec(seed_base: u64, seed_count: u32) -> JobSpec {
    JobSpec::new(
        Workload::RacyCounter { epochs: 2 },
        2,
        seed_base,
        seed_count,
    )
}

// ---------------------------------------------------------------------------
// Proptests: record sequences round-trip through a real journal file
// ---------------------------------------------------------------------------

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    (1u64..4, 0u64..1000, 1u32..4).prop_map(|(epochs, base, count)| {
        JobSpec::new(Workload::MixedStripes { epochs }, 2, base, count)
    })
}

fn arb_outcome() -> impl Strategy<Value = OutcomeImage> {
    prop_oneof![
        (0u32..3, proptest::collection::vec(any::<u64>(), 0..5)).prop_map(|(retries, prints)| {
            let rendered = prints
                .iter()
                .map(|p| (*p, format!("race {p:#018x}")))
                .collect();
            OutcomeImage::Done {
                retries,
                occurrences: prints,
                rendered,
                recovery: [0, 1, 2, 3],
            }
        }),
        (any::<bool>(), 0u32..3).prop_map(|(transient, retries)| OutcomeImage::Failed {
            error: "injected failure".into(),
            transient,
            retries,
        }),
        Just(OutcomeImage::Cancelled),
    ]
}

fn arb_record() -> impl Strategy<Value = JournalRecord> {
    prop_oneof![
        (1u64..6, arb_spec()).prop_map(|(j, spec)| JournalRecord::Submitted {
            job: JobId(j),
            spec
        }),
        (1u64..6, 0u64..10, arb_outcome()).prop_map(|(j, seed, outcome)| {
            JournalRecord::SeedDone {
                job: JobId(j),
                seed,
                outcome,
            }
        }),
        (1u64..6, 0u8..1).prop_map(|(j, _)| JournalRecord::Sealed { job: JobId(j) }),
        (1u64..6, 0u8..1).prop_map(|(j, _)| JournalRecord::Cancelled { job: JobId(j) }),
        (1u64..6, 0u8..1).prop_map(|(j, _)| JournalRecord::Evicted { job: JobId(j) }),
    ]
}

fn arb_records() -> impl Strategy<Value = Vec<JournalRecord>> {
    proptest::collection::vec(arb_record(), 0..12)
}

/// Applies `recs` directly, bypassing any file.
fn direct_apply(recs: &[JournalRecord]) -> ShadowState {
    let mut shadow = ShadowState::default();
    for rec in recs {
        shadow.apply(rec);
    }
    shadow
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn journal_replay_matches_direct_apply(recs in arb_records()) {
        let dir = scratch_dir("roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        for rec in &recs {
            bytes.extend_from_slice(&encode_frame(&rec.to_bytes()));
        }
        std::fs::write(dir.join(JOURNAL_FILE), &bytes).unwrap();

        let (persist, shadow) = Persist::open(&PersistConfig::at(&dir)).unwrap();
        prop_assert_eq!(&shadow, &direct_apply(&recs));
        let stats = persist.stats();
        prop_assert_eq!(stats.torn_tail_truncations, 0);
        prop_assert_eq!(stats.journal_records, recs.len() as u64);
        drop(persist);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Damage the journal tail three ways — truncate anywhere, flip one
    /// bit anywhere, append garbage — and recovery must land on the
    /// longest valid frame prefix, count exactly one truncation, and
    /// leave the file clean for the *next* open.  Never a panic.
    #[test]
    fn corrupt_tails_recover_to_the_last_valid_prefix(
        recs in arb_records(),
        damage_mode in 0u8..3,
        offset_pick in any::<u64>(),
        bit_pick in 0u8..8,
        garbage in proptest::collection::vec(any::<u8>(), 1..48),
    ) {
        let frames: Vec<Vec<u8>> = recs
            .iter()
            .map(|rec| encode_frame(&rec.to_bytes()))
            .collect();
        let clean: Vec<u8> = frames.concat();

        // Damage the byte stream and compute how many whole records the
        // valid prefix still holds.
        let mut bytes = clean.clone();
        let expect_records;
        let expect_torn;
        match damage_mode {
            0 => {
                // Truncate at an arbitrary offset.
                let cut = (offset_pick % (clean.len() as u64 + 1)) as usize;
                bytes.truncate(cut);
                let mut len = 0usize;
                let mut whole = 0u64;
                for f in &frames {
                    if len + f.len() <= cut {
                        len += f.len();
                        whole += 1;
                    } else {
                        break;
                    }
                }
                expect_records = whole;
                expect_torn = cut > len; // a partial frame remains
            }
            1 => {
                // Flip one bit; CRC (or the magic/length checks) must
                // stop replay at the frame containing it.
                prop_assume!(!clean.is_empty());
                let pos = (offset_pick % clean.len() as u64) as usize;
                bytes[pos] ^= 1 << bit_pick;
                let mut len = 0usize;
                let mut whole = 0u64;
                for f in &frames {
                    if len + f.len() <= pos {
                        len += f.len();
                        whole += 1;
                    } else {
                        break;
                    }
                }
                expect_records = whole;
                expect_torn = true;
            }
            _ => {
                // Garbage appended after the last valid frame.
                bytes.extend_from_slice(&garbage);
                expect_records = frames.len() as u64;
                expect_torn = true;
            }
        }

        let dir = scratch_dir("fuzz");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), &bytes).unwrap();

        let (persist, shadow) = Persist::open(&PersistConfig::at(&dir)).unwrap();
        let stats = persist.stats();
        prop_assert_eq!(stats.journal_records, expect_records);
        prop_assert_eq!(stats.torn_tail_truncations, u64::from(expect_torn));
        prop_assert_eq!(&shadow, &direct_apply(&recs[..expect_records as usize]));
        drop(persist);

        // The torn tail was truncated on disk: a second open replays the
        // same prefix with nothing left to truncate.
        let (persist, reshadow) = Persist::open(&PersistConfig::at(&dir)).unwrap();
        prop_assert_eq!(persist.stats().torn_tail_truncations, 0);
        prop_assert_eq!(persist.stats().journal_records, expect_records);
        prop_assert_eq!(&reshadow, &shadow);
        drop(persist);
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Clean restart: byte-identical results, zero recomputation
// ---------------------------------------------------------------------------

#[test]
fn clean_restart_restores_results_without_recomputing() {
    let dir = scratch_dir("clean-restart");
    let seed = persist_seed();
    let cfg = DaemonConfig {
        workers: 2,
        persist: PersistConfig::at(&dir),
        ..DaemonConfig::default()
    };

    let daemon = Daemon::start(cfg.clone());
    let a = daemon.submit(racy_spec(seed, 2)).expect("admitted");
    let b = daemon.submit(racy_spec(seed + 100, 2)).expect("admitted");
    wait_all_terminal(&daemon, Duration::from_secs(60));
    let before: Vec<_> = [a, b]
        .iter()
        .map(|&id| (job_image(&daemon, id), daemon.races(id).unwrap()))
        .collect();
    assert!(before[0].0.races.iter().any(|(_, hits)| *hits > 0));
    let report = daemon.drain(Duration::from_secs(30));
    assert!(report.clean);
    assert!(report.persist.snapshots_written >= 1, "drain compacts");
    drop(daemon);

    let daemon = Daemon::start(cfg);
    // Restored, not recomputed: no pool attempt ran.
    let stats = daemon.stats();
    assert_eq!(stats.pool.attempts, 0, "sealed results must not re-run");
    assert_eq!(stats.persist.journal_records, 0, "snapshot covers it all");
    assert_eq!(stats.persist.recovered_jobs, 0, "nothing was in flight");
    assert_eq!(stats.jobs_submitted, 2);
    for (i, &id) in [a, b].iter().enumerate() {
        assert_eq!(job_image(&daemon, id), before[i].0);
        // Byte-identical: the rendered race text survives too.
        let races = daemon.races(id).expect("results retained");
        let rendered: Vec<_> = races.races.iter().map(|r| &r.rendered).collect();
        let expect: Vec<_> = before[i].1.races.iter().map(|r| &r.rendered).collect();
        assert_eq!(rendered, expect);
        assert!(daemon.status(id).unwrap().recovered, "marked as restored");
    }
    // The restored daemon is alive: new submissions get fresh ids.
    let c = daemon.submit(racy_spec(seed, 1)).expect("admitted");
    assert!(c.0 > b.0, "id allocation resumes past recovered jobs");
    wait_all_terminal(&daemon, Duration::from_secs(60));
    assert_eq!(daemon.status(c).unwrap().phase, JobPhase::Done);
    drop(daemon);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evictions_survive_restart() {
    let dir = scratch_dir("evict");
    let seed = persist_seed();
    // Probe how many bytes each job's results cost, on an in-memory
    // daemon with an unbounded budget.
    let (bytes_a, bytes_both) = {
        let probe = Daemon::start(DaemonConfig {
            workers: 2,
            ..DaemonConfig::default()
        });
        probe.submit(racy_spec(seed, 2)).expect("admitted");
        wait_all_terminal(&probe, Duration::from_secs(60));
        let bytes_a = probe.stats().store.bytes_live;
        probe.submit(racy_spec(seed + 7, 2)).expect("admitted");
        wait_all_terminal(&probe, Duration::from_secs(60));
        (bytes_a, probe.stats().store.bytes_live)
    };
    assert!(
        bytes_a > 0 && bytes_both > bytes_a,
        "racy jobs retain bytes"
    );

    // A budget fitting either job alone but not both: sealing the second
    // must evict the first (oldest sealed), and only the first.
    let cfg = DaemonConfig {
        workers: 2,
        store_budget_bytes: bytes_both - 1,
        persist: PersistConfig::at(&dir),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(cfg.clone());
    let a = daemon.submit(racy_spec(seed, 2)).expect("admitted");
    wait_all_terminal(&daemon, Duration::from_secs(60));
    let b = daemon.submit(racy_spec(seed + 7, 2)).expect("admitted");
    wait_all_terminal(&daemon, Duration::from_secs(60));
    let evicted_live = daemon.stats().store.jobs_evicted;
    assert!(evicted_live >= 1, "sealing the second job must evict {a}");
    assert!(daemon.races(b).is_some(), "newest sealed job is retained");
    daemon.drain(Duration::from_secs(30));
    drop(daemon);

    let daemon = Daemon::start(cfg);
    assert!(daemon.races(a).is_none(), "evicted results stay evicted");
    assert!(daemon.races(b).is_some());
    assert_eq!(daemon.stats().store.jobs_evicted, evicted_live);
    drop(daemon);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// The crash matrix, in-process (wedge mode)
// ---------------------------------------------------------------------------

/// Runs one job to terminal on a daemon whose persister wedges (goes
/// inert, as a crash would) at `point`, then reopens the directory and
/// checks the recovered daemon converges to `reference`.
fn crash_and_recover(point: CrashPoint, fsync: FsyncPolicy, reference: &JobImage) {
    let seed = persist_seed();
    let dir = scratch_dir(&format!("wedge-{}", point.name()));
    // Record stream for one 3-seed job: Submitted, SeedDone x3, Sealed.
    // Record-level points target records 2..=5 (never the Submitted —
    // in wedge mode the daemon acks a submission the journal missed, a
    // window only the abort-mode bin test can close).  Compaction fires
    // after record 3, so compaction-level points use the first hit.
    let at = match point {
        CrashPoint::MidRecord | CrashPoint::PostRecordPreFsync => 2 + (seed % 4),
        CrashPoint::MidCompaction | CrashPoint::PostSnapshotPreTrim => 1,
    };
    let cfg = DaemonConfig {
        workers: 2,
        persist: PersistConfig {
            fsync,
            compact_every: 3,
            crash: Some(CrashSpec {
                point,
                at,
                mode: CrashMode::Wedge,
            }),
            ..PersistConfig::at(&dir)
        },
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(cfg);
    let id = daemon.submit(racy_spec(seed, 3)).expect("admitted");
    wait_all_terminal(&daemon, Duration::from_secs(60));
    daemon.drain(Duration::from_secs(30));
    drop(daemon);

    // Reopen clean from whatever the wedged persister left behind.
    let cfg = DaemonConfig {
        workers: 2,
        persist: PersistConfig {
            fsync,
            compact_every: 3,
            ..PersistConfig::at(&dir)
        },
        ..DaemonConfig::default()
    };
    let daemon = Daemon::open(cfg)
        .unwrap_or_else(|e| panic!("reopen after {}@{at} ({}): {e}", point.name(), fsync.name()));
    wait_all_terminal(&daemon, Duration::from_secs(60));
    let image = job_image(&daemon, id);
    assert_eq!(
        &image,
        reference,
        "divergence after {}@{at} under fsync={}",
        point.name(),
        fsync.name()
    );
    drop(daemon);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_matrix_recovers_identical_results() {
    let seed = persist_seed();
    // Uninterrupted reference: same spec, no persistence, no crash.
    let reference = {
        let daemon = Daemon::start(DaemonConfig {
            workers: 2,
            ..DaemonConfig::default()
        });
        let id = daemon.submit(racy_spec(seed, 3)).expect("admitted");
        wait_all_terminal(&daemon, Duration::from_secs(60));
        job_image(&daemon, id)
    };
    assert_eq!(reference.phase, JobPhase::Done);
    assert!(!reference.races.is_empty(), "racy workload must race");

    for point in CrashPoint::ALL {
        for fsync in [
            FsyncPolicy::Always,
            FsyncPolicy::EveryN(2),
            FsyncPolicy::Never,
        ] {
            crash_and_recover(point, fsync, &reference);
        }
    }
}

/// A crash mid-run must never lose an *acknowledged* job: whatever the
/// journal caught, the job id is present and terminal after recovery.
#[test]
fn no_acknowledged_job_is_silently_lost() {
    let seed = persist_seed();
    let dir = scratch_dir("no-loss");
    let cfg = DaemonConfig {
        workers: 2,
        persist: PersistConfig {
            // Wedge during the very first SeedDone: the outcome is lost
            // but the Submitted record is already durable.
            crash: Some(CrashSpec {
                point: CrashPoint::MidRecord,
                at: 2,
                mode: CrashMode::Wedge,
            }),
            ..PersistConfig::at(&dir)
        },
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(cfg);
    let id = daemon.submit(racy_spec(seed, 2)).expect("admitted");
    wait_all_terminal(&daemon, Duration::from_secs(60));
    drop(daemon);

    let cfg = DaemonConfig {
        workers: 2,
        persist: PersistConfig::at(&dir),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::open(cfg).expect("reopen");
    let snap = daemon.status(id).expect("admitted job survives the crash");
    assert!(snap.recovered);
    assert_eq!(daemon.stats().persist.recovered_jobs, 1);
    wait_all_terminal(&daemon, Duration::from_secs(60));
    assert_eq!(daemon.status(id).unwrap().phase, JobPhase::Done);
    assert!(!daemon.races(id).unwrap().races.is_empty());
    drop(daemon);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Cancellation survives restart
// ---------------------------------------------------------------------------

#[test]
fn cancellation_is_durable() {
    let dir = scratch_dir("cancel");
    let cfg = DaemonConfig {
        workers: 1,
        persist: PersistConfig {
            // Wedge immediately after the Cancelled record lands.
            crash: Some(CrashSpec {
                point: CrashPoint::PostRecordPreFsync,
                at: 2,
                mode: CrashMode::Wedge,
            }),
            ..PersistConfig::at(&dir)
        },
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(cfg);
    let slow = JobSpec::new(
        Workload::SleepyGrid {
            epochs: 200,
            dwell_ms: 50,
        },
        2,
        persist_seed(),
        1,
    );
    let id = daemon.submit(slow).expect("admitted");
    assert!(daemon.cancel(id));
    wait_all_terminal(&daemon, Duration::from_secs(60));
    drop(daemon);

    let cfg = DaemonConfig {
        workers: 1,
        persist: PersistConfig::at(&dir),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::open(cfg).expect("reopen");
    // The journaled cancellation re-applies: the job drives to a
    // terminal Cancelled phase instead of re-running 10 seconds of grid.
    wait_all_terminal(&daemon, Duration::from_secs(60));
    assert_eq!(daemon.status(id).unwrap().phase, JobPhase::Cancelled);
    drop(daemon);
    std::fs::remove_dir_all(&dir).ok();
}
