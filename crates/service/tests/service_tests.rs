//! Service-level integration tests: the daemon's contract as seen by a
//! client — admission, lifecycle, backpressure, cancellation, the wire
//! protocol, and daemon/direct result equivalence.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cvm_service::json::{parse, Value};
use cvm_service::{
    run_direct, Daemon, DaemonConfig, JobId, JobPhase, JobSnapshot, JobSpec, SubmitError,
    TcpFrontEnd, Workload,
};

fn wait_terminal(daemon: &Daemon, id: JobId, budget: Duration) -> JobSnapshot {
    let start = Instant::now();
    loop {
        let snap = daemon.status(id).expect("job known");
        if snap.phase.is_terminal() {
            return snap;
        }
        assert!(
            start.elapsed() < budget,
            "{id} stuck in {:?} after {budget:?}",
            snap.phase
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn daemon_results_match_direct_runs_exactly() {
    let daemon = Daemon::start(DaemonConfig {
        workers: 3,
        ..DaemonConfig::default()
    });
    let spec = JobSpec::new(Workload::MixedStripes { epochs: 2 }, 3, 11, 4);
    let id = daemon.submit(spec.clone()).expect("admitted");
    let snap = wait_terminal(&daemon, id, Duration::from_secs(60));
    assert_eq!(snap.phase, JobPhase::Done);

    // Reference: the same seeds run directly, deduped by fingerprint.
    let mut expected = std::collections::BTreeSet::new();
    for seed in spec.seeds() {
        let report = run_direct(&spec, seed).expect("direct run");
        expected.extend(report.races.distinct_fingerprints());
    }
    let got: std::collections::BTreeSet<u64> = daemon
        .races(id)
        .expect("results retained")
        .races
        .iter()
        .map(|r| r.fingerprint)
        .collect();
    assert_eq!(got, expected, "service dedup must equal direct-run dedup");
    assert_eq!(snap.distinct_races, expected.len());
}

#[test]
fn concurrent_submitters_respect_the_admission_bound() {
    let daemon = Daemon::start(DaemonConfig {
        workers: 2,
        queue_capacity: 4,
        ..DaemonConfig::default()
    });
    // 12 threads race to submit slow jobs into 4 slots.
    let handles: Vec<_> = (0..12u32)
        .map(|i| {
            let daemon = daemon.clone();
            std::thread::spawn(move || {
                let spec = JobSpec::new(
                    Workload::SleepyGrid {
                        epochs: 20,
                        dwell_ms: 25,
                    },
                    2,
                    u64::from(i),
                    1,
                );
                daemon.submit(spec)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let admitted: Vec<JobId> = results
        .iter()
        .filter_map(|r| r.as_ref().ok().copied())
        .collect();
    let rejected = results
        .iter()
        .filter(|r| matches!(r, Err(SubmitError::QueueFull { .. })))
        .count();
    assert_eq!(admitted.len(), 4, "exactly the capacity admitted");
    assert_eq!(rejected, 8, "the rest saw QueueFull");
    for id in &admitted {
        daemon.cancel(*id);
    }
    for id in admitted {
        wait_terminal(&daemon, id, Duration::from_secs(30));
    }
    assert_eq!(daemon.stats().jobs_rejected, 8);
}

#[test]
fn cancellation_mid_job_is_prompt_and_terminal() {
    let daemon = Daemon::start(DaemonConfig {
        workers: 2,
        ..DaemonConfig::default()
    });
    let spec = JobSpec::new(
        Workload::SleepyGrid {
            epochs: 200,
            dwell_ms: 50,
        },
        2,
        1,
        4,
    );
    let id = daemon.submit(spec).expect("admitted");
    std::thread::sleep(Duration::from_millis(150));
    assert!(daemon.cancel(id));
    let started = Instant::now();
    let snap = wait_terminal(&daemon, id, Duration::from_secs(15));
    assert_eq!(snap.phase, JobPhase::Cancelled);
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "cancel latency bounded by cluster poll, not run length (10s of dwell left)"
    );
    assert_eq!(
        snap.seeds_done + snap.seeds_failed + snap.seeds_cancelled,
        snap.seeds_total,
        "every seed reached a terminal outcome"
    );
    assert!(snap.seeds_cancelled > 0);
}

#[test]
fn multiple_jobs_interleave_without_cross_talk() {
    let daemon = Daemon::start(DaemonConfig {
        workers: 4,
        ..DaemonConfig::default()
    });
    let racy = daemon
        .submit(JobSpec::new(Workload::RacyCounter { epochs: 2 }, 2, 1, 3))
        .expect("racy admitted");
    let clean = daemon
        .submit(JobSpec::new(Workload::DisjointGrid { epochs: 2 }, 3, 1, 3))
        .expect("clean admitted");
    let racy_snap = wait_terminal(&daemon, racy, Duration::from_secs(60));
    let clean_snap = wait_terminal(&daemon, clean, Duration::from_secs(60));
    assert_eq!(racy_snap.phase, JobPhase::Done);
    assert_eq!(clean_snap.phase, JobPhase::Done);
    assert!(racy_snap.distinct_races > 0, "racy job surfaces races");
    assert_eq!(clean_snap.distinct_races, 0, "clean job stays clean");
    let clean_races = daemon.races(clean).expect("sealed");
    assert!(clean_races.races.is_empty());
    assert_eq!(clean_races.reports_merged, 0);
}

#[test]
fn tcp_front_end_serves_many_clients_and_survives_garbage() {
    let daemon = Daemon::start(DaemonConfig {
        workers: 2,
        ..DaemonConfig::default()
    });
    let front = TcpFrontEnd::serve(daemon.clone(), "127.0.0.1:0").unwrap();
    let addr = front.addr();

    let ask = |writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str| -> Value {
        writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        parse(response.trim()).expect("well-formed response")
    };

    // Client 1 sends garbage, then a valid ping on the same connection.
    let stream = TcpStream::connect(addr).unwrap();
    let mut w1 = stream.try_clone().unwrap();
    let mut r1 = BufReader::new(stream);
    let bad = ask(&mut w1, &mut r1, "{{{{ not json");
    assert_eq!(bad.get("ok").and_then(Value::as_bool), Some(false));
    let pong = ask(&mut w1, &mut r1, r#"{"op":"ping"}"#);
    assert_eq!(pong.get("ok").and_then(Value::as_bool), Some(true));

    // Clients 2..=4 submit and poll concurrently.
    let handles: Vec<_> = (0..3u64)
        .map(|i| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut w = stream.try_clone().unwrap();
                let mut r = BufReader::new(stream);
                let ask = |w: &mut TcpStream, r: &mut BufReader<TcpStream>, line: &str| {
                    w.write_all(format!("{line}\n").as_bytes()).unwrap();
                    let mut response = String::new();
                    r.read_line(&mut response).unwrap();
                    parse(response.trim()).unwrap()
                };
                let submitted = ask(
                    &mut w,
                    &mut r,
                    &format!(
                        r#"{{"op":"submit","workload":"racy_counter","epochs":1,"nprocs":2,"seed_base":{},"seed_count":1}}"#,
                        i * 100 + 1
                    ),
                );
                assert_eq!(submitted.get("ok").and_then(Value::as_bool), Some(true));
                let job = submitted.get("job").and_then(Value::as_u64).unwrap();
                let deadline = Instant::now() + Duration::from_secs(30);
                loop {
                    let status = ask(&mut w, &mut r, &format!(r#"{{"op":"status","job":{job}}}"#));
                    match status.get("phase").and_then(Value::as_str) {
                        Some("queued" | "running") => {
                            assert!(Instant::now() < deadline);
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Some(phase) => break phase.to_string(),
                        None => panic!("malformed status: {status}"),
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.join().unwrap(), "done");
    }
    assert_eq!(daemon.stats().jobs_submitted, 3);
}
