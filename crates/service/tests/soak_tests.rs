//! Chaos soak: the daemon under concurrent hostile load.
//!
//! A mixed fleet of jobs — scripted node kills, wire corruption, injected
//! detector-stage panics, synthetic flaky failures, deadline overruns —
//! runs concurrently on one daemon.  The suite asserts the full
//! robustness contract: every job reaches a terminal state within a
//! deadline (no hang), the daemon still serves afterwards, retries are
//! counted where injected, and every successful job's deduplicated races
//! are byte-identical (by stable fingerprint) to direct
//! [`Cluster::run`](cvm_dsm::Cluster::run) executions of the same seeds.
//!
//! `SERVICE_SEED` shifts every job's seed base, giving CI a cheap
//! diversity axis across runs (same pattern as `PIPELINE_SEED` /
//! `FAILOVER_SEED`).

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use cvm_dsm::RecoveryPolicy;
use cvm_service::json::Value;
use cvm_service::tcp::handle_line;
use cvm_service::{run_direct, Daemon, DaemonConfig, JobId, JobPhase, JobSpec, KillSpec, Workload};

/// Seed base for the soak, shifted by the `SERVICE_SEED` env axis.
fn seed_base() -> u64 {
    std::env::var("SERVICE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn wait_all_terminal(daemon: &Daemon, ids: &[JobId], budget: Duration) {
    let start = Instant::now();
    loop {
        let pending: Vec<JobId> = ids
            .iter()
            .copied()
            .filter(|id| !daemon.status(*id).expect("job known").phase.is_terminal())
            .collect();
        if pending.is_empty() {
            return;
        }
        assert!(
            start.elapsed() < budget,
            "soak hang: {pending:?} still non-terminal after {budget:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Direct-run reference: the deduped fingerprints of every seed of `spec`.
fn direct_fingerprints(spec: &JobSpec) -> BTreeSet<u64> {
    let mut prints = BTreeSet::new();
    for seed in spec.seeds() {
        let report = run_direct(spec, seed).expect("direct reference run");
        prints.extend(report.races.distinct_fingerprints());
    }
    prints
}

#[test]
fn chaos_soak_all_jobs_terminal_and_reports_exact() {
    let base = seed_base();
    let daemon = Daemon::start(DaemonConfig {
        workers: 4,
        queue_capacity: 32,
        ..DaemonConfig::default()
    });

    // --- The fleet -------------------------------------------------------
    // Healthy, racy: must finish Done with races.
    let racy = JobSpec::new(Workload::RacyCounter { epochs: 2 }, 3, base, 3);

    // Corrupted + lossy wire under recovery: the reliability layer's
    // checksum gate and retransmits must make this complete with reports
    // identical to the same config run directly.
    let mut corrupted = JobSpec::new(Workload::MixedStripes { epochs: 2 }, 3, base + 10, 3);
    corrupted.fault.drop_rate = 0.05;
    corrupted.fault.corrupt_rate = 0.05;
    corrupted.recovery = RecoveryPolicy::Recover { max_attempts: 3 };

    // Scripted kill + recovery: the victim dies mid-run, the cluster
    // rolls back and completes.
    let mut killed_recovering = JobSpec::new(Workload::RacyCounter { epochs: 3 }, 3, base + 20, 2);
    killed_recovering.fault.kill = Some(KillSpec {
        node: 1,
        at_event: 10,
    });
    killed_recovering.recovery = RecoveryPolicy::Recover { max_attempts: 3 };

    // Scripted kill + abort: every attempt fails transiently, the retry
    // budget is consumed, the job ends Failed — with retries counted.
    let mut killed_aborting = JobSpec::new(Workload::RacyCounter { epochs: 3 }, 3, base + 30, 1);
    killed_aborting.fault.kill = Some(KillSpec {
        node: 1,
        at_event: 10,
    });
    killed_aborting.recovery = RecoveryPolicy::Abort;
    killed_aborting.retry_budget = 2;

    // Injected detection-stage panic: contained by the cluster as a
    // terminal protocol failure, never retried.
    let mut stage_panic = JobSpec::new(Workload::DisjointGrid { epochs: 3 }, 2, base + 40, 1);
    stage_panic.pipelined = true;
    stage_panic.stage_panic_epoch = Some(1);

    // Genuine application panic: re-thrown out of `Cluster::run`, caught
    // by the pool's own crash isolation.
    let app_panic = JobSpec::new(Workload::PanickyApp { epochs: 2 }, 2, base + 45, 1);

    // Synthetic flakiness: two injected transient failures, then a real
    // run that succeeds.
    let mut flaky = JobSpec::new(Workload::DisjointGrid { epochs: 2 }, 2, base + 50, 2);
    flaky.flaky_first = 2;
    flaky.retry_budget = 8;

    // Deadline overruns: dwell makes each attempt blow its budget.
    let mut overrunning = JobSpec::new(
        Workload::SleepyGrid {
            epochs: 50,
            dwell_ms: 100,
        },
        2,
        base + 60,
        1,
    );
    overrunning.run_deadline = Duration::from_millis(200);
    overrunning.retry_budget = 1;

    // --- Submit everything concurrently ---------------------------------
    let specs = [
        ("racy", racy.clone()),
        ("corrupted", corrupted.clone()),
        ("killed_recovering", killed_recovering.clone()),
        ("killed_aborting", killed_aborting),
        ("stage_panic", stage_panic),
        ("app_panic", app_panic),
        ("flaky", flaky),
        ("overrunning", overrunning),
    ];
    let handles: Vec<_> = specs
        .iter()
        .map(|(name, spec)| {
            let daemon = daemon.clone();
            let spec = spec.clone();
            let name = *name;
            std::thread::spawn(move || (name, daemon.submit(spec).expect("admitted")))
        })
        .collect();
    let ids: Vec<(&str, JobId)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let id = |name: &str| ids.iter().find(|(n, _)| *n == name).unwrap().1;

    // --- Everything terminal within the soak deadline, no hang ----------
    let all: Vec<JobId> = ids.iter().map(|(_, id)| *id).collect();
    wait_all_terminal(&daemon, &all, Duration::from_secs(240));

    // --- Per-job verdicts ------------------------------------------------
    let snap = |name: &str| daemon.status(id(name)).unwrap();

    assert_eq!(snap("racy").phase, JobPhase::Done);
    assert!(snap("racy").distinct_races > 0);

    assert_eq!(
        snap("corrupted").phase,
        JobPhase::Done,
        "{:?}",
        snap("corrupted")
    );
    assert_eq!(snap("killed_recovering").phase, JobPhase::Done);

    let aborting = snap("killed_aborting");
    assert_eq!(aborting.phase, JobPhase::Failed);
    assert_eq!(
        aborting.retries, 2,
        "kill under Abort consumed the whole budget"
    );
    let err = aborting.first_error.expect("failure rendered");
    assert!(
        err.contains("died") || err.contains("fail"),
        "names the kill: {err}"
    );

    let panicked = snap("stage_panic");
    assert_eq!(panicked.phase, JobPhase::Failed);
    assert_eq!(
        panicked.retries, 0,
        "stage panics are terminal, never retried"
    );
    assert!(panicked
        .first_error
        .expect("stage failure rendered")
        .contains("stage"));

    let crashed = snap("app_panic");
    assert_eq!(crashed.phase, JobPhase::Failed);
    assert_eq!(crashed.retries, 0, "app panics are terminal, never retried");
    assert!(crashed
        .first_error
        .expect("app panic rendered")
        .contains("panic"));

    let flaked = snap("flaky");
    assert_eq!(flaked.phase, JobPhase::Done);
    assert_eq!(flaked.retries, 4, "2 injected faults on each of 2 seeds");

    let overran = snap("overrunning");
    assert_eq!(overran.phase, JobPhase::Failed);
    assert!(overran.deadline_overruns >= 2);
    assert!(overran
        .first_error
        .expect("overrun rendered")
        .contains("deadline"));

    // --- Reports byte-identical to direct runs ---------------------------
    for (name, spec) in [
        ("racy", &racy),
        ("corrupted", &corrupted),
        ("killed_recovering", &killed_recovering),
    ] {
        let got: BTreeSet<u64> = daemon
            .races(id(name))
            .expect("results retained")
            .races
            .iter()
            .map(|r| r.fingerprint)
            .collect();
        assert_eq!(
            got,
            direct_fingerprints(spec),
            "{name}: service races must equal direct Cluster::run races"
        );
    }

    // --- The daemon is still serving after the storm ---------------------
    let after = daemon
        .submit(JobSpec::new(
            Workload::RacyCounter { epochs: 1 },
            2,
            base + 70,
            1,
        ))
        .expect("daemon still admits");
    wait_all_terminal(&daemon, &[after], Duration::from_secs(60));
    assert_eq!(daemon.status(after).unwrap().phase, JobPhase::Done);

    // Pool counters saw the chaos.
    let stats = daemon.stats();
    assert!(
        stats.pool.panics_caught >= 1,
        "the app panic reached the pool's catch_unwind"
    );
    assert!(stats.pool.retries >= 6, "kills and flakiness retried");
    assert!(stats.pool.deadline_overruns >= 2);
    assert_eq!(stats.jobs_submitted, 9);
}

#[test]
fn graceful_drain_mid_load_leaves_every_job_terminal() {
    let base = seed_base();
    let daemon = Daemon::start(DaemonConfig {
        workers: 2,
        queue_capacity: 16,
        ..DaemonConfig::default()
    });

    // A mix of fast jobs and slow jobs that cannot finish in the drain
    // window.
    let mut ids = Vec::new();
    for i in 0..3u64 {
        ids.push(
            daemon
                .submit(JobSpec::new(
                    Workload::RacyCounter { epochs: 1 },
                    2,
                    base + i,
                    1,
                ))
                .expect("fast job admitted"),
        );
    }
    for i in 0..3u64 {
        ids.push(
            daemon
                .submit(JobSpec::new(
                    Workload::SleepyGrid {
                        epochs: 100,
                        dwell_ms: 50,
                    },
                    2,
                    base + 100 + i,
                    1,
                ))
                .expect("slow job admitted"),
        );
    }

    // Drain mid-load with a window long enough for the fast jobs only.
    let report = daemon.drain(Duration::from_secs(2));
    assert!(report.jobs_cancelled > 0, "slow jobs had to be cancelled");

    // Every accepted job is terminal; none is lost or stuck.
    for id in &ids {
        let snap = daemon.status(*id).expect("job known after drain");
        assert!(
            snap.phase.is_terminal(),
            "{id} left non-terminal by drain: {:?}",
            snap.phase
        );
        assert_eq!(
            snap.seeds_done + snap.seeds_failed + snap.seeds_cancelled,
            snap.seeds_total,
            "{id}: every seed has a terminal outcome"
        );
    }

    // Admission is closed for good.
    assert!(matches!(
        daemon.submit(JobSpec::new(Workload::RacyCounter { epochs: 1 }, 2, 1, 1)),
        Err(cvm_service::SubmitError::Draining)
    ));
    assert!(daemon.stats().draining);
}

#[test]
fn soak_through_the_wire_protocol() {
    // The same storm shape driven through the JSON protocol layer (no
    // sockets: `handle_line` is the exact function the TCP threads call).
    let base = seed_base();
    let daemon = Daemon::start(DaemonConfig {
        workers: 3,
        ..DaemonConfig::default()
    });

    let submit = |line: String| -> u64 {
        let response = handle_line(&daemon, &line);
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "submit rejected: {response}"
        );
        response.get("job").and_then(Value::as_u64).unwrap()
    };
    let racy = submit(format!(
        r#"{{"op":"submit","workload":"racy_counter","epochs":2,"nprocs":3,"seed_base":{base},"seed_count":2}}"#
    ));
    let killed = submit(format!(
        r#"{{"op":"submit","workload":"racy_counter","epochs":3,"nprocs":3,"seed_base":{},"seed_count":1,"kill_node":1,"kill_at_event":40,"recover_attempts":3}}"#,
        base + 10
    ));
    let flaky = submit(format!(
        r#"{{"op":"submit","workload":"disjoint_grid","epochs":1,"nprocs":2,"seed_base":{},"seed_count":1,"flaky_first":1,"retry_budget":4}}"#,
        base + 20
    ));

    let deadline = Instant::now() + Duration::from_secs(120);
    for job in [racy, killed, flaky] {
        loop {
            let status = handle_line(&daemon, &format!(r#"{{"op":"status","job":{job}}}"#));
            match status.get("phase").and_then(Value::as_str) {
                Some("queued" | "running") => {
                    assert!(Instant::now() < deadline, "job {job} stuck");
                    std::thread::sleep(Duration::from_millis(20));
                }
                Some("done") => break,
                other => panic!("job {job} ended {other:?}"),
            }
        }
    }

    // Flaky retried exactly once, visible over the wire.
    let status = handle_line(&daemon, &format!(r#"{{"op":"status","job":{flaky}}}"#));
    assert_eq!(status.get("retries").and_then(Value::as_u64), Some(1));

    // Races of the racy job travel as hex fingerprints.
    let races = handle_line(&daemon, &format!(r#"{{"op":"races","job":{racy}}}"#));
    let items = races.get("races").and_then(Value::as_arr).unwrap();
    assert!(!items.is_empty());

    // Drain over the wire: clean shutdown verdict on an idle daemon.
    let drained = handle_line(&daemon, r#"{"op":"drain","deadline_ms":30000}"#);
    assert_eq!(drained.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(drained.get("clean").and_then(Value::as_bool), Some(true));
}
