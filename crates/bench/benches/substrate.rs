//! Criterion micro-benchmarks of the substrates: bitmaps, diffs, the wire
//! codec, and a whole small cluster run (lock hand-off latency).

use criterion::{criterion_group, criterion_main, Criterion};
use cvm_dsm::{Cluster, DsmConfig, Msg};
use cvm_net::wire::Wire;
use cvm_page::{Bitmap, Diff, PageId};
use cvm_race::make_interval;
use cvm_vclock::VClock;
use std::hint::black_box;

fn bench_bitmap_ops(c: &mut Criterion) {
    let mut a = Bitmap::new(1024);
    let mut b = Bitmap::new(1024);
    for i in (0..1024).step_by(5) {
        a.set(i);
    }
    for i in (2..1024).step_by(7) {
        b.set(i);
    }
    c.bench_function("bitmap_overlap_1024", |bch| {
        bch.iter(|| black_box(a.overlaps(black_box(&b))))
    });
    c.bench_function("bitmap_overlap_words_1024", |bch| {
        bch.iter(|| black_box(a.overlap_words(&b).count()))
    });
}

fn bench_diff(c: &mut Criterion) {
    let twin: Vec<u64> = (0..1024).map(|i| i as u64).collect();
    let mut cur = twin.clone();
    for i in (0..1024).step_by(9) {
        cur[i] ^= 0xFF;
    }
    c.bench_function("diff_make_1024_words", |b| {
        b.iter(|| black_box(Diff::make(PageId(0), black_box(&twin), black_box(&cur))))
    });
    let d = Diff::make(PageId(0), &twin, &cur);
    c.bench_function("diff_apply_114_entries", |b| {
        b.iter(|| {
            let mut data = twin.clone();
            d.apply(&mut data);
            black_box(data)
        })
    });
}

fn bench_codec(c: &mut Criterion) {
    let records: Vec<_> = (0..32)
        .map(|i| {
            let mut vc = vec![0u32; 8];
            vc[(i % 8) as usize] = i / 8 + 1;
            std::sync::Arc::new(make_interval(
                (i % 8) as u16,
                i / 8 + 1,
                vc,
                &[i, i + 1, i + 2],
                &[i + 3, i + 4, i + 5, i + 6],
            ))
        })
        .collect();
    let msg = Msg::LockGrant {
        lock: 3,
        records,
        vc: VClock::from(vec![4, 4, 4, 4, 4, 4, 4, 4]),
        trace_from: None,
    };
    let bytes = msg.to_bytes();
    c.bench_function("encode_lock_grant_32_records", |b| {
        b.iter(|| black_box(msg.to_bytes()))
    });
    c.bench_function("decode_lock_grant_32_records", |b| {
        b.iter(|| black_box(Msg::from_bytes(black_box(&bytes)).unwrap()))
    });
}

fn bench_lock_handoff(c: &mut Criterion) {
    c.bench_function("cluster_2proc_lock_pingpong_x50", |b| {
        b.iter(|| {
            let report = Cluster::run(
                DsmConfig::new(2),
                |alloc| alloc.alloc("n", 8).unwrap(),
                |h, &n| {
                    for _ in 0..50 {
                        h.lock(1);
                        let v = h.read(n);
                        h.write(n, v + 1);
                        h.unlock(1);
                    }
                    h.barrier();
                },
            )
            .expect("cluster run");
            black_box(report.virtual_cycles())
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bitmap_ops, bench_diff, bench_codec, bench_lock_handoff
}
criterion_main!(benches);
