//! Criterion micro-benchmarks of the detector hot paths (paper §4 steps
//! 2-5): the constant-time concurrency check, the comparison algorithm
//! under each overlap strategy, and word-level bitmap comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cvm_page::{Geometry, PageBitmaps, PageId};
use cvm_race::{
    make_interval, BitmapStore, EpochDetector, Interval, OverlapStrategy, PairEnumeration,
};
use cvm_vclock::{IntervalId, IntervalStamp, ProcId, VClock};
use std::hint::black_box;

fn stamps(n: usize) -> Vec<IntervalStamp> {
    (0..n)
        .map(|i| {
            let p = (i % 8) as u16;
            let idx = (i / 8 + 1) as u32;
            let mut vc = vec![0u32; 8];
            vc[p as usize] = idx;
            vc[(i + 3) % 8] = (i % 5) as u32;
            if (i + 3) % 8 == p as usize {
                vc[p as usize] = idx;
            }
            IntervalStamp::new(IntervalId::new(ProcId(p), idx), VClock::from(vc))
        })
        .collect()
}

fn bench_concurrency_check(c: &mut Criterion) {
    let s = stamps(64);
    c.bench_function("vv_concurrent_check_64x64", |b| {
        b.iter(|| {
            let mut count = 0u32;
            for a in &s {
                for x in &s {
                    if a.concurrent_with(black_box(x)) {
                        count += 1;
                    }
                }
            }
            black_box(count)
        })
    });
}

fn epoch(nintervals_per_proc: u32, pages_per_list: u32) -> Vec<Interval> {
    let mut out = Vec::new();
    for p in 0..8u16 {
        for i in 1..=nintervals_per_proc {
            let mut vc = vec![0u32; 8];
            vc[p as usize] = i;
            let writes: Vec<u32> = (0..pages_per_list)
                .map(|k| (u32::from(p) * 13 + k * 7) % 256)
                .collect();
            let reads: Vec<u32> = (0..pages_per_list).map(|k| (i * 11 + k) % 256).collect();
            out.push(make_interval(p, i, vc, &writes, &reads));
        }
    }
    out
}

fn bench_plan_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("comparison_algorithm");
    for (label, per_proc, pages) in [("barrier_app", 2u32, 4u32), ("lock_app", 24, 12)] {
        let intervals = epoch(per_proc, pages);
        for strategy in [
            OverlapStrategy::Quadratic,
            OverlapStrategy::SortedMerge,
            OverlapStrategy::PageBitmap,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), label),
                &intervals,
                |b, ivs| {
                    let d = EpochDetector {
                        overlap: strategy,
                        ..Default::default()
                    };
                    b.iter(|| black_box(d.plan(black_box(ivs))))
                },
            );
        }
    }
    group.finish();
}

/// Calibration sweep for [`OverlapStrategy::Auto`]'s quadratic-to-merge
/// cutover: intersect two half-overlapping notice lists of length `L`
/// under both candidate strategies.  The crossover length observed here
/// sets `AUTO_OVERLAP_CUTOVER` in `cvm-race`.
fn bench_overlap_cutover(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlap_cutover");
    for len in [1u32, 2, 3, 4, 6, 8, 12, 16, 32] {
        // Sorted lists sharing every other page, the detector's common
        // partial-overlap shape.
        let a_pages: Vec<u32> = (0..len).map(|k| k * 2).collect();
        let b_pages: Vec<u32> = (0..len).map(|k| k * 2 + (k % 2)).collect();
        let mut vc_a = vec![0u32; 8];
        vc_a[0] = 1;
        let mut vc_b = vec![0u32; 8];
        vc_b[1] = 1;
        let a = make_interval(0, 1, vc_a, &a_pages, &a_pages);
        let bv = make_interval(1, 1, vc_b, &b_pages, &b_pages);
        for strategy in [OverlapStrategy::Quadratic, OverlapStrategy::SortedMerge] {
            group.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), len),
                &(&a, &bv),
                |bch, (a, bv)| {
                    let d = EpochDetector {
                        overlap: strategy,
                        ..Default::default()
                    };
                    bch.iter(|| black_box(d.overlap_pages(black_box(a), black_box(bv))))
                },
            );
        }
    }
    group.finish();
}

fn bench_pair_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("pair_enumeration");
    for (label, per_proc, pages) in [("barrier_app", 2u32, 4u32), ("lock_app", 48, 8)] {
        let intervals = epoch(per_proc, pages);
        for enumeration in [PairEnumeration::Naive, PairEnumeration::Pruned] {
            group.bench_with_input(
                BenchmarkId::new(format!("{enumeration:?}"), label),
                &intervals,
                |b, ivs| {
                    let d = EpochDetector {
                        enumeration,
                        ..EpochDetector::new()
                    };
                    b.iter(|| black_box(d.plan(black_box(ivs))))
                },
            );
        }
    }
    group.finish();
}

fn bench_postmortem_analysis(c: &mut Criterion) {
    use cvm_page::PageBitmaps;
    use cvm_race::trace::{analyze_trace, TraceEvent};
    // A 4-process, 8-epoch trace with modest computation events.
    let traces: Vec<Vec<TraceEvent>> = (0..4)
        .map(|p| {
            let mut log = Vec::new();
            for e in 0..8u64 {
                let mut bm = PageBitmaps::new(1024);
                bm.write.set((p * 13 + e as usize * 7) % 1024);
                bm.read.set((p * 5 + e as usize * 3) % 1024);
                log.push(TraceEvent::Computation {
                    pages: vec![(PageId((e % 4) as u32), bm)],
                });
                log.push(TraceEvent::BarrierArrive { epoch: e });
                log.push(TraceEvent::BarrierResume { epoch: e });
            }
            log
        })
        .collect();
    let g = Geometry::with_page_bytes(8192);
    c.bench_function("postmortem_analyze_4proc_8epoch", |b| {
        b.iter(|| black_box(analyze_trace(black_box(&traces), g)))
    });
}

fn bench_bitmap_compare(c: &mut Criterion) {
    let g = Geometry::with_page_bytes(8192);
    let a = make_interval(0, 1, vec![1, 0], &[0], &[]);
    let bvi = make_interval(1, 1, vec![0, 1], &[0], &[]);
    let d = EpochDetector::new();
    let mut store = BitmapStore::new();
    let mut bm_a = PageBitmaps::new(g.page_words);
    let mut bm_b = PageBitmaps::new(g.page_words);
    for w in (0..g.page_words).step_by(3) {
        bm_a.write.set(w);
    }
    for w in (1..g.page_words).step_by(3) {
        bm_b.write.set(w);
    }
    store.insert(a.id(), PageId(0), bm_a);
    store.insert(bvi.id(), PageId(0), bm_b);
    let intervals = vec![a, bvi];
    c.bench_function("bitmap_compare_8k_page_false_sharing", |b| {
        b.iter(|| {
            let mut plan = d.plan(black_box(&intervals));
            let reports = d.compare(&mut plan, &store, g, 0).unwrap();
            black_box(reports)
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_concurrency_check, bench_plan_strategies, bench_overlap_cutover, bench_pair_enumeration, bench_postmortem_analysis, bench_bitmap_compare
}
criterion_main!(benches);
