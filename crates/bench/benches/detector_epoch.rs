//! End-to-end benchmark of one barrier-master detection epoch at paper
//! scale (8 nodes), comparing the paper's serial master configuration
//! (naive all-pairs enumeration, one worker) against this codebase's
//! default (binary-search pruned enumeration, summary-guarded chunk
//! comparison, auto worker count).
//!
//! The epoch models a lock-heavy application (TSP/Water shape): intervals
//! close in a global round-robin acquire order, so each interval is
//! concurrent only with the handful of peers "in flight" around it and
//! ordered with everything else — the structure the pruned enumeration
//! exploits.  Page lists overlap between neighbours and the word-level
//! bitmaps are mostly disjoint (false sharing), the common case the
//! bitmap summary word short-circuits.
//!
//! Results are harvested from the `CSV:` lines into
//! `bench_results/detector_epoch.csv`.

use criterion::{criterion_group, criterion_main, Criterion};
use cvm_page::{Geometry, PageBitmaps, PageId};
use cvm_race::{make_interval, BitmapStore, EpochDetector, Interval, PairEnumeration};
use std::hint::black_box;

const NPROCS: u16 = 8;
const PER_PROC: u32 = 192;
/// Intervals "in flight" at once: interval `t` has only seen intervals
/// that closed at least `WINDOW` positions earlier, so each interval is
/// concurrent with its `WINDOW - 1` global neighbours on either side —
/// the paper's observation that almost all pairs are ordered, with a thin
/// concurrent frontier.
const WINDOW: u32 = 2;
const PAGES_PER_LIST: u32 = 4;
const PAGE_WORDS: usize = 1024; // 8 KB DECstation pages.

/// One lock-heavy barrier epoch: interval `t` of the global round-robin
/// order belongs to process `t % 8`.  Knowledge propagates with a lag of
/// [`WINDOW`] positions (the release chains are still in transit for
/// anything closer), producing the realistic mostly-ordered structure
/// with a bounded concurrency window that the pruned enumeration
/// exploits.  Per-process knowledge of each peer is non-decreasing in
/// program order by construction.
fn epoch() -> Vec<Interval> {
    let nprocs = u32::from(NPROCS);
    let total = nprocs * PER_PROC;
    let mut out = Vec::new();
    for t in 0..total {
        let p = (t % nprocs) as u16;
        let index = t / nprocs + 1;
        let mut vc = vec![0u32; usize::from(NPROCS)];
        for q in 0..nprocs {
            // Number of q's intervals with global position <= t - WINDOW.
            vc[q as usize] = if t >= WINDOW + q {
                (t - WINDOW - q) / nprocs + 1
            } else {
                0
            };
        }
        vc[usize::from(p)] = index;
        let writes: Vec<u32> = (0..PAGES_PER_LIST)
            .map(|k| (u32::from(p) * 7 + index + k) % 32)
            .collect();
        let reads: Vec<u32> = (0..PAGES_PER_LIST)
            .map(|k| (u32::from(p) * 11 + index + k * 3) % 32)
            .collect();
        out.push(make_interval(p, index, vc, &writes, &reads));
    }
    out
}

/// Sparse, mostly per-process-disjoint word bitmaps for every page an
/// interval noticed: the false-sharing common case, with occasional true
/// overlaps so the comparison also produces reports.
fn bitmaps(intervals: &[Interval], g: Geometry) -> BitmapStore {
    let mut store = BitmapStore::new();
    for iv in intervals {
        let p = u32::from(iv.proc().0);
        let index = iv.id().index;
        let mut pages: Vec<PageId> = iv
            .write_notices
            .iter()
            .chain(iv.read_notices.iter())
            .copied()
            .collect();
        pages.sort_unstable();
        pages.dedup();
        for page in pages {
            let mut bm = PageBitmaps::new(g.page_words);
            for k in 0..8u32 {
                // Word sets are offset by process so most pairs are
                // word-disjoint; every 16th interval collides on word 0.
                let w = (p * 101 + k * 37) as usize % g.page_words;
                if iv.write_notices.contains(&page) {
                    bm.write.set(w);
                } else {
                    bm.read.set(w);
                }
            }
            if index % 16 == 0 && iv.write_notices.contains(&page) {
                bm.write.set(0);
            }
            store.insert(iv.id(), page, bm);
        }
    }
    store
}

fn run_epoch(d: &EpochDetector, intervals: &[Interval], store: &BitmapStore, g: Geometry) -> usize {
    let mut plan = d.plan(intervals);
    let reports = d.compare(&mut plan, store, g, 0).expect("bitmaps present");
    reports.len()
}

fn bench_epoch(c: &mut Criterion) {
    let g = Geometry::with_page_bytes(PAGE_WORDS * 8);
    let intervals = epoch();
    let store = bitmaps(&intervals, g);

    let serial = EpochDetector {
        enumeration: PairEnumeration::Naive,
        workers: 1,
        ..EpochDetector::new()
    };
    let optimized = EpochDetector {
        enumeration: PairEnumeration::Pruned,
        workers: 0,
        ..EpochDetector::new()
    };

    // Both configurations must agree bit-for-bit on the reports, and the
    // epoch must genuinely exercise the comparison phase.
    let probe = optimized.plan(&intervals);
    assert!(
        probe.check.entries.len() > 500,
        "check list unexpectedly small: {}",
        probe.check.entries.len()
    );
    assert_eq!(
        run_epoch(&serial, &intervals, &store, g),
        run_epoch(&optimized, &intervals, &store, g),
    );

    c.bench_function("epoch_8node_serial_baseline", |b| {
        b.iter(|| black_box(run_epoch(&serial, black_box(&intervals), &store, g)))
    });
    c.bench_function("epoch_8node_optimized_default", |b| {
        b.iter(|| black_box(run_epoch(&optimized, black_box(&intervals), &store, g)))
    });

    // Phase split: planning alone (enumeration being the serial master's
    // bottleneck is the effect behind Figure 4's scaling).
    c.bench_function("plan_8node_naive_serial", |b| {
        b.iter(|| black_box(serial.plan(black_box(&intervals))))
    });
    c.bench_function("plan_8node_pruned", |b| {
        b.iter(|| black_box(optimized.plan(black_box(&intervals))))
    });

    // Comparison alone, on the same plan, isolating the summary-guarded
    // chunk walk.
    let mut plan = optimized.plan(&intervals);
    c.bench_function("compare_8node_summary_guarded", |b| {
        b.iter(|| {
            plan.stats.bitmap_comparisons = 0;
            black_box(optimized.compare(&mut plan, &store, g, 0).unwrap())
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_epoch
}
criterion_main!(benches);
