//! End-to-end benchmark of one barrier-master detection epoch at paper
//! scale (8 nodes), comparing the paper's serial master configuration
//! (naive all-pairs enumeration, one worker) against this codebase's
//! default (binary-search pruned enumeration, summary-guarded SWAR chunk
//! comparison, auto worker count), with and without the persistent
//! per-epoch arena the pipelined stage uses.
//!
//! The synthetic epoch lives in [`cvm_bench::epoch_synth`]; the
//! `pipeline_overlap` harness binary replays the same epochs with simple
//! wall-clock timing and persists the rows to
//! `bench_results/detector_epoch.csv`.

use criterion::{criterion_group, criterion_main, Criterion};
use cvm_bench::epoch_synth::{bitmaps, epoch, PAGE_WORDS};
use cvm_page::Geometry;
use cvm_race::{BitmapStore, EpochArena, EpochDetector, Interval, PairEnumeration};
use std::hint::black_box;

fn run_epoch(d: &EpochDetector, intervals: &[Interval], store: &BitmapStore, g: Geometry) -> usize {
    let mut plan = d.plan(intervals);
    let reports = d.compare(&mut plan, store, g, 0).expect("bitmaps present");
    reports.len()
}

/// The pipelined stage's steady state: plan and compare through one
/// long-lived arena, so the epoch runs without mid-epoch heap allocation.
fn run_epoch_arena(
    d: &EpochDetector,
    intervals: &[Interval],
    store: &BitmapStore,
    g: Geometry,
    arena: &mut EpochArena,
) -> usize {
    let mut plan = d.plan_with(intervals, arena);
    let reports = d
        .compare_with(&mut plan, store, g, 0, arena)
        .expect("bitmaps present");
    reports.len()
}

fn bench_epoch(c: &mut Criterion) {
    let g = Geometry::with_page_bytes(PAGE_WORDS * 8);
    let intervals = epoch();
    let store = bitmaps(&intervals, g);

    let serial = EpochDetector {
        enumeration: PairEnumeration::Naive,
        workers: 1,
        ..EpochDetector::new()
    };
    let optimized = EpochDetector {
        enumeration: PairEnumeration::Pruned,
        workers: 0,
        ..EpochDetector::new()
    };

    // All configurations must agree bit-for-bit on the reports, and the
    // epoch must genuinely exercise the comparison phase.
    let probe = optimized.plan(&intervals);
    assert!(
        probe.check.entries.len() > 500,
        "check list unexpectedly small: {}",
        probe.check.entries.len()
    );
    let mut arena = EpochArena::new();
    let baseline_reports = run_epoch(&serial, &intervals, &store, g);
    assert_eq!(
        baseline_reports,
        run_epoch(&optimized, &intervals, &store, g)
    );
    assert_eq!(
        baseline_reports,
        run_epoch_arena(&optimized, &intervals, &store, g, &mut arena)
    );

    c.bench_function("epoch_8node_serial_baseline", |b| {
        b.iter(|| black_box(run_epoch(&serial, black_box(&intervals), &store, g)))
    });
    c.bench_function("epoch_8node_optimized_default", |b| {
        b.iter(|| black_box(run_epoch(&optimized, black_box(&intervals), &store, g)))
    });
    // The pipelined stage's configuration: same detector, one warm arena
    // reused across iterations (epochs).
    c.bench_function("epoch_8node_swar_arena", |b| {
        b.iter(|| {
            black_box(run_epoch_arena(
                &optimized,
                black_box(&intervals),
                &store,
                g,
                &mut arena,
            ))
        })
    });

    // Phase split: planning alone (enumeration being the serial master's
    // bottleneck is the effect behind Figure 4's scaling).
    c.bench_function("plan_8node_naive_serial", |b| {
        b.iter(|| black_box(serial.plan(black_box(&intervals))))
    });
    c.bench_function("plan_8node_pruned", |b| {
        b.iter(|| black_box(optimized.plan(black_box(&intervals))))
    });

    // Comparison alone, on the same plan, isolating the summary-guarded
    // SWAR chunk walk.
    let mut plan = optimized.plan(&intervals);
    c.bench_function("compare_8node_summary_guarded", |b| {
        b.iter(|| {
            plan.stats.bitmap_comparisons = 0;
            black_box(optimized.compare(&mut plan, &store, g, 0).unwrap())
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_epoch
}
criterion_main!(benches);
