//! Synthetic 8-node detection epochs at paper scale, shared by the
//! `detector_epoch` Criterion bench and the `pipeline_overlap` harness
//! binary (which persists the measurements to `bench_results/`).
//!
//! The epoch models a lock-heavy application (TSP/Water shape): intervals
//! close in a global round-robin acquire order, so each interval is
//! concurrent only with the handful of peers "in flight" around it and
//! ordered with everything else — the structure the pruned enumeration
//! exploits.  Page lists overlap between neighbours and the word-level
//! bitmaps are mostly disjoint (false sharing), the common case the
//! bitmap summary word short-circuits.

use cvm_page::{Geometry, PageBitmaps, PageId};
use cvm_race::{make_interval, BitmapStore, Interval};

/// Paper-scale node count.
pub const NPROCS: u16 = 8;
/// Intervals per process in the synthetic epoch.
pub const PER_PROC: u32 = 192;
/// Intervals "in flight" at once: interval `t` has only seen intervals
/// that closed at least `WINDOW` positions earlier, so each interval is
/// concurrent with its `WINDOW - 1` global neighbours on either side —
/// the paper's observation that almost all pairs are ordered, with a thin
/// concurrent frontier.
pub const WINDOW: u32 = 2;
/// Pages noticed per interval per kind.
pub const PAGES_PER_LIST: u32 = 4;
/// 8 KB DECstation pages, in words.
pub const PAGE_WORDS: usize = 1024;

/// One lock-heavy barrier epoch: interval `t` of the global round-robin
/// order belongs to process `t % 8`.  Knowledge propagates with a lag of
/// [`WINDOW`] positions (the release chains are still in transit for
/// anything closer), producing the realistic mostly-ordered structure
/// with a bounded concurrency window that the pruned enumeration
/// exploits.  Per-process knowledge of each peer is non-decreasing in
/// program order by construction.
pub fn epoch() -> Vec<Interval> {
    let nprocs = u32::from(NPROCS);
    let total = nprocs * PER_PROC;
    let mut out = Vec::new();
    for t in 0..total {
        let p = (t % nprocs) as u16;
        let index = t / nprocs + 1;
        let mut vc = vec![0u32; usize::from(NPROCS)];
        for q in 0..nprocs {
            // Number of q's intervals with global position <= t - WINDOW.
            vc[q as usize] = if t >= WINDOW + q {
                (t - WINDOW - q) / nprocs + 1
            } else {
                0
            };
        }
        vc[usize::from(p)] = index;
        let writes: Vec<u32> = (0..PAGES_PER_LIST)
            .map(|k| (u32::from(p) * 7 + index + k) % 32)
            .collect();
        let reads: Vec<u32> = (0..PAGES_PER_LIST)
            .map(|k| (u32::from(p) * 11 + index + k * 3) % 32)
            .collect();
        out.push(make_interval(p, index, vc, &writes, &reads));
    }
    out
}

/// Sparse, mostly per-process-disjoint word bitmaps for every page an
/// interval noticed: the false-sharing common case, with occasional true
/// overlaps so the comparison also produces reports.
pub fn bitmaps(intervals: &[Interval], g: Geometry) -> BitmapStore {
    let mut store = BitmapStore::new();
    for iv in intervals {
        let p = u32::from(iv.proc().0);
        let index = iv.id().index;
        let mut pages: Vec<PageId> = iv
            .write_notices
            .iter()
            .chain(iv.read_notices.iter())
            .copied()
            .collect();
        pages.sort_unstable();
        pages.dedup();
        for page in pages {
            let mut bm = PageBitmaps::new(g.page_words);
            for k in 0..8u32 {
                // Word sets are offset by process so most pairs are
                // word-disjoint; every 16th interval collides on word 0.
                let w = (p * 101 + k * 37) as usize % g.page_words;
                if iv.write_notices.contains(&page) {
                    bm.write.set(w);
                } else {
                    bm.read.set(w);
                }
            }
            if index % 16 == 0 && iv.write_notices.contains(&page) {
                bm.write.set(0);
            }
            store.insert(iv.id(), page, bm);
        }
    }
    store
}
