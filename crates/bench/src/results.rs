//! CSV artifacts for the harness binaries.
//!
//! Every table/figure binary both prints its table and appends the same
//! rows to `bench_results/<name>.csv`, so downstream plotting and the
//! EXPERIMENTS.md bookkeeping have a machine-readable record.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Directory the harness writes artifacts into.
pub const RESULTS_DIR: &str = "bench_results";

/// A CSV writer for one experiment.
pub struct Csv {
    path: PathBuf,
    rows: Vec<String>,
}

impl Csv {
    /// Starts a CSV with the given header columns.
    pub fn new(name: &str, header: &[&str]) -> Csv {
        Csv {
            path: Path::new(RESULTS_DIR).join(format!("{name}.csv")),
            rows: vec![header.join(",")],
        }
    }

    /// Appends one row; values are rendered with `Display`.
    pub fn row(&mut self, values: &[&dyn std::fmt::Display]) {
        let rendered: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        self.rows.push(rendered.join(","));
    }

    /// Writes the file (best-effort: the printed table is the primary
    /// output, so IO failures only warn).
    pub fn flush(self) {
        if let Err(e) = self.try_flush() {
            eprintln!("warning: could not write {}: {e}", self.path.display());
        }
    }

    fn try_flush(&self) -> std::io::Result<()> {
        fs::create_dir_all(RESULTS_DIR)?;
        let mut f = fs::File::create(&self.path)?;
        for row in &self.rows {
            writeln!(f, "{row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_renders_rows() {
        let mut csv = Csv::new("unit_test_artifact", &["app", "value"]);
        csv.row(&[&"FFT", &2.08f64]);
        csv.row(&[&"SOR", &1.83f64]);
        assert_eq!(csv.rows.len(), 3);
        assert_eq!(csv.rows[0], "app,value");
        assert_eq!(csv.rows[1], "FFT,2.08");
        // Flush into the artifacts directory and verify round-trip.
        let path = csv.path.clone();
        csv.flush();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("SOR,1.83"));
        let _ = std::fs::remove_file(path);
    }
}
