//! Regenerates **Table 2: Instrumentation Statistics**.
//!
//! Runs the ATOM-model classifier over synthetic binaries shaped like the
//! four application executables and prints the per-class load/store site
//! counts, plus the static elimination fraction (the paper's ">99 %").

use cvm_instrument::synth::{app_profiles, synthesize};
use cvm_instrument::InstrumentedBinary;

fn main() {
    println!("Table 2. Instrumentation Statistics (load and store sites)");
    cvm_bench::rule(78);
    println!(
        "{:<8}{:>10}{:>10}{:>10}{:>8}{:>8}{:>12}{:>12}",
        "", "Stack", "Static", "Library", "CVM", "Inst.", "Total", "Eliminated"
    );
    cvm_bench::rule(78);
    for profile in app_profiles() {
        let obj = synthesize(&profile, 0xC0FFEE);
        let ib = InstrumentedBinary::build(&obj);
        let c = ib.counts;
        println!(
            "{:<8}{:>10}{:>10}{:>10}{:>8}{:>8}{:>12}{:>12}",
            profile.name,
            c.stack,
            c.static_data,
            c.library,
            c.cvm,
            c.instrumented,
            c.total(),
            cvm_bench::pct(c.elimination_frac()),
        );
    }
    cvm_bench::rule(78);
    println!("Paper: FFT 1285/1496/124716/3910/261; SOR 342/1304/48717/3910/126;");
    println!("       TSP 244/1213/48717/3910/350;  Water 649/1919/124716/3910/528.");
}
