//! Regenerates **Table 3: Dynamic Metrics**.
//!
//! Columns: fraction of intervals involved in at least one concurrent pair
//! with page overlap ("Intervals Used"), fraction of access bitmaps
//! retrieved ("Bitmaps Used"), the bandwidth overhead of read notices
//! ("Msg Ohead"), and the per-process rates of instrumented analysis calls
//! for shared vs private data.

use cvm_apps::App;
use cvm_bench::{run_app, PAPER_PROCS};

fn main() {
    let mut csv = cvm_bench::results::Csv::new(
        "table3",
        &[
            "app",
            "intervals_used",
            "bitmaps_used",
            "msg_overhead",
            "msg_overhead_vs_sync",
            "shared_per_sec",
            "private_per_sec",
        ],
    );
    println!("Table 3. Dynamic Metrics ({PAPER_PROCS} processors, detection on)");
    cvm_bench::rule(96);
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>24}{:>24}",
        "", "Intervals", "Bitmaps", "Msg", "Inst. Shared", "Inst. Private"
    );
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>24}{:>24}",
        "", "Used", "Used", "Ohead", "Accesses/s", "Accesses/s"
    );
    cvm_bench::rule(96);
    let paper: [(App, &str, &str, &str, u64, u64); 4] = [
        (App::Fft, "15%", "1%", "0.4%", 311_079, 924_226),
        (App::Sor, "0%", "0%", "1.6%", 483_310, 251_200),
        (App::Tsp, "93%", "13%", "1.3%", 737_159, 2_195_510),
        (App::Water, "13%", "11%", "48.3%", 145_095, 982_965),
    ];
    for (app, p_iu, p_bu, p_mo, p_s, p_p) in paper {
        let report = run_app(app, PAPER_PROCS, true);
        let (shared_rate, private_rate) = report.analysis_rates();
        println!(
            "{:<8}{:>12}{:>12}{:>12}{:>24.0}{:>24.0}",
            app.name(),
            cvm_bench::pct(report.det_stats.intervals_used_frac()),
            cvm_bench::pct(report.det_stats.bitmaps_used_frac()),
            cvm_bench::pct(report.net.read_notice_overhead()),
            shared_rate,
            private_rate,
        );
        println!(
            "{:<8}{:>12}{:>12}{:>12}   (vs sync traffic only)",
            "",
            "",
            "",
            cvm_bench::pct(report.net.read_notice_sync_overhead()),
        );
        println!(
            "{:<8}{:>12}{:>12}{:>12}{:>24}{:>24}   (paper)",
            "", p_iu, p_bu, p_mo, p_s, p_p
        );
        csv.row(&[
            &app.name(),
            &format!("{:.4}", report.det_stats.intervals_used_frac()),
            &format!("{:.4}", report.det_stats.bitmaps_used_frac()),
            &format!("{:.4}", report.net.read_notice_overhead()),
            &format!("{:.4}", report.net.read_notice_sync_overhead()),
            &format!("{shared_rate:.0}"),
            &format!("{private_rate:.0}"),
        ]);
    }
    csv.flush();
    cvm_bench::rule(96);
    println!("Rates are per process, over virtual (250 MHz Alpha) time.");
}
