//! Regenerates **Figure 5**: races that occur only on weak memory.
//!
//! The scripted scenario (after Adve et al., simplified as in the paper):
//! a producer bumps a queue pointer and clears an empty flag but the
//! release is *missing*; a consumer reads the flag and pointer without an
//! acquire and writes through the stale pointer, colliding with a third
//! process.  On sequentially consistent hardware the consumer could not
//! see the new flag with the old pointer, so the element races
//! (`w2(37)-w3(37)` etc.) "would not occur in SC system" — under LRC they
//! do, and the detector reports all of them.

use cvm_apps::App;
use cvm_dsm::{Cluster, DsmConfig};
use cvm_page::Geometry;

fn main() {
    let _ = App::ALL; // Table-harness crate; unused here.
    let mut cfg = DsmConfig::new(3);
    cfg.geometry = Geometry::with_page_bytes(8192);

    let report = Cluster::run(
        cfg,
        |alloc| {
            let q_ptr = alloc.alloc("qPtr", 8).unwrap();
            let q_empty = alloc.alloc("qEmpty", 8).unwrap();
            let data = alloc.alloc("qData", 8 * 256).unwrap();
            (q_ptr, q_empty, data)
        },
        |h, &(q_ptr, q_empty, data)| {
            // Epoch 0: establish the old queue state everywhere.
            if h.proc() == 0 {
                h.write(q_ptr, 37);
                h.write(q_empty, 1);
            }
            h.barrier();
            if h.proc() != 0 {
                // Fault the old values in so the stale copies exist.
                let _ = h.read(q_ptr);
                let _ = h.read(q_empty);
            }
            h.barrier();

            // Epoch 2: the racy window.
            match h.proc() {
                0 => {
                    // P1 of the figure: w1(qPtr)100, w1(qEmpty)0,
                    // {missing release}.
                    h.write(q_ptr, 100);
                    h.write(q_empty, 0);
                }
                1 => {
                    // P2: {missing acquire}; r2(qEmpty); r2(qPtr) -> 37
                    // (stale under LRC!); w2(37), w2(38).
                    let _empty = h.read(q_empty);
                    let ptr = h.read(q_ptr);
                    assert_eq!(
                        ptr, 37,
                        "LRC must deliver the stale pointer without an acquire"
                    );
                    h.write(data.word(ptr), 0xBEEF);
                    h.write(data.word(ptr + 1), 0xBEEF);
                }
                _ => {
                    // P3: w3(37), w3(38), w3(39), w3(40)...
                    for w in 37..=40u64 {
                        h.write(data.word(w), 0xCAFE);
                    }
                }
            }
            h.barrier();
        },
    )
    .expect("cluster run");

    println!("Figure 5. Races under weak memory (the missing-release queue)");
    cvm_bench::rule(76);
    for r in report.races.reports() {
        let name = report.segments.symbolize(r.addr);
        let weak_only = name.starts_with("qData");
        println!(
            "  {}  {}",
            r.render(&report.segments),
            if weak_only {
                "<- would NOT occur on an SC system"
            } else {
                "<- occurs on SC too"
            }
        );
    }
    cvm_bench::rule(76);
    let data_races = report
        .races
        .reports()
        .iter()
        .filter(|r| report.segments.symbolize(r.addr).starts_with("qData"))
        .count();
    let ptr_races = report.races.len() - data_races;
    println!(
        "{ptr_races} qPtr/qEmpty races (SC-visible), {data_races} element races (weak-memory only)."
    );
    assert!(ptr_races > 0, "flag/pointer races must be reported");
    assert!(
        data_races > 0,
        "the weak-memory-only element races must be reported"
    );
}
