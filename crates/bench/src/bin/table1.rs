//! Regenerates **Table 1: Application Characteristics**.
//!
//! Columns: input set, synchronization kinds, shared-memory size (KB),
//! intervals per barrier, and the 8-processor slowdown of race detection
//! versus unmodified CVM.

use cvm_apps::App;
use cvm_bench::{Measurement, PAPER_PROCS};

fn main() {
    let mut csv = cvm_bench::results::Csv::new(
        "table1",
        &["app", "memory_kb", "intervals_per_barrier", "slowdown"],
    );
    println!("Table 1. Application Characteristics ({PAPER_PROCS} processors)");
    cvm_bench::rule(92);
    println!(
        "{:<8}{:<20}{:<16}{:>12}{:>22}{:>12}",
        "", "Input Set", "Synchronization", "Memory (KB)", "Intervals/Barrier", "Slowdown"
    );
    cvm_bench::rule(92);
    let paper: [(App, f64, f64, f64); 4] = [
        (App::Fft, 3088.0, 2.0, 2.08),
        (App::Sor, 8208.0, 2.0, 1.83),
        (App::Tsp, 792.0, 177.0, 2.51),
        (App::Water, 152.0, 46.0, 2.31),
    ];
    for (app, p_mem, p_ipb, p_slow) in paper {
        let m = Measurement::take(app, PAPER_PROCS);
        let mem_kb = m.on.segments.used_bytes() as f64 / 1024.0;
        let ipb = m.on.intervals_per_barrier();
        println!(
            "{:<8}{:<20}{:<16}{:>12.0}{:>22.1}{:>12.2}",
            app.name(),
            app.input_set(),
            app.sync_kinds(),
            mem_kb,
            ipb,
            m.slowdown()
        );
        println!(
            "{:<8}{:<20}{:<16}{:>12.0}{:>22.1}{:>12.2}   (paper)",
            "", "", "", p_mem, p_ipb, p_slow
        );
        csv.row(&[
            &app.name(),
            &format!("{mem_kb:.0}"),
            &format!("{ipb:.2}"),
            &format!("{:.3}", m.slowdown()),
        ]);
    }
    csv.flush();
    cvm_bench::rule(92);
    println!("Slowdown = virtual time with detection / virtual time of unmodified CVM.");
}
