//! Race-hunt service throughput, persisted to
//! `bench_results/service_load.csv`.
//!
//! Drives the in-process [`Daemon`] with a fleet of short detection jobs
//! across worker-pool sizes and measures wall clock, job throughput, and
//! per-job latency percentiles (submission → terminal phase), plus
//! backpressure behaviour: jobs are submitted through a bounded admission
//! queue, so the bench also reports how many submissions saw `QueueFull`
//! and had to wait for a slot.
//!
//! A second sweep holds the pool at 4 workers and turns on the
//! write-ahead journal under each fsync policy (`always` / `every:8` /
//! `never`), so the durability tax is a row-to-row comparison in the same
//! CSV; in-memory rows carry `none` in the `fsync` column.
//!
//! Columns: `workers,jobs,seeds_per_job,fsync,wall_ms,jobs_per_s,p50_ms,
//! p95_ms,queue_full_rejections,retries`.

use std::time::{Duration, Instant};

use cvm_bench::results::Csv;
use cvm_service::{
    Daemon, DaemonConfig, FsyncPolicy, JobId, JobSpec, PersistConfig, SubmitError, Workload,
};

const JOBS: usize = 24;
const SEEDS_PER_JOB: u32 = 2;

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn run_fleet(workers: usize, persist: PersistConfig) -> (f64, f64, f64, f64, u64, u64) {
    let daemon = Daemon::start(DaemonConfig {
        workers,
        // Deliberately tighter than the fleet so backpressure is visible.
        queue_capacity: JOBS / 2,
        persist,
        ..DaemonConfig::default()
    });

    let started = Instant::now();
    let mut queue_full: u64 = 0;
    let mut submitted: Vec<(JobId, Instant)> = Vec::with_capacity(JOBS);
    for i in 0..JOBS {
        // A light mix: mostly racy counters, every third job a mixed
        // stripes kernel with a pinch of synthetic flakiness.
        let mut spec = if i % 3 == 0 {
            JobSpec::new(
                Workload::MixedStripes { epochs: 2 },
                3,
                i as u64 * 100,
                SEEDS_PER_JOB,
            )
        } else {
            JobSpec::new(
                Workload::RacyCounter { epochs: 2 },
                2,
                i as u64 * 100,
                SEEDS_PER_JOB,
            )
        };
        if i % 5 == 0 {
            spec.flaky_first = 1;
            spec.retry_budget = 4;
        }
        // Bounded admission: on QueueFull, wait for a slot like a real
        // client would.
        loop {
            match daemon.submit(spec.clone()) {
                Ok(id) => {
                    submitted.push((id, Instant::now()));
                    break;
                }
                Err(SubmitError::QueueFull { .. }) => {
                    queue_full += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("unexpected rejection: {e}"),
            }
        }
    }

    // Wait for the whole fleet, collecting per-job completion latency.
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(JOBS);
    for (id, at) in &submitted {
        loop {
            let snap = daemon.status(*id).expect("job known");
            if snap.phase.is_terminal() {
                latencies_ms.push(at.elapsed().as_secs_f64() * 1e3);
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let wall = started.elapsed();
    let stats = daemon.stats();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());

    (
        wall.as_secs_f64() * 1e3,
        JOBS as f64 / wall.as_secs_f64(),
        percentile(&latencies_ms, 0.50),
        percentile(&latencies_ms, 0.95),
        queue_full,
        stats.pool.retries,
    )
}

fn report(csv: &mut Csv, workers: usize, fsync: &str, persist: PersistConfig) {
    let (wall_ms, jobs_per_s, p50, p95, queue_full, retries) = run_fleet(workers, persist);
    println!(
        "{workers:>7} {JOBS:>6} {SEEDS_PER_JOB:>10} {fsync:>8} {wall_ms:>9.0} {jobs_per_s:>9.2} {p50:>8.0} {p95:>8.0} {queue_full:>10} {retries:>8}"
    );
    csv.row(&[
        &workers,
        &JOBS,
        &SEEDS_PER_JOB,
        &fsync,
        &format!("{wall_ms:.1}"),
        &format!("{jobs_per_s:.2}"),
        &format!("{p50:.1}"),
        &format!("{p95:.1}"),
        &queue_full,
        &retries,
    ]);
}

fn main() {
    let mut csv = Csv::new(
        "service_load",
        &[
            "workers",
            "jobs",
            "seeds_per_job",
            "fsync",
            "wall_ms",
            "jobs_per_s",
            "p50_ms",
            "p95_ms",
            "queue_full_rejections",
            "retries",
        ],
    );
    println!(
        "{:>7} {:>6} {:>10} {:>8} {:>9} {:>9} {:>8} {:>8} {:>10} {:>8}",
        "workers",
        "jobs",
        "seeds/job",
        "fsync",
        "wall_ms",
        "jobs/s",
        "p50_ms",
        "p95_ms",
        "queuefull",
        "retries"
    );
    for workers in [1usize, 2, 4, 8] {
        report(&mut csv, workers, "none", PersistConfig::default());
    }
    // The durability tax: same fleet, fixed pool, journal on under each
    // fsync policy.
    for fsync in [
        FsyncPolicy::Always,
        FsyncPolicy::EveryN(8),
        FsyncPolicy::Never,
    ] {
        let dir = std::env::temp_dir().join(format!(
            "cvm-bench-service-load-{}-{}",
            fsync.name().replace(':', "_"),
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let persist = PersistConfig {
            fsync,
            ..PersistConfig::at(&dir)
        };
        report(&mut csv, 4, &fsync.name(), persist);
        std::fs::remove_dir_all(&dir).ok();
    }
    csv.flush();
    println!("\nwrote bench_results/service_load.csv");
}
