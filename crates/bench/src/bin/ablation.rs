//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. page-overlap strategy (the paper's naive scan vs sorted merge vs
//!    §6.2's page-bitmap suggestion) on a lock-heavy epoch;
//! 2. diff-derived write detection (§6.5) vs store instrumentation on
//!    Water: slowdown saved, races kept/missed;
//! 3. first-race filtering (§6.4) on TSP: how many reports survive;
//! 4. page-size sensitivity of FFT's false sharing (§6.2's observation
//!    that large pages exacerbate it);
//! 5. inlined instrumentation (§6.5: ATOM's promised inlining removes the
//!    procedure-call overhead — "an average of 6.7% of our overhead");
//! 6. inter-procedural analysis (§6.5: eliminating conservatively
//!    instrumented sites whose pointers are provably private).

use std::time::Instant;

use cvm_apps::{tsp, water, App};
use cvm_bench::paper_config;
use cvm_dsm::{Protocol, WriteDetection};
use cvm_page::Geometry;
use cvm_race::{make_interval, EpochDetector, Interval, OverlapStrategy};

fn main() {
    overlap_strategies();
    diff_write_detection();
    first_races();
    page_size_sweep();
    inlined_instrumentation();
    interprocedural_analysis();
    online_vs_postmortem();
    checkpoint_recovery();
}

fn overlap_strategies() {
    println!("Ablation 1. Page-overlap strategy (epoch of 256 intervals, 40-page lists)");
    cvm_bench::rule(64);
    // A synthetic lock-heavy epoch: 8 procs x 32 intervals, page lists far
    // longer than the paper's "usually less than ten".
    let mut intervals: Vec<Interval> = Vec::new();
    for p in 0..8u16 {
        for i in 1..=32u32 {
            let mut vc = vec![0u32; 8];
            vc[p as usize] = i;
            let writes: Vec<u32> = (0..20).map(|k| (u32::from(p) * 7 + k * 3) % 97).collect();
            let reads: Vec<u32> = (0..20).map(|k| (i + k * 5) % 97).collect();
            intervals.push(make_interval(p, i, vc, &writes, &reads));
        }
    }
    for strategy in [
        OverlapStrategy::Quadratic,
        OverlapStrategy::SortedMerge,
        OverlapStrategy::PageBitmap,
        OverlapStrategy::Auto,
    ] {
        let d = EpochDetector {
            overlap: strategy,
            ..Default::default()
        };
        let started = Instant::now();
        let mut checks = 0usize;
        for _ in 0..10 {
            let plan = d.plan(&intervals);
            checks = plan.check.len();
        }
        let elapsed = started.elapsed() / 10;
        println!(
            "  {:<14} {:>8} check entries   {:>12.1?} per plan",
            format!("{strategy:?}"),
            checks,
            elapsed
        );
    }
    println!();
}

fn diff_write_detection() {
    println!("Ablation 2. Write detection: instrumentation vs diffs (paper 6.5)");
    cvm_bench::rule(64);
    // Instrumentation cycles are deterministic (attributed per category);
    // end-to-end virtual time jitters a few percent with service-thread
    // interleaving, so the comparison uses the attributed costs.
    let sor_run = |wd: WriteDetection| {
        let mut on = paper_config(4, true);
        on.protocol = Protocol::MultiWriter;
        on.detect.write_detection = wd;
        let params = cvm_apps::sor::SorParams { n: 128, iters: 4 };
        cvm_apps::sor::run(on, params).0
    };
    let instr = sor_run(WriteDetection::Instrumentation);
    let diffs = sor_run(WriteDetection::Diffs);
    let instr_cost = |r: &cvm_dsm::RunReport| {
        let c = r.cats_total();
        c[cvm_dsm::OverheadCat::ProcCall as usize] + c[cvm_dsm::OverheadCat::AccessCheck as usize]
    };
    let with_stores = instr_cost(&instr);
    let without_stores = instr_cost(&diffs);
    println!(
        "  SOR instrumentation cycles, stores instrumented: {:>12}",
        with_stores
    );
    println!(
        "  SOR instrumentation cycles, writes from diffs:   {:>12}  ({} saved)",
        without_stores,
        cvm_bench::pct(1.0 - without_stores as f64 / with_stores as f64)
    );
    assert!(
        without_stores < with_stores,
        "skipping store instrumentation must save instrumentation cycles"
    );
    // Race visibility on the buggy Water (the same-value-overwrite blind
    // spot is exercised separately by the dsm test suite).
    let water_races = |wd: WriteDetection| {
        let mut cfg = paper_config(4, true);
        cfg.protocol = Protocol::MultiWriter;
        cfg.detect.write_detection = wd;
        let params = water::WaterParams {
            nmols: 64,
            iters: 3,
            npartitions: 16,
            seed: 5,
            fixed: false,
        };
        let (rep, _) = water::run(cfg, params);
        rep.races.distinct_addrs().len()
    };
    println!(
        "  Water racy addrs: instrumented {}, diff-derived {}",
        water_races(WriteDetection::Instrumentation),
        water_races(WriteDetection::Diffs)
    );
    println!();
}

fn first_races() {
    println!("Ablation 3. First-race filtering (TSP, 4 procs)");
    cvm_bench::rule(64);
    let params = tsp::TspParams {
        ncities: 12,
        seed: 3,
        cutoff: 3,
        stack_capacity: 4096,
        synchronized_bound: false,
    };
    let (all, _) = tsp::run(paper_config(4, true), params);
    let mut cfg = paper_config(4, true);
    cfg.detect.first_races_only = true;
    let (first, _) = tsp::run(cfg, params);
    println!(
        "  all races: {:>6} reports on {} addresses",
        all.races.len(),
        all.races.distinct_addrs().len()
    );
    println!(
        "  first only: {:>5} reports on {} addresses",
        first.races.len(),
        first.races.distinct_addrs().len()
    );
    println!();
}

fn page_size_sweep() {
    println!("Ablation 4. FFT false sharing vs page size (4 procs, m=64)");
    cvm_bench::rule(64);
    for page_bytes in [1024usize, 4096, 8192, 16384] {
        let mut cfg = paper_config(4, true);
        cfg.geometry = Geometry::with_page_bytes(page_bytes);
        let params = cvm_apps::fft::FftParams {
            m: 64,
            inverse: false,
        };
        let (report, _) = cvm_apps::fft::run(cfg, params);
        println!(
            "  {:>6} B pages: intervals used {:>6}, bitmaps used {:>6}, races {}",
            page_bytes,
            cvm_bench::pct(report.det_stats.intervals_used_frac()),
            cvm_bench::pct(report.det_stats.bitmaps_used_frac()),
            report.races.len()
        );
    }
    println!("  (larger pages -> more false sharing to dismiss; never any races)");
    println!();
    let _ = App::ALL;
}

fn inlined_instrumentation() {
    println!("Ablation 5. Inlining the instrumentation (SOR, 4 procs)");
    cvm_bench::rule(64);
    // The attributed procedure-call cycles are deterministic; end-to-end
    // virtual time jitters a few percent with service interleaving, more
    // than the ~1.5% the inlining saves.
    let run = |inline: bool| {
        let mut on = paper_config(4, true);
        if inline {
            // The promised ATOM version inlines the analysis call: the
            // procedure-call component of the overhead disappears.
            on.costs.proc_call = 0;
        }
        let params = cvm_apps::sor::SorParams { n: 128, iters: 4 };
        cvm_apps::sor::run(on, params).0
    };
    let call = run(false);
    let inlined = run(true);
    let pc = |r: &cvm_dsm::RunReport| r.cats_total()[cvm_dsm::OverheadCat::ProcCall as usize];
    println!(
        "  procedure-call cycles: {:>12} -> {:>2} after inlining",
        pc(&call),
        pc(&inlined)
    );
    println!(
        "  ({} of this run's instrumented virtual time removed — the paper's",
        cvm_bench::pct(pc(&call) as f64 / call.virtual_cycles().max(1) as f64 / 4.0)
    );
    println!("   removable ATOM call overhead, ~6.7% of total overhead there)");
    assert_eq!(pc(&inlined), 0);
    assert!(pc(&call) > 0);
    println!();
}

fn interprocedural_analysis() {
    println!("Ablation 6. Inter-procedural elimination of false instrumentation");
    cvm_bench::rule(64);
    use cvm_instrument::synth::{app_profiles, synthesize};
    use cvm_instrument::{ClassifyConfig, InstrumentedBinary};
    let ip = ClassifyConfig {
        interprocedural: true,
        ..ClassifyConfig::default()
    };
    for profile in app_profiles() {
        let obj = synthesize(&profile, 0xC0FFEE);
        let basic = InstrumentedBinary::build(&obj);
        let better = InstrumentedBinary::build_with(&ip, &obj);
        println!(
            "  {:<8} instrumented sites {:>4} -> {:>4}  ({} proven private)",
            profile.name,
            basic.counts.instrumented,
            better.counts.instrumented,
            better.counts.proven_private,
        );
    }
    println!("  (the paper: ~68% of dynamic analysis calls were for private data)");
}

fn online_vs_postmortem() {
    println!("Ablation 7. Online detection vs the post-mortem baseline (Water, 4 procs)");
    cvm_bench::rule(64);
    let params = water::WaterParams {
        nmols: 64,
        iters: 4,
        npartitions: 16,
        seed: 9,
        fixed: false,
    };
    // Online.
    let (online, _) = water::run(paper_config(4, true), params);
    // Baseline: trace the run, analyze offline.
    let mut cfg = paper_config(4, false);
    cfg.trace = true;
    let geometry = cfg.geometry;
    let started = Instant::now();
    let (traced, _) = water::run(cfg, params);
    let (pm_reports, stats) = cvm_race::trace::analyze_trace(&traced.traces, geometry);
    let analysis = started.elapsed();
    let online_hw: u64 = online
        .nodes
        .iter()
        .map(|n| n.stats.bitmap_high_water)
        .max()
        .unwrap_or(0);
    println!(
        "  online:      {:>4} racy addrs, retained state high-water {} bitmaps (GC'd each barrier)",
        online.races.distinct_addrs().len(),
        online_hw
    );
    println!(
        "  post-mortem: {:>4} racy addrs, trace of {} events / {:.1} KB, offline pass in {:.1?}",
        pm_reports
            .iter()
            .map(|r| r.addr)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        stats.events,
        stats.trace_bytes as f64 / 1024.0,
        analysis
    );
    println!(
        "  (same races; the online system \"does away with trace logs and post-mortem analysis\")"
    );
    println!();
}

fn checkpoint_recovery() {
    use cvm_dsm::{FaultPlan, RecoveryPolicy};
    use cvm_vclock::ProcId;
    use std::time::Duration;

    println!("Ablation 8. Barrier-epoch checkpointing and node recovery (SOR, 4 procs)");
    cvm_bench::rule(64);
    let wire = || {
        FaultPlan::clean(77)
            .with_rto(Duration::from_millis(2), Duration::from_millis(16))
            .with_max_retransmits(8)
    };
    let params = cvm_apps::sor::SorParams { n: 64, iters: 3 };
    let run = |recovery: RecoveryPolicy, kill: bool| {
        let mut cfg = paper_config(4, true);
        cfg.protocol = Protocol::MultiWriter;
        cfg.op_deadline = Duration::from_secs(5);
        cfg.recovery = recovery;
        cfg.net_loss = Some(if kill {
            wire().with_kill(ProcId(2), 250)
        } else {
            wire()
        });
        cvm_apps::sor::run(cfg, params).0
    };
    let off = run(RecoveryPolicy::Abort, false);
    let on = run(RecoveryPolicy::Recover { max_attempts: 3 }, false);
    let recovered = run(RecoveryPolicy::Recover { max_attempts: 3 }, true);
    println!(
        "  Abort (default):       {}",
        cvm_bench::recovery_summary(&off)
    );
    println!(
        "  Recover, fault-free:   {}",
        cvm_bench::recovery_summary(&on)
    );
    println!(
        "  Recover, node 2 killed: {}",
        cvm_bench::recovery_summary(&recovered)
    );
    assert!(
        recovered.recovery.recoveries >= 1,
        "the scripted kill must recover"
    );
    println!(
        "  (race reports identical across all three runs: {} each)",
        off.races.len()
    );
    assert_eq!(off.races.len(), recovered.races.len());
}
