//! Regenerates **Figure 3: Overhead Breakdown**.
//!
//! For each application, the overhead added by race detection relative to
//! the uninstrumented runtime, split into the paper's five categories:
//! CVM Mods, Proc Call, Access Check, Intervals, and Bitmaps.

use cvm_apps::App;
use cvm_bench::{Breakdown, PAPER_PROCS};
use cvm_dsm::OverheadCat;

fn main() {
    let mut csv = cvm_bench::results::Csv::new(
        "fig3",
        &[
            "app",
            "cvm_mods",
            "proc_call",
            "access_check",
            "intervals",
            "bitmaps",
            "total",
        ],
    );
    println!(
        "Figure 3. Overhead Breakdown ({PAPER_PROCS} processors, % of uninstrumented runtime)"
    );
    cvm_bench::rule(86);
    println!(
        "{:<8}{:>12}{:>12}{:>14}{:>12}{:>10}{:>12}",
        "", "CVM Mods", "Proc Call", "Access Check", "Intervals", "Bitmaps", "Total"
    );
    cvm_bench::rule(86);
    for app in App::ALL {
        let m = Breakdown::take(app, PAPER_PROCS);
        let bars = m.bars();
        let get = |cat: OverheadCat| -> f64 {
            bars.iter()
                .find(|(c, _)| *c == cat)
                .map_or(0.0, |(_, v)| *v)
        };
        println!(
            "{:<8}{:>12}{:>12}{:>14}{:>12}{:>10}{:>12}",
            app.name(),
            cvm_bench::pct(get(OverheadCat::CvmMods)),
            cvm_bench::pct(get(OverheadCat::ProcCall)),
            cvm_bench::pct(get(OverheadCat::AccessCheck)),
            cvm_bench::pct(get(OverheadCat::Intervals)),
            cvm_bench::pct(get(OverheadCat::Bitmaps)),
            cvm_bench::pct(m.total_overhead()),
        );
        csv.row(&[
            &app.name(),
            &format!("{:.4}", get(OverheadCat::CvmMods)),
            &format!("{:.4}", get(OverheadCat::ProcCall)),
            &format!("{:.4}", get(OverheadCat::AccessCheck)),
            &format!("{:.4}", get(OverheadCat::Intervals)),
            &format!("{:.4}", get(OverheadCat::Bitmaps)),
            &format!("{:.4}", m.total_overhead()),
        ]);
        // Text bar for the figure's visual shape.
        let width = (m.total_overhead() * 40.0).round() as usize;
        println!("{:<8}{}", "", "#".repeat(width.min(120)));
    }
    csv.flush();
    cvm_bench::rule(86);
    println!("Paper's shape: instrumentation (Proc Call + Access Check) ~68% of overhead;");
    println!("CVM Mods ~22%; Intervals and Bitmaps smallest; FFT total 108%, TSP highest.");
}
