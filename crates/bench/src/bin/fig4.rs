//! Regenerates **Figure 4: Slowdown Factor versus Number of Processors**.
//!
//! Slowdown *decreases* with processor count in the paper: interval and
//! bitmap comparison are serialized at the master (constant observable
//! cost), while instrumentation cost parallelizes with the computation.

use cvm_apps::App;
use cvm_bench::Measurement;

fn main() {
    let mut csv = cvm_bench::results::Csv::new("fig4", &["app", "procs", "slowdown"]);
    let procs = [1usize, 2, 4, 8];
    println!("Figure 4. Slowdown Factor versus Number of Processors");
    cvm_bench::rule(54);
    print!("{:<8}", "");
    for p in procs {
        print!("{:>10}", format!("{p} proc"));
    }
    println!();
    cvm_bench::rule(54);
    for app in App::ALL {
        print!("{:<8}", app.name());
        for p in procs {
            let m = Measurement::take(app, p);
            print!("{:>10.2}", m.slowdown());
            csv.row(&[&app.name(), &p, &format!("{:.3}", m.slowdown())]);
        }
        println!();
    }
    csv.flush();
    cvm_bench::rule(54);
    println!("Paper's shape: slowdown decreases (or stays flat) as processors increase.");
}
