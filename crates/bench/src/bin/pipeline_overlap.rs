//! Pipelined-detection measurements, persisted to `bench_results/`.
//!
//! Two experiments:
//!
//! 1. **Kernel timings** (`bench_results/detector_epoch.csv`): one 8-node
//!    synthetic detection epoch ([`cvm_bench::epoch_synth`]) through the
//!    paper's serial master, this codebase's optimized default, and the
//!    pipelined stage's steady state (persistent arena + SWAR chunk
//!    comparison).  Wall-clock medians; the Criterion bench
//!    `detector_epoch` measures the same rows with full rigor.
//!
//! 2. **Overlap** (`bench_results/pipeline_overlap.csv`): an 8-node
//!    lock-heavy cluster run, synchronous vs pipelined detection.  Every
//!    process times its `barrier()` calls; the *minimum* mean wait across
//!    processes belongs to the last arrival, whose wait is exactly the
//!    barrier-release latency — settle + detection + release in the
//!    synchronous master, settle + release alone when the comparison is
//!    pipelined.  The final row is the pipelined/synchronous ratio, the
//!    ISSUE's ≤ 0.15 acceptance number.

use cvm_bench::epoch_synth::{bitmaps, epoch, PAGE_WORDS};
use cvm_bench::results::Csv;
use cvm_dsm::{Cluster, DetectConfig, DsmConfig, RunReport};
use cvm_page::Geometry;
use cvm_race::{BitmapStore, EpochArena, EpochDetector, Interval, PairEnumeration};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const KERNEL_ITERS: usize = 41;

/// Cluster-run shape: 8 nodes, `EPOCHS` barrier epochs, `LOCK_OPS`
/// disjoint-lock intervals per process per epoch (every interval is
/// concurrent with every remote interval, so the naive enumeration pays
/// its full quadratic cost), `COMPUTE` of modeled computation per epoch
/// for the pipelined stage to overlap with.
const NPROCS: usize = 8;
const EPOCHS: u64 = 6;
const LOCK_OPS: u64 = 96;
const COMPUTE: Duration = Duration::from_millis(25);

fn median_us(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn time_kernel(
    iters: usize,
    mut f: impl FnMut(&[Interval], &BitmapStore) -> usize,
    intervals: &[Interval],
    store: &BitmapStore,
) -> (f64, usize) {
    let mut times = Vec::with_capacity(iters);
    let mut reports = 0;
    for _ in 0..iters {
        let t = Instant::now();
        reports = f(intervals, store);
        times.push(t.elapsed().as_secs_f64() * 1e6);
    }
    (median_us(times), reports)
}

fn kernel_rows() {
    let g = Geometry::with_page_bytes(PAGE_WORDS * 8);
    let intervals = epoch();
    let store = bitmaps(&intervals, g);

    let serial = EpochDetector {
        enumeration: PairEnumeration::Naive,
        workers: 1,
        ..EpochDetector::new()
    };
    let optimized = EpochDetector {
        enumeration: PairEnumeration::Pruned,
        workers: 0,
        ..EpochDetector::new()
    };
    let mut arena = EpochArena::new();

    let run = |d: &EpochDetector, iv: &[Interval], st: &BitmapStore| {
        let mut plan = d.plan(iv);
        d.compare(&mut plan, st, g, 0)
            .expect("bitmaps present")
            .len()
    };
    let (serial_us, serial_n) = time_kernel(
        KERNEL_ITERS,
        |iv, st| run(&serial, iv, st),
        &intervals,
        &store,
    );
    let (opt_us, opt_n) = time_kernel(
        KERNEL_ITERS,
        |iv, st| run(&optimized, iv, st),
        &intervals,
        &store,
    );
    let (arena_us, arena_n) = time_kernel(
        KERNEL_ITERS,
        |iv, st| {
            let mut plan = optimized.plan_with(iv, &mut arena);
            optimized
                .compare_with(&mut plan, st, g, 0, &mut arena)
                .expect("bitmaps present")
                .len()
        },
        &intervals,
        &store,
    );
    assert_eq!(serial_n, opt_n, "configurations must agree on reports");
    assert_eq!(serial_n, arena_n, "arena path must agree on reports");

    let mut csv = Csv::new(
        "detector_epoch",
        &["config", "intervals", "median_us", "reports"],
    );
    let n = intervals.len();
    csv.row(&[
        &"epoch_8node_serial_baseline",
        &n,
        &format_args!("{serial_us:.1}"),
        &serial_n,
    ]);
    csv.row(&[
        &"epoch_8node_optimized_default",
        &n,
        &format_args!("{opt_us:.1}"),
        &opt_n,
    ]);
    csv.row(&[
        &"epoch_8node_swar_arena",
        &n,
        &format_args!("{arena_us:.1}"),
        &arena_n,
    ]);
    csv.flush();
    println!(
        "detection epoch (8 nodes, {n} intervals): serial {serial_us:.0} us, \
         optimized {opt_us:.0} us, swar+arena {arena_us:.0} us ({:.2}x vs serial)",
        serial_us / arena_us.max(1.0)
    );
}

fn race_fingerprint(report: &RunReport) -> Vec<String> {
    let mut lines: Vec<String> = report
        .races
        .reports()
        .iter()
        .map(|r| format!("{:?}@{} {}", r.kind, r.epoch, r.render(&report.segments)))
        .collect();
    lines.sort();
    lines
}

/// One 8-node lock-heavy run; returns the report and the mean barrier
/// wait of the last-arriving process (minimum across processes).
fn overlap_run(detect: DetectConfig) -> (RunReport, f64) {
    let mut cfg = DsmConfig::new(NPROCS);
    cfg.detect = detect;
    // The paper's serial master in both detection modes, so the
    // synchronous run's detection epoch is the thing the pipeline hides.
    cfg.detect.enumeration = PairEnumeration::Naive;
    cfg.detect.workers = 1;

    let waits: Mutex<Vec<Vec<f64>>> = Mutex::new(vec![Vec::new(); NPROCS]);
    let report = Cluster::run(
        cfg,
        |alloc| {
            alloc
                .alloc_page_aligned("arr", (NPROCS as u64 * 512 + 512) * 8)
                .unwrap()
        },
        |h, &arr| {
            let me = h.proc() as u64;
            for e in 0..EPOCHS {
                for k in 0..LOCK_OPS {
                    // Disjoint locks: every interval is concurrent with
                    // every remote interval.
                    h.lock((me * LOCK_OPS + k) as u32 + 1);
                    h.write(arr.word(me * 512 + (e * LOCK_OPS + k) % 512), k);
                    if k == 0 {
                        // Unsynchronized clash word: a few real races per
                        // epoch, so the deferred delivery path is
                        // exercised without report-delivery bytes
                        // dominating the release latency in either mode.
                        h.write(arr.word(NPROCS as u64 * 512 + e), me);
                    }
                    h.unlock((me * LOCK_OPS + k) as u32 + 1);
                }
                std::thread::sleep(COMPUTE);
                let t = Instant::now();
                h.barrier();
                waits.lock().unwrap()[me as usize].push(t.elapsed().as_secs_f64() * 1e6);
            }
        },
    )
    .expect("healthy run");
    let min_mean = waits
        .lock()
        .unwrap()
        .iter()
        .map(|w| w.iter().sum::<f64>() / w.len().max(1) as f64)
        .fold(f64::INFINITY, f64::min);
    (report, min_mean)
}

fn overlap_rows() {
    // Detection-off baseline: the barrier wait is pure consistency-record
    // delivery, identical in shape for all three runs.  Subtracting it
    // isolates what *detection* adds to the critical path.
    let (_off_report, off_us) = overlap_run(DetectConfig::off());
    let (sync_report, sync_us) = overlap_run(DetectConfig::on());
    let (piped_report, piped_us) = overlap_run(DetectConfig::pipelined());

    assert_eq!(
        race_fingerprint(&sync_report),
        race_fingerprint(&piped_report),
        "pipelined reports must be byte-identical to synchronous"
    );
    assert_eq!(sync_report.det_stats, piped_report.det_stats);
    let (sync_pe, sync_ps) = sync_report.pipeline();
    let (piped_pe, piped_ps) = piped_report.pipeline();
    // The synchronous detection epoch: settle-to-release time spent
    // planning, fetching bitmaps, and comparing while every process waits.
    let sync_epoch = (sync_us - off_us).max(1.0);
    // What detection still adds to the pipelined critical path (read
    // notices on the wire, deferred-report delivery, stage hand-off).
    let piped_overhead = (piped_us - off_us).max(0.0);
    let ratio = piped_overhead / sync_epoch;

    let mut csv = Csv::new(
        "pipeline_overlap",
        &[
            "mode",
            "procs",
            "epochs",
            "lock_ops_per_proc",
            "release_wait_us",
            "detect_latency_us",
            "pipelined_epochs",
            "pipeline_stalls",
            "races",
        ],
    );
    csv.row(&[
        &"detect_off_baseline",
        &NPROCS,
        &EPOCHS,
        &LOCK_OPS,
        &format_args!("{off_us:.1}"),
        &"-",
        &0u64,
        &0u64,
        &0usize,
    ]);
    csv.row(&[
        &"synchronous",
        &NPROCS,
        &EPOCHS,
        &LOCK_OPS,
        &format_args!("{sync_us:.1}"),
        &format_args!("{sync_epoch:.1}"),
        &sync_pe,
        &sync_ps,
        &sync_report.races.len(),
    ]);
    csv.row(&[
        &"pipelined",
        &NPROCS,
        &EPOCHS,
        &LOCK_OPS,
        &format_args!("{piped_us:.1}"),
        &format_args!("{piped_overhead:.1}"),
        &piped_pe,
        &piped_ps,
        &piped_report.races.len(),
    ]);
    csv.row(&[
        &"pipelined_over_sync_ratio",
        &NPROCS,
        &EPOCHS,
        &LOCK_OPS,
        &"-",
        &format_args!("{ratio:.3}"),
        &"-",
        &"-",
        &"-",
    ]);
    csv.flush();
    println!(
        "barrier-release wait (8 nodes, {} intervals/epoch): baseline {off_us:.0} us, \
         synchronous {sync_us:.0} us (detection epoch {sync_epoch:.0} us), \
         pipelined {piped_us:.0} us (overhead {piped_overhead:.0} us, ratio {ratio:.3}, \
         {piped_pe} pipelined epochs, {piped_ps} stalls)",
        NPROCS as u64 * LOCK_OPS,
    );
}

fn main() {
    kernel_rows();
    overlap_rows();
}
