//! The evaluation harness: shared machinery for regenerating the paper's
//! tables and figures.
//!
//! Every experiment runs the four applications of Table 1 on a simulated
//! cluster configured like the paper's testbed: 8 processors (by default),
//! DECstation-style 8 KB pages, and the calibrated virtual-time cost model
//! of [`cvm_dsm::CostModel`].  "Slowdown" always means the ratio of
//! virtual completion times between a detection-on run and an identical
//! detection-off (uninstrumented CVM) run, matching the paper's
//! methodology of comparing against "an uninstrumented version of the
//! application running on an unaltered version of CVM".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epoch_synth;
pub mod results;

use cvm_apps::{fft, sor, tsp, water, App};
use cvm_dsm::{DetectConfig, DsmConfig, OverheadCat, RunReport};
use cvm_page::Geometry;

/// Number of processors in the paper's headline runs.
pub const PAPER_PROCS: usize = 8;

/// Builds the paper-testbed configuration: `nprocs` nodes, 8 KB pages.
///
/// Detection is pinned to the paper's own comparison algorithm — the
/// naive all-pairs scan — so the "Intervals" overhead bars of Figures 3
/// and 4 reproduce the measured system rather than this codebase's
/// (pruned) default.
pub fn paper_config(nprocs: usize, detect: bool) -> DsmConfig {
    let mut cfg = DsmConfig::new(nprocs);
    cfg.geometry = Geometry::with_page_bytes(8192);
    cfg.detect = if detect {
        DetectConfig::on()
    } else {
        DetectConfig::off()
    };
    cfg.detect.enumeration = cvm_race::PairEnumeration::Naive;
    cfg
}

/// One application run at paper scale.
pub fn run_app(app: App, nprocs: usize, detect: bool) -> RunReport {
    run_app_with(app, paper_config(nprocs, detect))
}

/// One application run at paper scale with an explicit configuration.
pub fn run_app_with(app: App, cfg: DsmConfig) -> RunReport {
    match app {
        App::Fft => fft::run(cfg, fft::FftParams::paper()).0,
        App::Sor => sor::run(cfg, sor::SorParams::paper()).0,
        App::Tsp => tsp::run(cfg, tsp::TspParams::paper()).0,
        App::Water => water::run(cfg, water::WaterParams::paper()).0,
    }
}

/// A paired measurement: detection on vs off, same application and scale.
pub struct Measurement {
    /// The application measured.
    pub app: App,
    /// Processor count.
    pub nprocs: usize,
    /// Detection-on (instrumented) run.
    pub on: RunReport,
    /// Detection-off (baseline CVM) run.
    pub off: RunReport,
}

/// The paper's Figure 3 measurement: baseline, instrumented-binary-only,
/// and full detection — the incremental configurations that separate the
/// overhead components.
pub struct Breakdown {
    /// The application measured.
    pub app: App,
    /// Full detection run.
    pub on: RunReport,
    /// Instrumented binary on unmodified CVM.
    pub instr_only: RunReport,
    /// Baseline.
    pub off: RunReport,
}

impl Breakdown {
    /// Runs the three configurations.
    pub fn take(app: App, nprocs: usize) -> Breakdown {
        let mut mid = paper_config(nprocs, true);
        mid.detect = DetectConfig::instrumentation_only();
        Breakdown {
            app,
            on: run_app(app, nprocs, true),
            instr_only: run_app_with(app, mid),
            off: run_app(app, nprocs, false),
        }
    }

    /// Figure 3's bars, measured the way the paper separates them:
    ///
    /// * Proc Call + Access Check = slowdown of the instrumented binary on
    ///   *unmodified* CVM, split by their exact attributed cycle ratio;
    /// * Intervals and Bitmaps = the comparison algorithm's attributed
    ///   cycles in the full run;
    /// * CVM Mods = the remaining growth from instrumented-only to full
    ///   detection (detection data structures + read-notice bandwidth and
    ///   the waits they induce).
    pub fn bars(&self) -> [(OverheadCat, f64); 5] {
        let t0 = self.off.virtual_cycles().max(1) as f64;
        let t1 = self.instr_only.virtual_cycles() as f64;
        let t2 = self.on.virtual_cycles() as f64;
        let instr_total = ((t1 - t0) / t0).max(0.0);
        let cats = self.instr_only.cats_total();
        let pc_cycles = cats[OverheadCat::ProcCall as usize] as f64;
        let ac_cycles = cats[OverheadCat::AccessCheck as usize] as f64;
        let denom = (pc_cycles + ac_cycles).max(1.0);
        let pc = instr_total * pc_cycles / denom;
        let ac = instr_total * ac_cycles / denom;
        let nprocs = self.on.nodes.len().max(1) as f64;
        let on_cats = self.on.cats_total();
        let iv = on_cats[OverheadCat::Intervals as usize] as f64 / nprocs / t0;
        let bm = on_cats[OverheadCat::Bitmaps as usize] as f64 / nprocs / t0;
        let rest = ((t2 - t1) / t0 - iv - bm).max(0.0);
        [
            (OverheadCat::CvmMods, rest),
            (OverheadCat::ProcCall, pc),
            (OverheadCat::AccessCheck, ac),
            (OverheadCat::Intervals, iv),
            (OverheadCat::Bitmaps, bm),
        ]
    }

    /// Total overhead: full detection vs baseline.
    pub fn total_overhead(&self) -> f64 {
        let t0 = self.off.virtual_cycles().max(1) as f64;
        (self.on.virtual_cycles() as f64 - t0) / t0
    }
}

impl Measurement {
    /// Runs both configurations.
    pub fn take(app: App, nprocs: usize) -> Measurement {
        Measurement {
            app,
            nprocs,
            on: run_app(app, nprocs, true),
            off: run_app(app, nprocs, false),
        }
    }

    /// Runtime slowdown: instrumented virtual time over baseline.
    pub fn slowdown(&self) -> f64 {
        self.on.virtual_cycles() as f64 / self.off.virtual_cycles().max(1) as f64
    }

    /// Figure 3's bars: per-category overhead as a fraction of the
    /// uninstrumented runtime.
    ///
    /// The attributable categories (Proc Call, Access Check, Intervals,
    /// Bitmaps) come from the virtual clock's per-category accounting,
    /// averaged per process.  "CVM Mods" is the *residual* of the total
    /// critical-path slowdown: the extra data structures and — mostly —
    /// the wait time induced by the bigger synchronization messages the
    /// read notices create, which the protocol experiences as longer
    /// arrival/release exchanges rather than as locally attributable
    /// cycles.  This mirrors how the paper could only measure that
    /// component as what remains after instrumentation and comparison
    /// costs are accounted.
    pub fn overhead_breakdown(&self) -> [(OverheadCat, f64); 5] {
        let on = self.on.cats_total();
        let off = self.off.cats_total();
        let nprocs = self.on.nodes.len().max(1) as f64;
        // Denominator: the uninstrumented critical path.
        let base = self.off.virtual_cycles().max(1) as f64;
        let delta = |cat: OverheadCat| -> f64 {
            let d = on[cat as usize].saturating_sub(off[cat as usize]);
            d as f64 / nprocs / base
        };
        let pc = delta(OverheadCat::ProcCall);
        let ac = delta(OverheadCat::AccessCheck);
        let iv = delta(OverheadCat::Intervals);
        let bm = delta(OverheadCat::Bitmaps);
        let total = (self.on.virtual_cycles() as f64 - base) / base;
        let direct_mods = delta(OverheadCat::CvmMods);
        let mods = direct_mods.max(total - (pc + ac + iv + bm));
        [
            (OverheadCat::CvmMods, mods),
            (OverheadCat::ProcCall, pc),
            (OverheadCat::AccessCheck, ac),
            (OverheadCat::Intervals, iv),
            (OverheadCat::Bitmaps, bm),
        ]
    }

    /// Total overhead fraction (the critical-path slowdown minus one,
    /// floored by the attributable bars).
    pub fn total_overhead(&self) -> f64 {
        self.overhead_breakdown().iter().map(|(_, v)| v).sum()
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// One-line summary of a run's checkpoint/recovery counters, for the
/// harness tables ("-" when the run never checkpointed, i.e. ran under
/// the default [`cvm_dsm::RecoveryPolicy::Abort`]).
pub fn recovery_summary(r: &RunReport) -> String {
    let s = &r.recovery;
    if s == &cvm_dsm::RecoveryStats::default() {
        return "no checkpointing".to_string();
    }
    format!(
        "{} checkpoints / {:.1} KB snapshotted / {} recoveries / {} epochs replayed",
        s.checkpoints_taken,
        s.bytes_snapshotted as f64 / 1024.0,
        s.recoveries,
        s.epochs_replayed
    )
}

/// One-line summary of a run's wire-integrity counters, for the harness
/// tables ("-" style messages when the run used the reliable in-process
/// transport, which has no wire to corrupt).
pub fn wire_summary(r: &RunReport) -> String {
    let Some(s) = &r.reliability else {
        return "reliable transport (no wire)".to_string();
    };
    format!(
        "{} frames corrupted / {} dropped by checksum / {} quarantined by decode / {} retransmissions",
        s.corrupt_injected, s.corrupt_dropped, s.decode_errors, s.retransmissions
    )
}

/// One-line summary of a run's resource-governance marks: retained-state
/// high waters, credit-window pressure, and checkpoint eviction.
pub fn resource_summary(r: &RunReport) -> String {
    let s = &r.resources;
    format!(
        "{} records / {} bitmaps / {:.1} KB retained peak / {} soft GCs / \
         queue hw {} / {} credit stalls / {} cuts evicted / {:.1} KB ckpt live",
        s.log_high_water,
        s.bitmap_high_water,
        s.retained_bytes_high_water as f64 / 1024.0,
        s.soft_gcs,
        s.queue_high_water,
        s.credit_stalls,
        s.cuts_evicted,
        s.checkpoint_bytes_live as f64 / 1024.0
    )
}

/// Prints a horizontal rule sized for the harness tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_uses_decstation_pages() {
        let cfg = paper_config(8, true);
        assert_eq!(cfg.geometry.page_bytes(), 8192);
        assert!(cfg.detect.enabled);
        assert!(!paper_config(8, false).detect.enabled);
    }

    #[test]
    fn measurement_on_small_instance_shows_overhead() {
        // Use a scaled-down SOR so the test stays fast.
        let mk = |detect: bool| {
            cvm_apps::sor::run(paper_config(2, detect), cvm_apps::sor::SorParams::small()).0
        };
        let m = Measurement {
            app: App::Sor,
            nprocs: 2,
            on: mk(true),
            off: mk(false),
        };
        assert!(m.slowdown() > 1.0, "slowdown = {}", m.slowdown());
        let total = m.total_overhead();
        assert!(total > 0.0);
        // Instrumentation should dominate SOR's overhead.
        let bars = m.overhead_breakdown();
        let instr: f64 = bars
            .iter()
            .filter(|(c, _)| matches!(c, OverheadCat::ProcCall | OverheadCat::AccessCheck))
            .map(|(_, v)| v)
            .sum();
        assert!(instr > 0.0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn wire_summary_formats() {
        // Reliable in-process transport: nothing to corrupt.
        let off = cvm_apps::sor::run(paper_config(2, false), cvm_apps::sor::SorParams::small()).0;
        assert_eq!(wire_summary(&off), "reliable transport (no wire)");
        // Faulty wire with corruption: the counters surface in the line.
        let mut cfg = paper_config(2, false);
        cfg.net_loss = Some(cvm_dsm::FaultPlan::clean(7).with_corruption(0.05));
        let on = cvm_apps::sor::run(cfg, cvm_apps::sor::SorParams::small()).0;
        let line = wire_summary(&on);
        assert!(line.contains("dropped by checksum"), "{line}");
        let snap = on.reliability.expect("faulty wire keeps stats");
        assert!(snap.corrupt_injected > 0, "{snap:?}");
        assert_eq!(snap.decode_errors, 0, "{snap:?}");
    }

    #[test]
    fn recovery_summary_formats() {
        let mut cfg = paper_config(2, false);
        cfg.recovery = cvm_dsm::RecoveryPolicy::Recover { max_attempts: 1 };
        let on = cvm_apps::sor::run(cfg, cvm_apps::sor::SorParams::small()).0;
        let line = recovery_summary(&on);
        assert!(line.contains("checkpoints"), "{line}");
        assert!(line.contains("0 recoveries"), "{line}");
        let off = cvm_apps::sor::run(paper_config(2, false), cvm_apps::sor::SorParams::small()).0;
        assert_eq!(recovery_summary(&off), "no checkpointing");
    }

    #[test]
    fn resource_summary_formats() {
        let r = cvm_apps::sor::run(paper_config(2, true), cvm_apps::sor::SorParams::small()).0;
        let line = resource_summary(&r);
        assert!(line.contains("records"), "{line}");
        assert!(line.contains("queue hw"), "{line}");
        // Detection retains records and bitmaps, so the marks are live.
        assert!(r.resources.log_high_water > 0, "{:?}", r.resources);
        assert!(
            r.resources.retained_bytes_high_water > 0,
            "{:?}",
            r.resources
        );
        assert_eq!(r.resources.soft_gcs, 0, "{:?}", r.resources);
    }
}

#[cfg(test)]
mod diag {
    use super::*;
    use cvm_dsm::{OverheadCat, Protocol, WriteDetection};

    #[test]
    fn diag_diff_mode_costs() {
        let run = |wd: WriteDetection| {
            let mut on = paper_config(4, true);
            on.protocol = Protocol::MultiWriter;
            on.detect.write_detection = wd;
            let params = cvm_apps::sor::SorParams { n: 64, iters: 3 };
            cvm_apps::sor::run(on, params).0
        };
        let instr = run(WriteDetection::Instrumentation);
        let diffs = run(WriteDetection::Diffs);
        for (name, r) in [("instr", &instr), ("diffs", &diffs)] {
            println!(
                "{name}: virt={:.3e} cats={:?} faults={:?} msgs={} bytes={}",
                r.virtual_cycles() as f64,
                OverheadCat::ALL
                    .iter()
                    .map(|&c| r.cats_total()[c as usize])
                    .collect::<Vec<_>>(),
                r.faults(),
                r.net.msgs,
                r.net.total_bytes(),
            );
            let d: u64 = r.nodes.iter().map(|n| n.stats.diffs_made).sum();
            let dw: u64 = r.nodes.iter().map(|n| n.stats.diff_words).sum();
            println!("  diffs={d} diff_words={dw} det={:?}", r.det_stats);
        }
    }
}
