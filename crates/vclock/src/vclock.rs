//! Vector timestamps.

use core::cmp::Ordering;
use core::fmt;

use crate::ProcId;

/// Result of comparing two [`VClock`]s under the causal partial order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CausalOrder {
    /// The two clocks are identical.
    Equal,
    /// The left clock causally precedes the right one.
    Before,
    /// The left clock causally follows the right one.
    After,
    /// Neither clock dominates the other.
    Concurrent,
}

/// A vector timestamp: one logical-clock entry per process.
///
/// Entry `p` of a process's clock records the index of the most recent
/// interval of process `p` whose record this process has seen (its own entry
/// records the index of its currently open interval).  Interval indices
/// start at 1; entry 0 means "nothing seen yet".
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// Creates a zero clock for `nprocs` processes.
    pub fn new(nprocs: usize) -> Self {
        VClock(vec![0; nprocs])
    }

    /// Number of process entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the clock has no entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns entry `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for this clock.
    #[inline]
    pub fn get(&self, p: ProcId) -> u32 {
        self.0[p.index()]
    }

    /// Sets entry `p` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for this clock.
    #[inline]
    pub fn set(&mut self, p: ProcId, value: u32) {
        self.0[p.index()] = value;
    }

    /// Increments entry `p` and returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for this clock.
    #[inline]
    pub fn bump(&mut self, p: ProcId) -> u32 {
        let e = &mut self.0[p.index()];
        *e += 1;
        *e
    }

    /// Merges `other` into `self`, taking the entrywise maximum.
    ///
    /// This is the acquire-side clock update of LRC: after applying the
    /// consistency information piggybacked on a lock grant or barrier
    /// release, the acquirer's knowledge is the join of both clocks.
    ///
    /// # Panics
    ///
    /// Panics if the clocks have different lengths.
    pub fn merge(&mut self, other: &VClock) {
        assert_eq!(
            self.0.len(),
            other.0.len(),
            "merging clocks of different widths"
        );
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Returns `true` if every entry of `self` is `>=` the matching entry of
    /// `other` (i.e. `self` has seen at least everything `other` has).
    ///
    /// # Panics
    ///
    /// Panics if the clocks have different lengths.
    pub fn dominates(&self, other: &VClock) -> bool {
        assert_eq!(
            self.0.len(),
            other.0.len(),
            "comparing clocks of different widths"
        );
        self.0.iter().zip(&other.0).all(|(a, b)| a >= b)
    }

    /// Compares two clocks under the causal partial order.
    ///
    /// # Panics
    ///
    /// Panics if the clocks have different lengths.
    pub fn causal_cmp(&self, other: &VClock) -> CausalOrder {
        let mut le = true;
        let mut ge = true;
        for (a, b) in self.0.iter().zip(&other.0) {
            match a.cmp(b) {
                Ordering::Less => ge = false,
                Ordering::Greater => le = false,
                Ordering::Equal => {}
            }
        }
        match (le, ge) {
            (true, true) => CausalOrder::Equal,
            (true, false) => CausalOrder::Before,
            (false, true) => CausalOrder::After,
            (false, false) => CausalOrder::Concurrent,
        }
    }

    /// Iterates over `(proc, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, u32)> + '_ {
        self.0
            .iter()
            .enumerate()
            .map(|(i, &v)| (ProcId::from_index(i), v))
    }

    /// Raw entries, indexed by process.
    pub fn entries(&self) -> &[u32] {
        &self.0
    }
}

impl From<Vec<u32>> for VClock {
    fn from(v: Vec<u32>) -> Self {
        VClock(v)
    }
}

impl fmt::Debug for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(entries: &[u32]) -> VClock {
        VClock::from(entries.to_vec())
    }

    #[test]
    fn new_is_zero() {
        let c = VClock::new(3);
        assert_eq!(c.entries(), &[0, 0, 0]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn bump_increments_single_entry() {
        let mut c = VClock::new(2);
        assert_eq!(c.bump(ProcId(1)), 1);
        assert_eq!(c.bump(ProcId(1)), 2);
        assert_eq!(c.entries(), &[0, 2]);
    }

    #[test]
    fn merge_takes_entrywise_max() {
        let mut a = vc(&[3, 0, 5]);
        a.merge(&vc(&[1, 4, 5]));
        assert_eq!(a.entries(), &[3, 4, 5]);
    }

    #[test]
    fn dominates_is_reflexive_and_entrywise() {
        let a = vc(&[2, 2]);
        assert!(a.dominates(&a));
        assert!(a.dominates(&vc(&[2, 1])));
        assert!(!a.dominates(&vc(&[3, 0])));
    }

    #[test]
    fn causal_cmp_all_cases() {
        assert_eq!(vc(&[1, 1]).causal_cmp(&vc(&[1, 1])), CausalOrder::Equal);
        assert_eq!(vc(&[1, 1]).causal_cmp(&vc(&[2, 1])), CausalOrder::Before);
        assert_eq!(vc(&[2, 1]).causal_cmp(&vc(&[1, 1])), CausalOrder::After);
        assert_eq!(
            vc(&[2, 0]).causal_cmp(&vc(&[0, 2])),
            CausalOrder::Concurrent
        );
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_width_mismatch_panics() {
        let mut a = VClock::new(2);
        a.merge(&VClock::new(3));
    }
}
