//! Version vectors and the *happens-before-1* partial order.
//!
//! Lazy release consistency (LRC) divides the execution of each process into
//! *intervals*, delimited by synchronization accesses (acquires and
//! releases).  Intervals are related by the *happens-before-1* partial order
//! of Adve and Hill: program order on a single process, release-to-acquire
//! order across processes, and the transitive closure of both.
//!
//! LRC implementations tag every interval with a [`VClock`] (a vector
//! timestamp in the sense of Mattern).  The key property this crate provides
//! — and the key intuition of the OSDI '96 data-race paper built on top of
//! it — is that two intervals can be checked for concurrency in constant
//! time ("two integer comparisons"), see [`IntervalStamp::concurrent_with`].
//!
//! This crate is intentionally small and dependency-free: it is the
//! vocabulary shared by the DSM protocol engine (`cvm-dsm`) and the race
//! detector (`cvm-race`).
//!
//! # Examples
//!
//! ```
//! use cvm_vclock::{IntervalId, IntervalStamp, ProcId, VClock};
//!
//! // P0's interval 2 began knowing nothing of P1; P1's interval 2 began
//! // after acquiring from P0's interval 1.
//! let a = IntervalStamp::new(IntervalId::new(ProcId(0), 2), VClock::from(vec![2, 0]));
//! let b = IntervalStamp::new(IntervalId::new(ProcId(1), 2), VClock::from(vec![1, 2]));
//! assert!(a.concurrent_with(&b));          // Two integer comparisons.
//!
//! let first = IntervalStamp::new(IntervalId::new(ProcId(0), 1), VClock::from(vec![1, 0]));
//! assert!(first.happens_before(&b));       // Release-acquire ordering.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interval;
mod proc_id;
mod vclock;

pub use interval::{IntervalId, IntervalStamp};
pub use proc_id::ProcId;
pub use vclock::{CausalOrder, VClock};
