//! Process identifiers.

use core::fmt;

/// Identifier of a DSM process (one per simulated node).
///
/// The paper's testbed ran one process per workstation; we keep the same
/// one-process-per-node model.  Process ids are dense, starting at zero, so
/// they double as indices into [`VClock`](crate::VClock)s and per-process
/// tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(pub u16);

impl ProcId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Builds a `ProcId` from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u16`; simulated clusters are far
    /// smaller than that.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ProcId(u16::try_from(index).expect("process index exceeds u16::MAX"))
    }

    /// Iterates over the ids `0..n`.
    pub fn all(n: usize) -> impl Iterator<Item = ProcId> {
        (0..n).map(ProcId::from_index)
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u16> for ProcId {
    fn from(v: u16) -> Self {
        ProcId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for i in [0usize, 1, 7, 65535] {
            assert_eq!(ProcId::from_index(i).index(), i);
        }
    }

    #[test]
    fn all_yields_dense_ids() {
        let ids: Vec<ProcId> = ProcId::all(4).collect();
        assert_eq!(ids, vec![ProcId(0), ProcId(1), ProcId(2), ProcId(3)]);
    }

    #[test]
    #[should_panic(expected = "exceeds u16::MAX")]
    fn from_index_overflow_panics() {
        let _ = ProcId::from_index(70_000);
    }

    #[test]
    fn display_formats_as_pn() {
        assert_eq!(ProcId(3).to_string(), "P3");
        assert_eq!(format!("{:?}", ProcId(12)), "P12");
    }
}
