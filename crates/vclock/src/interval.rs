//! Interval identity and the constant-time concurrency check.

use core::fmt;

use crate::{ProcId, VClock};

/// Globally unique identifier of an LRC interval: the creating process plus
/// that process's interval index (starting at 1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntervalId {
    /// Process that created the interval.
    pub proc: ProcId,
    /// Per-process interval index, starting at 1.
    pub index: u32,
}

impl IntervalId {
    /// Creates an interval id.
    pub fn new(proc: ProcId, index: u32) -> Self {
        IntervalId { proc, index }
    }
}

impl fmt::Debug for IntervalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Mirrors the paper's sigma notation, e.g. `s1^2` for interval 2 of P1.
        write!(f, "s{}^{}", self.proc.0, self.index)
    }
}

impl fmt::Display for IntervalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interval {} of {}", self.index, self.proc)
    }
}

/// An interval's vector timestamp together with its identity.
///
/// The stamp is assigned when the interval *begins*: it is the creating
/// process's current clock after applying every acquire that triggered the
/// interval boundary, with the process's own entry set to the new interval
/// index.  Consequently, for two stamps `a` and `b`:
///
/// * `a` happens-before-1 `b` iff `b.vc[a.proc] >= a.index`, and
/// * `a` and `b` are concurrent iff neither happens before the other —
///   exactly two integer comparisons, the constant-time check the paper
///   leverages (§4, step 2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IntervalStamp {
    /// Identity of the interval.
    pub id: IntervalId,
    /// Vector timestamp at interval begin (own entry = `id.index`).
    pub vc: VClock,
}

impl IntervalStamp {
    /// Creates a stamp, checking the internal consistency of `vc` and `id`.
    ///
    /// # Panics
    ///
    /// Panics if `vc[id.proc] != id.index`.
    pub fn new(id: IntervalId, vc: VClock) -> Self {
        assert_eq!(
            vc.get(id.proc),
            id.index,
            "interval stamp must carry its own index in its clock entry"
        );
        IntervalStamp { id, vc }
    }

    /// Returns `true` if `self` happens-before-1 `other`.
    ///
    /// This holds iff `other` began after (transitively) acquiring from a
    /// release that closed `self` — which is the case exactly when `other`'s
    /// clock has seen interval `self.id.index` of `self.id.proc`.
    #[inline]
    pub fn happens_before(&self, other: &IntervalStamp) -> bool {
        other.vc.get(self.id.proc) >= self.id.index && self.id != other.id
    }

    /// Constant-time concurrency check: true iff the intervals are distinct
    /// and neither happens-before-1 the other.
    ///
    /// An interval is not considered concurrent with itself: accesses within
    /// one interval are ordered by program order.
    #[inline]
    pub fn concurrent_with(&self, other: &IntervalStamp) -> bool {
        self.id != other.id && !self.happens_before(other) && !other.happens_before(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(proc: u16, index: u32, vc: &[u32]) -> IntervalStamp {
        IntervalStamp::new(
            IntervalId::new(ProcId(proc), index),
            VClock::from(vc.to_vec()),
        )
    }

    #[test]
    fn paper_figure2_ordering() {
        // Figure 2: P1 has intervals 1 and 2; P2 has intervals 1 and 2.
        // P2's interval 2 begins with the acquire of the lock released at
        // the end of P1's interval 1, so s1^1 -> s2^2, while s1^2 and s2^2
        // are concurrent.
        let s1_1 = stamp(0, 1, &[1, 0]);
        let s1_2 = stamp(0, 2, &[2, 0]);
        let s2_1 = stamp(1, 1, &[0, 1]);
        let s2_2 = stamp(1, 2, &[1, 2]);

        assert!(s1_1.happens_before(&s2_2));
        assert!(!s2_2.happens_before(&s1_1));
        assert!(s1_2.concurrent_with(&s2_2));
        assert!(s2_2.concurrent_with(&s1_2));
        assert!(s1_1.happens_before(&s1_2));
        assert!(s2_1.happens_before(&s2_2));
        assert!(s1_1.concurrent_with(&s2_1));
    }

    #[test]
    fn happens_before_is_irreflexive() {
        let s = stamp(0, 3, &[3, 1]);
        assert!(!s.happens_before(&s));
        assert!(!s.concurrent_with(&s));
    }

    #[test]
    #[should_panic(expected = "own index")]
    fn stamp_clock_mismatch_panics() {
        let _ = stamp(0, 2, &[1, 0]);
    }

    #[test]
    fn program_order_totally_orders_same_proc() {
        let a = stamp(1, 1, &[0, 1]);
        let b = stamp(1, 2, &[0, 2]);
        let c = stamp(1, 3, &[2, 3]);
        assert!(a.happens_before(&b));
        assert!(b.happens_before(&c));
        assert!(a.happens_before(&c));
        assert!(!c.happens_before(&a));
    }
}
