//! Property tests for the protocol message codec.

use cvm_dsm::{Cluster, DsmConfig, Msg};
use cvm_net::wire::Wire;
use proptest::prelude::*;

proptest! {
    /// Decoding arbitrary bytes never panics: it yields a message or a
    /// structured error (a node must not be crashable by a corrupt frame).
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Msg::from_bytes(&bytes);
    }

    /// Valid tag with truncated body errors rather than panicking.
    #[test]
    fn truncated_bodies_error(tag in 0u8..17, cut in proptest::collection::vec(any::<u8>(), 0..6)) {
        let mut bytes = vec![tag];
        bytes.extend(cut);
        // Either decodes (tiny messages like Shutdown) or errors; never
        // panics.
        let _ = Msg::from_bytes(&bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Record/replay reproduces the grant schedule for random contention
    /// patterns (the §6.1 guarantee the watchpoint mechanism relies on).
    #[test]
    fn replay_reproduces_schedule(
        rounds in proptest::collection::vec(1u32..8, 3),
        locks in proptest::collection::vec(0u32..2, 3),
    ) {
        let body = move |h: &cvm_dsm::ProcHandle, base: &cvm_page::GAddr| {
            let my_rounds = rounds[h.proc() % rounds.len()];
            let my_lock = locks[h.proc() % locks.len()];
            for _ in 0..my_rounds {
                h.lock(my_lock);
                let v = h.read(*base);
                h.write(*base, v + 1);
                h.unlock(my_lock);
            }
            h.barrier();
        };
        let mut c1 = DsmConfig::new(3);
        c1.record_sync = true;
        let a = Cluster::run(c1, |al| al.alloc("n", 8).unwrap(), &body).expect("cluster run");
        let mut c2 = DsmConfig::new(3);
        c2.record_sync = true;
        c2.replay = Some(a.schedule.clone());
        let b = Cluster::run(c2, |al| al.alloc("n", 8).unwrap(), &body).expect("cluster run");
        prop_assert_eq!(a.schedule, b.schedule);
    }
}
