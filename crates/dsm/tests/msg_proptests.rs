//! Property tests for the protocol message codec.

use std::sync::Arc;

use cvm_dsm::{Cluster, DsmConfig, Msg};
use cvm_net::wire::{decode_frame, encode_frame, Wire};
use cvm_page::{Diff, PageId};
use cvm_vclock::{ProcId, VClock};
use proptest::prelude::*;

/// A strategy over representative protocol messages, including the
/// nested-record variants whose decoders do the most work.
fn arb_msg() -> impl Strategy<Value = Msg> {
    let clock = proptest::collection::vec(0u32..100, 1..5);
    let records = (0u16..4, 1u32..50).prop_map(|(p, idx)| {
        let mut vc = vec![0u32; 4];
        vc[p as usize] = idx;
        vec![Arc::new(cvm_race::make_interval(
            p,
            idx,
            vc,
            &[1, 2],
            &[3, 4, 5],
        ))]
    });
    prop_oneof![
        (any::<u32>(), 0u16..4, clock.clone()).prop_map(|(lock, p, vc)| Msg::LockReq {
            lock,
            requester: ProcId(p),
            vc: VClock::from(vc),
        }),
        (any::<u32>(), 0u16..4).prop_map(|(page, p)| Msg::PageReadReq {
            page: PageId(page),
            requester: ProcId(p),
        }),
        (any::<u32>(), proptest::collection::vec(any::<u64>(), 0..32)).prop_map(|(page, data)| {
            Msg::PageReadReply {
                page: PageId(page),
                data,
            }
        }),
        (
            0u16..4,
            any::<u32>(),
            proptest::collection::vec((0u32..64, any::<u64>()), 0..8)
        )
            .prop_map(|(w, interval, entries)| Msg::DiffFlush {
                writer: ProcId(w),
                interval,
                diffs: vec![Diff {
                    page: PageId(0),
                    entries,
                }],
            }),
        (0u16..4, clock, records).prop_map(|(p, vc, records)| {
            let mut vc = vc;
            vc.resize(4, 0);
            Msg::BarrierArrive {
                from: ProcId(p),
                vc: VClock::from(vc),
                records,
            }
        }),
        (0u16..4, any::<u64>()).prop_map(|(p, epoch)| Msg::CkptAck {
            from: ProcId(p),
            epoch,
        }),
        Just(Msg::Shutdown),
    ]
}

proptest! {
    // The acceptance bar for the decode trust boundary: ≥10k arbitrary
    // byte strings, zero panics.
    #![proptest_config(ProptestConfig::with_cases(10_000))]

    /// Decoding arbitrary bytes never panics: it yields a message or a
    /// structured error (a node must not be crashable by a corrupt frame).
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Msg::from_bytes(&bytes);
    }
}

proptest! {
    /// Valid tag with truncated body errors rather than panicking.
    #[test]
    fn truncated_bodies_error(tag in 0u8..19, cut in proptest::collection::vec(any::<u8>(), 0..6)) {
        let mut bytes = vec![tag];
        bytes.extend(cut);
        // Either decodes (tiny messages like Shutdown) or errors; never
        // panics.
        let _ = Msg::from_bytes(&bytes);
    }

    /// Bit-flipped valid encodings never panic, and — the integrity
    /// guarantee — can never reach the datagram decoder undetected: a flip
    /// that decodes to a *different valid message* is exactly the silent
    /// poisoning the frame checksum exists to stop.
    #[test]
    fn bit_flipped_messages_cannot_slip_past_the_frame(
        msg in arb_msg(),
        flips in proptest::collection::vec((any::<u16>(), 0u8..8), 1..4),
    ) {
        let body = msg.to_bytes();
        let frame = encode_frame(&body);
        // Flip bits inside the *body region* of the frame, so the damage
        // lands on message bytes (header damage is trivially caught).
        let mut damaged = frame.clone();
        let start = frame.len() - body.len();
        for (pos, bit) in &flips {
            if body.is_empty() {
                break;
            }
            let i = start + (*pos as usize % body.len());
            damaged[i] ^= 1 << bit;
        }
        // The raw flipped body must never panic the decoder (it may decode
        // to a different message — that is what the frame gate is for).
        if damaged != frame {
            let _ = Msg::from_bytes(&damaged[start..]);
            prop_assert!(
                decode_frame(&damaged).is_err(),
                "bit-flipped frame passed the integrity gate"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Record/replay reproduces the grant schedule for random contention
    /// patterns (the §6.1 guarantee the watchpoint mechanism relies on).
    #[test]
    fn replay_reproduces_schedule(
        rounds in proptest::collection::vec(1u32..8, 3),
        locks in proptest::collection::vec(0u32..2, 3),
    ) {
        let body = move |h: &cvm_dsm::ProcHandle, base: &cvm_page::GAddr| {
            let my_rounds = rounds[h.proc() % rounds.len()];
            let my_lock = locks[h.proc() % locks.len()];
            for _ in 0..my_rounds {
                h.lock(my_lock);
                let v = h.read(*base);
                h.write(*base, v + 1);
                h.unlock(my_lock);
            }
            h.barrier();
        };
        let mut c1 = DsmConfig::new(3);
        c1.record_sync = true;
        let a = Cluster::run(c1, |al| al.alloc("n", 8).unwrap(), &body).expect("cluster run");
        let mut c2 = DsmConfig::new(3);
        c2.record_sync = true;
        c2.replay = Some(a.schedule.clone());
        let b = Cluster::run(c2, |al| al.alloc("n", 8).unwrap(), &body).expect("cluster run");
        prop_assert_eq!(a.schedule, b.schedule);
    }
}
