//! Barrier-epoch checkpoint recovery: a scripted kill under
//! [`RecoveryPolicy::Recover`] must roll back to the last complete epoch,
//! restore every node from its image, and complete the run with race
//! reports byte-identical to a fault-free execution.

use std::time::Duration;

use cvm_dsm::{Cluster, DsmConfig, FaultPlan, Protocol, RecoveryPolicy, RunReport};
use cvm_vclock::ProcId;

const NPROCS: usize = 3;

/// Barrier-epoch loop with one deliberate write-write race per epoch pair:
/// processes 0 and 1 both write the `Racy` word in every epoch, so every
/// epoch's detection finds the same race and the full report sequence
/// fingerprints the whole run.
fn epoch_loop(h: &cvm_dsm::ProcHandle, base: cvm_page::GAddr, racy: cvm_page::GAddr) {
    let me = h.proc();
    let mut ep = h.epochs();
    for i in 0..12u64 {
        ep.step(|| {
            h.write(base.word(me as u64), i * 100 + me as u64);
            if me < 2 {
                h.write(racy, i);
            }
        });
    }
}

fn base_config(protocol: Protocol) -> DsmConfig {
    let mut cfg = DsmConfig::new(NPROCS);
    cfg.protocol = protocol;
    cfg.op_deadline = Duration::from_secs(2);
    cfg
}

/// The reliability-layer wire every faulty run uses; the fault-free
/// baseline runs over the same wire so virtual-time totals compare.
fn reliable_wire(seed: u64) -> FaultPlan {
    FaultPlan::clean(seed)
        .with_rto(Duration::from_millis(2), Duration::from_millis(16))
        .with_max_retransmits(8)
}

/// Scripts `victim`'s death mid-run and asks for recovery.
fn faulty_config(protocol: Protocol, victim: u16, seed: u64) -> DsmConfig {
    let mut cfg = base_config(protocol);
    cfg.net_loss = Some(reliable_wire(seed).with_kill(ProcId(victim), 60));
    cfg.recovery = RecoveryPolicy::Recover { max_attempts: 3 };
    cfg
}

fn run_epoch_loop(cfg: DsmConfig) -> RunReport {
    Cluster::run(
        cfg,
        |alloc| {
            let base = alloc.alloc("words", NPROCS as u64 * 8).unwrap();
            let racy = alloc.alloc("Racy", 8).unwrap();
            (base, racy)
        },
        |h, &(base, racy)| epoch_loop(h, base, racy),
    )
    .expect("run must complete")
}

/// Renders every race report against the segment map, sorted — the
/// byte-identity fingerprint the acceptance criteria ask for.
fn race_fingerprint(report: &RunReport) -> Vec<String> {
    let mut rendered: Vec<String> = report
        .races
        .reports()
        .iter()
        .map(|r| format!("{:?}@{} {}", r.kind, r.epoch, r.render(&report.segments)))
        .collect();
    rendered.sort();
    rendered
}

fn assert_recovers(protocol: Protocol, victim: u16) {
    // Fault-free baseline over the same reliability-layer wire, with
    // checkpointing on, so virtual-time totals are comparable.
    let mut clean_cfg = base_config(protocol);
    clean_cfg.net_loss = Some(reliable_wire(23));
    clean_cfg.recovery = RecoveryPolicy::Recover { max_attempts: 3 };
    let clean = run_epoch_loop(clean_cfg);
    assert_eq!(clean.recovery.recoveries, 0, "no faults, no recoveries");
    let recovered = run_epoch_loop(faulty_config(protocol, victim, 23));
    assert!(
        recovered.recovery.recoveries >= 1,
        "{protocol:?} victim {victim}: the kill must actually trigger recovery"
    );
    assert!(
        recovered.recovery.backoff_waits >= 1,
        "{protocol:?} victim {victim}: retry attempts must back off"
    );
    if victim == 0 {
        // Killing the barrier master re-seats it on the lowest survivor.
        assert!(
            recovered.recovery.failovers >= 1,
            "{protocol:?} victim {victim}: master death must move the seat"
        );
    } else {
        assert_eq!(
            recovered.recovery.failovers, 0,
            "{protocol:?} victim {victim}: a worker death must not move the seat"
        );
    }
    assert!(
        recovered.recovery.checkpoints_taken > 0,
        "checkpoints must be taken under Recover"
    );
    assert!(
        recovered.recovery.bytes_snapshotted > 0,
        "snapshots must be accounted"
    );
    assert_eq!(
        race_fingerprint(&clean),
        race_fingerprint(&recovered),
        "{protocol:?} victim {victim}: recovered race reports must be byte-identical"
    );
    // Restored NodeStats plus replayed epochs must add up to the full run:
    // the recovered cluster executed every barrier exactly once from the
    // report's point of view.
    assert_eq!(
        recovered.barriers(),
        clean.barriers(),
        "{protocol:?} victim {victim}: barrier accounting must survive recovery"
    );
}

#[test]
fn worker_kill_recovers_single_writer() {
    assert_recovers(Protocol::SingleWriter, 1);
}

#[test]
fn worker_kill_recovers_multi_writer() {
    assert_recovers(Protocol::MultiWriter, 1);
}

#[test]
fn last_node_kill_recovers_single_writer() {
    assert_recovers(Protocol::SingleWriter, 2);
}

#[test]
fn last_node_kill_recovers_multi_writer() {
    assert_recovers(Protocol::MultiWriter, 2);
}

#[test]
fn master_kill_recovers_single_writer() {
    assert_recovers(Protocol::SingleWriter, 0);
}

#[test]
fn master_kill_recovers_multi_writer() {
    assert_recovers(Protocol::MultiWriter, 0);
}

#[test]
fn abort_policy_still_surfaces_the_failure() {
    let mut cfg = faulty_config(Protocol::SingleWriter, 1, 23);
    cfg.recovery = RecoveryPolicy::Abort;
    let err = Cluster::run(
        cfg,
        |alloc| {
            let base = alloc.alloc("words", NPROCS as u64 * 8).unwrap();
            let racy = alloc.alloc("Racy", 8).unwrap();
            (base, racy)
        },
        |h, &(base, racy)| epoch_loop(h, base, racy),
    )
    .expect_err("Abort must not mask the kill");
    assert_eq!(err.error, cvm_dsm::DsmError::NodeFailed { proc: 1 });
    assert_eq!(err.partial.recovery, cvm_dsm::RecoveryStats::default());
}

#[test]
fn exhausted_attempts_surface_the_failure() {
    // A partition is not stripped between attempts (only the node itself
    // is replaced on recovery, not the broken wire), so every attempt
    // fails and the budget runs out.
    let mut cfg = base_config(Protocol::SingleWriter);
    cfg.net_loss = Some(
        FaultPlan::clean(5)
            .with_rto(Duration::from_millis(2), Duration::from_millis(16))
            .with_max_retransmits(8)
            .with_partition(ProcId(1), 40),
    );
    cfg.recovery = RecoveryPolicy::Recover { max_attempts: 2 };
    let err = Cluster::run(
        cfg,
        |alloc| {
            let base = alloc.alloc("words", NPROCS as u64 * 8).unwrap();
            let racy = alloc.alloc("Racy", 8).unwrap();
            (base, racy)
        },
        |h, &(base, racy)| epoch_loop(h, base, racy),
    )
    .expect_err("a permanent partition must exhaust the attempt budget");
    assert_eq!(err.partial.recovery.recoveries, 2, "both attempts spent");
}

#[test]
fn minority_master_surfaces_quorum_lost_by_name() {
    // Attempt 1: the master (node 0) is killed, so attempt 2 re-seats the
    // master on node 1 — which a permanent partition has cut off from the
    // fabric since its first datagram.  The would-be master sits on the
    // minority side of the partition: it can never assemble the strict
    // majority of handoff acknowledgements (2 of 3, its own seat
    // included), and the attempt must surface the *named* quorum loss —
    // not a raw timeout, and not a generic peer-death — without retrying
    // (a minority cannot vote itself into a majority by trying again).
    let mut cfg = base_config(Protocol::SingleWriter);
    cfg.net_loss = Some(
        reliable_wire(23)
            .with_kill(ProcId(0), 60)
            .with_partition(ProcId(1), 0),
    );
    cfg.recovery = RecoveryPolicy::Recover { max_attempts: 3 };
    let err = Cluster::run(
        cfg,
        |alloc| {
            let base = alloc.alloc("words", NPROCS as u64 * 8).unwrap();
            let racy = alloc.alloc("Racy", 8).unwrap();
            (base, racy)
        },
        |h, &(base, racy)| epoch_loop(h, base, racy),
    )
    .expect_err("a minority-side master must not complete the run");
    match err.error {
        cvm_dsm::DsmError::QuorumLost { got, needed } => {
            assert_eq!(needed, 2, "3-node majority is 2");
            assert!(got < needed, "a lost quorum is short by definition");
        }
        other => panic!("expected QuorumLost by name, got {other:?}"),
    }
    assert!(
        !err.error.is_transient(),
        "quorum loss must not burn retry budget"
    );
    assert!(
        err.partial.recovery.quorum_losses >= 1,
        "the loss must be surfaced in the recovery counters"
    );
}

#[test]
fn lock_heavy_program_recovers_with_exact_state() {
    // A correctly-locked shared counter: each of the 3 processes adds 1
    // under lock 1 (whose manager, node 1, is the kill victim) in each of
    // 8 epochs.  Recovery restores lock-manager state and page contents
    // from the images; replayed epochs re-earn exactly the rolled-back
    // increments, so the final count proves state-exact recovery.
    const EPOCHS: u64 = 8;
    let run = |faulty: bool| -> (RunReport, u64) {
        let mut cfg = base_config(Protocol::MultiWriter);
        cfg.net_loss = Some(if faulty {
            reliable_wire(17).with_kill(ProcId(1), 80)
        } else {
            reliable_wire(17)
        });
        cfg.recovery = RecoveryPolicy::Recover { max_attempts: 3 };
        let total = std::sync::Mutex::new(0u64);
        let report = Cluster::run(
            cfg,
            |alloc| alloc.alloc("Counter", 8).unwrap(),
            |h, &ctr| {
                let mut ep = h.epochs();
                for _ in 0..EPOCHS {
                    ep.step(|| {
                        h.lock(1);
                        let v = h.read(ctr);
                        h.write(ctr, v + 1);
                        h.unlock(1);
                    });
                }
                ep.step(|| {
                    if h.proc() == 0 {
                        *total.lock().unwrap() = h.read(ctr);
                    }
                });
            },
        )
        .expect("run must complete");
        let total = *total.lock().unwrap();
        (report, total)
    };
    let (clean, clean_total) = run(false);
    assert_eq!(clean_total, EPOCHS * NPROCS as u64);
    assert!(clean.races.is_empty(), "locked counter is race-free");
    let (recovered, recovered_total) = run(true);
    assert!(recovered.recovery.recoveries >= 1, "the kill must recover");
    assert_eq!(
        recovered_total, clean_total,
        "replayed epochs must re-earn exactly the rolled-back increments"
    );
    assert!(recovered.races.is_empty());
}

#[test]
fn checkpoint_costs_flow_through_simtime() {
    // Same program, no faults: checkpointing on vs off.  A single-process
    // cluster makes virtual time fully deterministic (multi-node totals
    // depend on service-thread interleaving), so the per-word checkpoint
    // charge at every barrier release is directly observable.
    let run_one = |recovery: RecoveryPolicy| {
        let mut cfg = DsmConfig::new(1);
        cfg.op_deadline = Duration::from_secs(2);
        cfg.recovery = recovery;
        Cluster::run(
            cfg,
            |alloc| alloc.alloc("words", 8).unwrap(),
            |h, &base| {
                let mut ep = h.epochs();
                for i in 0..12u64 {
                    ep.step(|| h.write(base, i));
                }
            },
        )
        .expect("single-proc run")
    };
    let off = run_one(RecoveryPolicy::Abort);
    assert_eq!(
        off.recovery,
        cvm_dsm::RecoveryStats::default(),
        "Abort default must not checkpoint"
    );
    let on = run_one(RecoveryPolicy::Recover { max_attempts: 1 });
    assert!(on.recovery.checkpoints_taken > 0);
    assert_eq!(on.recovery.recoveries, 0, "no faults, no recoveries");
    assert!(
        on.virtual_cycles() > off.virtual_cycles(),
        "checkpoint cost must appear in virtual time: {} vs {}",
        on.virtual_cycles(),
        off.virtual_cycles()
    );
}
