//! End-to-end cluster tests: coherence, synchronization, and detection.

use cvm_dsm::{Cluster, DetectConfig, DsmConfig, Protocol, WriteDetection};
use cvm_net::TrafficClass;
use cvm_page::GAddr;
use cvm_race::RaceKind;

fn cfg(nprocs: usize) -> DsmConfig {
    DsmConfig::new(nprocs)
}

#[test]
fn single_proc_write_read_and_barrier() {
    let report = Cluster::run(
        cfg(1),
        |alloc| alloc.alloc("x", 8).unwrap(),
        |h, &x| {
            h.write(x, 42);
            assert_eq!(h.read(x), 42);
            h.barrier();
            assert_eq!(h.read(x), 42);
        },
    )
    .expect("cluster run");
    assert!(report.races.is_empty());
    assert_eq!(report.barriers(), 1);
}

#[test]
fn lock_protected_counter_is_coherent() {
    const PER_PROC: u64 = 25;
    let nprocs = 4;
    let report = Cluster::run(
        cfg(nprocs),
        |alloc| alloc.alloc("counter", 8).unwrap(),
        |h, &counter| {
            for _ in 0..PER_PROC {
                h.lock(1);
                let v = h.read(counter);
                h.write(counter, v + 1);
                h.unlock(1);
            }
            h.barrier();
            assert_eq!(h.read(counter), PER_PROC * nprocs as u64);
        },
    )
    .expect("cluster run");
    // Properly synchronized: no races.
    assert!(
        report.races.is_empty(),
        "unexpected races: {:?}",
        report.races.reports()
    );
}

#[test]
fn barrier_ordered_neighbor_exchange_is_race_free() {
    // Each proc writes its slot (distinct words of one page), crosses a
    // barrier, then reads every other slot: page-level sharing across
    // epochs is ordered; within the epoch the writes are false sharing.
    let nprocs = 4;
    let report = Cluster::run(
        cfg(nprocs),
        |alloc| alloc.alloc("slots", 8 * 4).unwrap(),
        |h, &slots| {
            let me = h.proc() as u64;
            h.write(slots.word(me), 100 + me);
            h.barrier();
            for p in 0..h.nprocs() as u64 {
                assert_eq!(h.read(slots.word(p)), 100 + p);
            }
            h.barrier();
        },
    )
    .expect("cluster run");
    assert!(
        report.races.is_empty(),
        "false sharing misreported as races: {:?}",
        report.races.reports()
    );
    // The concurrent writes to one page were examined and dismissed.
    assert!(report.det_stats.pairs_overlapping > 0);
    assert!(report.det_stats.bitmaps_requested > 0);
}

#[test]
fn write_write_race_is_detected_and_symbolized() {
    let report = Cluster::run(
        cfg(2),
        |alloc| {
            let _pad = alloc.alloc("pad", 64).unwrap();
            alloc.alloc("Racy", 8).unwrap()
        },
        |h, &racy| {
            h.write(racy, h.proc() as u64);
            h.barrier();
        },
    )
    .expect("cluster run");
    assert!(!report.races.is_empty(), "write-write race missed");
    let r = &report.races.reports()[0];
    assert_eq!(r.kind, RaceKind::WriteWrite);
    assert_eq!(r.addr, racy_addr(&report));
    assert!(r.render(&report.segments).contains("Racy"));
}

fn racy_addr(report: &cvm_dsm::RunReport) -> GAddr {
    report
        .segments
        .segments()
        .iter()
        .find(|s| s.name == "Racy")
        .expect("Racy segment")
        .base
}

#[test]
fn read_write_race_is_detected() {
    let report = Cluster::run(
        cfg(2),
        |alloc| alloc.alloc("flag", 8).unwrap(),
        |h, &flag| {
            if h.proc() == 0 {
                h.write(flag, 1);
            } else {
                let _ = h.read(flag);
            }
            h.barrier();
        },
    )
    .expect("cluster run");
    assert_eq!(report.races.len(), 1);
    assert_eq!(report.races.reports()[0].kind, RaceKind::ReadWrite);
}

#[test]
fn lock_ordering_suppresses_race() {
    // Figure 1's w1-r3 pair: write under a lock, read under the same lock.
    let report = Cluster::run(
        cfg(2),
        |alloc| alloc.alloc("x", 8).unwrap(),
        |h, &x| {
            h.lock(7);
            if h.proc() == 0 {
                h.write(x, 5);
            } else {
                let _ = h.read(x);
            }
            h.unlock(7);
            h.barrier();
        },
    )
    .expect("cluster run");
    assert!(
        report.races.is_empty(),
        "lock-ordered accesses misreported: {:?}",
        report.races.reports()
    );
}

#[test]
fn barrier_orders_across_epochs() {
    // Write in epoch 0, read in epoch 1: ordered by the barrier.
    let report = Cluster::run(
        cfg(2),
        |alloc| alloc.alloc("x", 8).unwrap(),
        |h, &x| {
            if h.proc() == 0 {
                h.write(x, 99);
            }
            h.barrier();
            assert_eq!(h.read(x), 99, "stale read after barrier");
            h.barrier();
        },
    )
    .expect("cluster run");
    assert!(report.races.is_empty());
}

#[test]
fn values_propagate_through_lock_chain() {
    // P0 writes under lock; P1 acquires the same lock and must see it
    // (the consistency information rides on the grant).
    let report = Cluster::run(
        cfg(2),
        |alloc| {
            (
                alloc.alloc("data", 8).unwrap(),
                alloc.alloc("turn", 8).unwrap(),
            )
        },
        |h, &(data, turn)| {
            if h.proc() == 0 {
                h.lock(3);
                h.write(data, 1234);
                h.write(turn, 1);
                h.unlock(3);
            } else {
                loop {
                    h.lock(3);
                    let t = h.read(turn);
                    if t == 1 {
                        assert_eq!(h.read(data), 1234);
                        h.unlock(3);
                        break;
                    }
                    h.unlock(3);
                    std::thread::yield_now();
                }
            }
            h.barrier();
        },
    )
    .expect("cluster run");
    assert!(report.races.is_empty());
}

#[test]
fn multiwriter_concurrent_disjoint_writes_merge() {
    let mut c = cfg(4);
    c.protocol = Protocol::MultiWriter;
    let report = Cluster::run(
        c,
        |alloc| alloc.alloc("shared_page", 4096).unwrap(),
        |h, &base| {
            let me = h.proc() as u64;
            // All four procs write disjoint words of the same page,
            // concurrently.
            h.write(base.word(me * 8), 1000 + me);
            h.barrier();
            // Everyone sees everyone's writes after the barrier.
            for p in 0..h.nprocs() as u64 {
                assert_eq!(h.read(base.word(p * 8)), 1000 + p, "lost update");
            }
            h.barrier();
        },
    )
    .expect("cluster run");
    assert!(
        report.races.is_empty(),
        "multi-writer false sharing misreported: {:?}",
        report.races.reports()
    );
    let diffs: u64 = report.nodes.iter().map(|n| n.stats.diffs_made).sum();
    assert!(diffs >= 3, "expected diffs from concurrent writers");
}

#[test]
fn diff_write_detection_misses_same_value_overwrite() {
    // §6.5's documented weakness: P0 overwrites a word with its existing
    // value (zero) while P1 reads it.  Instrumentation-based detection
    // reports the read-write race; diff-based detection cannot.
    let run = |write_detection| {
        let mut c = cfg(2);
        c.protocol = Protocol::MultiWriter;
        c.detect.write_detection = write_detection;
        Cluster::run(
            c,
            |alloc| alloc.alloc("x", 8).unwrap(),
            |h, &x| {
                if h.proc() == 0 {
                    h.write(x, 0); // Same value as the initial contents.
                } else {
                    let _ = h.read(x);
                }
                h.barrier();
            },
        )
        .expect("cluster run")
    };
    let instrumented = run(WriteDetection::Instrumentation);
    assert_eq!(instrumented.races.len(), 1, "instrumentation must catch it");
    let diffed = run(WriteDetection::Diffs);
    assert!(
        diffed.races.is_empty(),
        "diff-based detection cannot see same-value overwrites"
    );
}

#[test]
fn detection_off_runs_clean_and_cheaper() {
    let run = |detect| {
        let mut c = cfg(2);
        c.detect = detect;
        Cluster::run(
            c,
            |alloc| alloc.alloc("x", 8).unwrap(),
            |h, &x| {
                for i in 0..100 {
                    if h.proc() == 0 {
                        h.write(x, i);
                    } else {
                        let _ = h.read(x);
                    }
                    h.barrier();
                }
            },
        )
        .expect("cluster run")
    };
    let on = run(DetectConfig::on());
    let off = run(DetectConfig::off());
    assert!(on.races.len() <= 100);
    assert!(off.races.is_empty());
    // Read notices only exist with detection on.
    assert!(on.net.class_bytes(TrafficClass::ReadNotice) > 0);
    assert_eq!(off.net.class_bytes(TrafficClass::ReadNotice), 0);
    assert_eq!(off.net.class_bytes(TrafficClass::Bitmap), 0);
    // And the instrumented run is virtually slower.
    assert!(on.virtual_cycles() > off.virtual_cycles());
}

#[test]
fn barrier_only_app_has_two_intervals_per_barrier() {
    let report = Cluster::run(
        cfg(4),
        |alloc| alloc.alloc("grid", 4096).unwrap(),
        |h, &grid| {
            for _ in 0..10 {
                h.write(grid.word(h.proc() as u64), 1);
                h.barrier();
            }
        },
    )
    .expect("cluster run");
    let ipb = report.intervals_per_barrier();
    assert!(
        (ipb - 2.0).abs() < 0.35,
        "intervals per barrier = {ipb}, expected ~2 (Table 1)"
    );
}

#[test]
fn first_races_only_reports_earliest_epoch() {
    let run = |first_only| {
        let mut c = cfg(2);
        c.detect.first_races_only = first_only;
        Cluster::run(
            c,
            |alloc| (alloc.alloc("a", 8).unwrap(), alloc.alloc("b", 8).unwrap()),
            |h, &(a, b)| {
                // Epoch 0: race on `a`.
                h.write(a, h.proc() as u64);
                h.barrier();
                // Epoch 1: race on `b`.
                h.write(b, h.proc() as u64);
                h.barrier();
            },
        )
        .expect("cluster run")
    };
    let all = run(false);
    let epochs_all: std::collections::BTreeSet<u64> =
        all.races.reports().iter().map(|r| r.epoch).collect();
    assert_eq!(
        epochs_all.len(),
        2,
        "races in both epochs: {all:?}",
        all = all.races
    );
    let first = run(true);
    assert!(!first.races.is_empty());
    let epochs_first: std::collections::BTreeSet<u64> =
        first.races.reports().iter().map(|r| r.epoch).collect();
    assert_eq!(epochs_first.len(), 1);
    assert_eq!(
        epochs_first.into_iter().next(),
        epochs_all.into_iter().next()
    );
}

#[test]
fn consolidation_detects_races_without_program_barriers() {
    // A lock-only program (§6.3): the race is found at the explicit
    // consolidation point.
    let report = Cluster::run(
        cfg(2),
        |alloc| alloc.alloc("x", 8).unwrap(),
        |h, &x| {
            h.write(x, h.proc() as u64 + 1);
            h.consolidate();
        },
    )
    .expect("cluster run");
    assert!(!report.races.is_empty());
    assert!(report.nodes.iter().all(|n| n.stats.consolidations == 1));
}

#[test]
fn sync_record_then_replay_reproduces_grant_order() {
    let body = |h: &cvm_dsm::ProcHandle, shared: &GAddr| {
        for _ in 0..20 {
            h.lock(5);
            let v = h.read(*shared);
            h.write(*shared, v + 1);
            h.unlock(5);
        }
        h.barrier();
    };
    let mut c1 = cfg(4);
    c1.record_sync = true;
    let first =
        Cluster::run(c1, |a| a.alloc("n", 8).unwrap(), |h, s| body(h, s)).expect("cluster run");
    assert!(!first.schedule.is_empty());

    let mut c2 = cfg(4);
    c2.record_sync = true;
    c2.replay = Some(first.schedule.clone());
    let second =
        Cluster::run(c2, |a| a.alloc("n", 8).unwrap(), |h, s| body(h, s)).expect("cluster run");
    assert_eq!(
        second.schedule, first.schedule,
        "replay must reproduce the recorded grant order"
    );
}

#[test]
fn watch_identifies_access_sites_on_replay() {
    // First run: find the race.  Second run (replayed): gather the access
    // sites touching the racy address in the racy epoch (§6.1).
    let body = |h: &cvm_dsm::ProcHandle, x: &GAddr| {
        if h.proc() == 0 {
            h.write_at(*x, 7, 1001);
        } else {
            let _ = h.read_at(*x, 2002);
        }
        h.barrier();
    };
    let mut c1 = cfg(2);
    c1.record_sync = true;
    let first =
        Cluster::run(c1, |a| a.alloc("x", 8).unwrap(), |h, x| body(h, x)).expect("cluster run");
    assert_eq!(first.races.len(), 1);
    let race = first.races.reports()[0].clone();

    let mut c2 = cfg(2);
    c2.replay = Some(first.schedule.clone());
    c2.detect.watch = Some(cvm_dsm::Watch {
        addr: race.addr,
        epoch: race.epoch,
    });
    let second =
        Cluster::run(c2, |a| a.alloc("x", 8).unwrap(), |h, x| body(h, x)).expect("cluster run");
    let sites: std::collections::BTreeSet<u32> =
        second.watch_hits.iter().map(|hit| hit.site).collect();
    assert_eq!(
        sites.into_iter().collect::<Vec<_>>(),
        vec![1001, 2002],
        "both racy access sites identified"
    );
}

#[test]
fn many_procs_stress_pages_and_locks() {
    let nprocs = 8;
    let report = Cluster::run(
        cfg(nprocs),
        |alloc| {
            (
                alloc.alloc_page_aligned("grid", 8 * 4096).unwrap(),
                alloc.alloc("sum", 8).unwrap(),
            )
        },
        |h, &(grid, sum)| {
            let me = h.proc() as u64;
            // Page-aligned private rows: no sharing at all.
            for w in 0..512 {
                h.write(grid.offset(me * 4096).word(w), me * 1000 + w);
            }
            h.barrier();
            // Read the next proc's row (ordered by the barrier).
            let next = (me + 1) % h.nprocs() as u64;
            let mut local = 0u64;
            for w in 0..512 {
                local += h.read(grid.offset(next * 4096).word(w));
            }
            h.lock(0);
            let v = h.read(sum);
            h.write(sum, v.wrapping_add(local));
            h.unlock(0);
            h.barrier();
            let _ = h.read(sum);
            h.barrier();
        },
    )
    .expect("cluster run");
    assert!(
        report.races.is_empty(),
        "clean program misreported: {:?}",
        report.races.reports()
    );
    assert_eq!(report.barriers(), 3);
    let (rf, wf) = report.faults();
    assert!(rf > 0 && wf > 0);
}

#[test]
fn garbage_collection_keeps_state_bounded() {
    // 60 epochs of identical work: retained interval records and bitmaps
    // must plateau (GC at each barrier), not grow with epoch count.
    let run = |epochs: usize| {
        let report = Cluster::run(
            cfg(3),
            |alloc| alloc.alloc_page_aligned("grid", 3 * 4096).unwrap(),
            |h, &grid| {
                let me = h.proc() as u64;
                for _ in 0..epochs {
                    for w in 0..32 {
                        h.write(grid.offset(me * 4096).word(w), w);
                    }
                    let next = (me + 1) % h.nprocs() as u64;
                    let _ = h.read(grid.offset(next * 4096).word(0));
                    h.barrier();
                }
            },
        )
        .expect("cluster run");
        report
            .nodes
            .iter()
            .map(|n| (n.stats.log_high_water, n.stats.bitmap_high_water))
            .collect::<Vec<_>>()
    };
    let short = run(6);
    let long = run(60);
    for (p, (s, l)) in short.iter().zip(&long).enumerate() {
        assert_eq!(s, l, "P{p}: retained-state high water grew with epochs");
    }
    // And the plateau is small: a handful of records per epoch, not
    // hundreds.
    for &(log_hw, bm_hw) in &long {
        assert!(log_hw <= 24, "log high water {log_hw}");
        assert!(bm_hw <= 24, "bitmap high water {bm_hw}");
    }
}

#[test]
fn handle_utility_surface() {
    let report = Cluster::run(
        cfg(2),
        |alloc| alloc.alloc("x", 16).unwrap(),
        |h, &x| {
            assert_eq!(h.nprocs(), 2);
            assert!(h.proc() < 2);
            // f64 round-trip through shared memory.
            if h.proc() == 0 {
                h.write_f64(x, -3.75);
                h.write(x.word(1), u64::MAX);
            }
            h.barrier();
            assert_eq!(h.read_f64(x), -3.75);
            assert_eq!(h.read(x.word(1)), u64::MAX);
            // Virtual time advances with explicit compute.
            let before = h.virtual_now();
            h.compute(12_345);
            assert!(h.virtual_now() >= before + 12_345);
            // Private traffic counts calls without touching shared state.
            h.private_traffic(7);
            h.barrier();
            // Races so far: the f64/word writes were ordered; none.
            assert_eq!(h.races_so_far(), 0);
        },
    )
    .expect("cluster run");
    let (shared, private) = report.analysis_calls();
    assert!(shared > 0);
    assert_eq!(private, 14, "7 private calls per proc");
}

#[test]
fn program_without_barriers_completes_without_detection() {
    // Detection only runs at global synchronization (§6.3): a racy program
    // that never reaches a barrier ends undetected — the documented
    // deployment reason for consolidate().
    let report = Cluster::run(
        cfg(2),
        |alloc| alloc.alloc("x", 8).unwrap(),
        |h, &x| {
            h.write(x, h.proc() as u64);
            let _ = h.read(x);
        },
    )
    .expect("cluster run");
    assert!(report.races.is_empty());
    assert_eq!(report.barriers(), 0);
    assert_eq!(report.det_stats.pair_comparisons, 0);
}

#[test]
fn tiny_pages_geometry_works() {
    // 64-byte pages: every word pair lands on its own page; the protocol
    // and detector must be geometry-agnostic.
    let mut c = cfg(3);
    c.geometry = cvm_page::Geometry::with_page_bytes(64);
    let report = Cluster::run(
        c,
        |alloc| alloc.alloc("arr", 8 * 24).unwrap(),
        |h, &arr| {
            let me = h.proc() as u64;
            for k in 0..8 {
                h.write(arr.word(me * 8 + k), k);
            }
            h.barrier();
            for w in 0..24 {
                let _ = h.read(arr.word(w));
            }
            h.barrier();
        },
    )
    .expect("cluster run");
    assert!(report.races.is_empty(), "{:?}", report.races.reports());
    let (rf, _) = report.faults();
    assert!(rf > 0, "cross-page reads must fault");
}

#[test]
fn twelve_procs_smoke() {
    let nprocs = 12;
    let report = Cluster::run(
        cfg(nprocs),
        |alloc| {
            (
                alloc.alloc_page_aligned("grid", 12 * 4096).unwrap(),
                alloc.alloc("sum", 8).unwrap(),
            )
        },
        |h, &(grid, sum)| {
            let me = h.proc() as u64;
            for w in 0..64 {
                h.write(grid.offset(me * 4096).word(w), me * 64 + w);
            }
            h.barrier();
            let next = (me + 1) % h.nprocs() as u64;
            let mut acc = 0u64;
            for w in 0..64 {
                acc = acc.wrapping_add(h.read(grid.offset(next * 4096).word(w)));
            }
            h.lock(0);
            let v = h.read(sum);
            h.write(sum, v.wrapping_add(acc));
            h.unlock(0);
            h.barrier();
            // All procs see the complete sum.
            let total = h.read(sum);
            let expect: u64 = (0..12 * 64).sum();
            assert_eq!(total, expect);
            h.barrier();
        },
    )
    .expect("cluster run");
    assert!(report.races.is_empty());
    assert_eq!(report.nodes.len(), 12);
}

#[test]
fn full_stack_over_lossy_wire() {
    // The whole protocol — locks, barriers, page ownership, detection,
    // the bitmap round — over a 10%-loss wire with the reliability layer
    // underneath: same answers, same races.
    let mut c = cfg(3);
    c.net_loss = Some(cvm_net::reliable::LossConfig::new(0.10, 1996));
    let report = Cluster::run(
        c,
        |alloc| {
            (
                alloc.alloc("counter", 8).unwrap(),
                alloc.alloc("racy", 8).unwrap(),
            )
        },
        |h, &(counter, racy)| {
            for _ in 0..10 {
                h.lock(1);
                let v = h.read(counter);
                h.write(counter, v + 1);
                h.unlock(1);
                let r = h.read(racy);
                h.write(racy, r + 1);
            }
            h.barrier();
            assert_eq!(h.read(counter), 30, "loss must not corrupt coherence");
            h.barrier();
        },
    )
    .expect("cluster run");
    let racy_addr = report
        .segments
        .segments()
        .iter()
        .find(|s| s.name == "racy")
        .unwrap()
        .base;
    assert!(
        !report.races.at(racy_addr).is_empty(),
        "race detection must survive the lossy wire"
    );
    let locked_addr = report.segments.segments()[0].base;
    assert!(report.races.at(locked_addr).is_empty());
}
