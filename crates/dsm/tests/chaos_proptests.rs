//! Chaos testing: randomized barrier-only litmus programs run over
//! randomized fault plans.  The wire may drop, duplicate, and reorder —
//! the reliability protocol repairs it all, so the race detector must
//! report *byte-identical* races to a fault-free run of the same program,
//! and the same `(FaultPlan, seed)` must reproduce exactly.  Scripted
//! kills under [`RecoveryPolicy::Recover`] must likewise complete with
//! identical reports, via barrier-epoch checkpoint rollback.

use std::time::Duration;

use cvm_dsm::{Cluster, DsmConfig, FaultPlan, Protocol, RecoveryPolicy};
use cvm_vclock::ProcId;
use proptest::prelude::*;

/// One access in one barrier epoch: `(proc, word, is_write)`.
type Op = (usize, usize, bool);

/// Runs `epochs` (each a list of ops, barrier-terminated) and returns the
/// rendered race reports, sorted for schedule-independent comparison.
fn run_program(
    nprocs: usize,
    protocol: Protocol,
    words: usize,
    epochs: &[Vec<Op>],
    plan: Option<FaultPlan>,
    recovery: RecoveryPolicy,
) -> Vec<String> {
    let mut cfg = DsmConfig::new(nprocs);
    cfg.protocol = protocol;
    cfg.net_loss = plan;
    cfg.recovery = recovery;
    cfg.op_deadline = Duration::from_secs(5);
    let report = Cluster::run(
        cfg,
        |alloc| alloc.alloc("words", (words * 8) as u64).unwrap(),
        |h, &base| {
            let me = h.proc();
            let mut ep = h.epochs();
            for (e, ops) in epochs.iter().enumerate() {
                ep.step(|| {
                    for &(p, w, is_write) in ops {
                        if p % nprocs != me {
                            continue;
                        }
                        let addr = base.word(w as u64);
                        if is_write {
                            h.write(addr, (e * 1000 + w) as u64);
                        } else {
                            let _ = h.read(addr);
                        }
                    }
                });
            }
        },
    )
    .expect("survivable chaos must not fail the run");
    let mut rendered: Vec<String> = report
        .races
        .reports()
        .iter()
        .map(|r| r.render(&report.segments))
        .collect();
    rendered.sort();
    rendered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Faults below the kill threshold are invisible to the application:
    /// whatever races the program has, the detector reports the same ones
    /// (bytes-for-bytes) over a chaotic wire as over perfect channels —
    /// and reproduces them on a rerun of the identical plan.
    #[test]
    fn race_reports_survive_wire_chaos(
        nprocs in 2usize..4,
        words in 1usize..6,
        epochs in proptest::collection::vec(
            proptest::collection::vec((0usize..4, 0usize..6, any::<bool>()), 0..8),
            1..4,
        ),
        drop_rate in 0.0f64..0.3,
        dup_rate in 0.0f64..0.2,
        reorder_rate in 0.0f64..0.15,
        seed in any::<u64>(),
        multi_writer in any::<bool>(),
    ) {
        let protocol = if multi_writer { Protocol::MultiWriter } else { Protocol::SingleWriter };
        let epochs: Vec<Vec<Op>> = epochs
            .iter()
            .map(|ops| ops.iter().map(|&(p, w, is_w)| (p, w % words, is_w)).collect())
            .collect();
        let plan = FaultPlan::new(drop_rate, seed)
            .with_duplication(dup_rate)
            .with_reordering(reorder_rate);
        let clean = run_program(nprocs, protocol, words, &epochs, None, RecoveryPolicy::Abort);
        let faulty = run_program(
            nprocs, protocol, words, &epochs, Some(plan.clone()), RecoveryPolicy::Abort,
        );
        prop_assert_eq!(
            &clean, &faulty,
            "chaotic wire changed the race reports ({:?})", protocol
        );
        let again = run_program(
            nprocs, protocol, words, &epochs, Some(plan), RecoveryPolicy::Abort,
        );
        prop_assert_eq!(&faulty, &again, "same (plan, seed) must reproduce");
    }

    /// A scripted node kill under [`RecoveryPolicy::Recover`] is survivable
    /// for *any* barrier-structured program: the cluster rolls back to the
    /// last complete epoch, restores the victim from its image, and the
    /// completed run's race reports are byte-identical to a fault-free run.
    #[test]
    fn scripted_kill_recovers_with_identical_races(
        nprocs in 2usize..4,
        words in 1usize..6,
        epochs in proptest::collection::vec(
            proptest::collection::vec((0usize..4, 0usize..6, any::<bool>()), 0..8),
            2..5,
        ),
        victim_raw in 0usize..4,
        kill_at in 20u64..120,
        seed in any::<u64>(),
        multi_writer in any::<bool>(),
    ) {
        let protocol = if multi_writer { Protocol::MultiWriter } else { Protocol::SingleWriter };
        let victim = (victim_raw % nprocs) as u16;
        let epochs: Vec<Vec<Op>> = epochs
            .iter()
            .map(|ops| ops.iter().map(|&(p, w, is_w)| (p, w % words, is_w)).collect())
            .collect();
        // Checkpointing on for both runs so the only difference is the kill.
        let recover = RecoveryPolicy::Recover { max_attempts: 3 };
        let wire = |seed: u64| {
            FaultPlan::clean(seed)
                .with_rto(Duration::from_millis(2), Duration::from_millis(16))
                .with_max_retransmits(8)
        };
        let clean = run_program(nprocs, protocol, words, &epochs, Some(wire(seed)), recover);
        let killed = run_program(
            nprocs,
            protocol,
            words,
            &epochs,
            Some(wire(seed).with_kill(ProcId(victim), kill_at)),
            recover,
        );
        // Short programs may finish before event `kill_at`, in which case
        // the kill never fires and the run is trivially identical — the
        // property holds either way, so assert only report identity.
        prop_assert_eq!(
            &clean, &killed,
            "{:?} victim {} killed at {}: recovered race reports must match",
            protocol, victim, kill_at
        );
    }
}
