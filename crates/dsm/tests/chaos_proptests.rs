//! Chaos testing: randomized barrier-only litmus programs run over
//! randomized fault plans.  The wire may drop, duplicate, reorder, and
//! corrupt — the reliability protocol repairs it all, so the race detector
//! must report *byte-identical* races to a fault-free run of the same
//! program, and the same `(FaultPlan, seed)` must reproduce exactly.
//! Scripted kills under [`RecoveryPolicy::Recover`] must likewise complete
//! with identical reports, via barrier-epoch checkpoint rollback.

use std::time::Duration;

use cvm_dsm::{Cluster, DsmConfig, FaultPlan, Protocol, RecoveryPolicy};
use cvm_net::ReliabilitySnapshot;
use cvm_vclock::ProcId;
use proptest::prelude::*;

/// One access in one barrier epoch: `(proc, word, is_write)`.
type Op = (usize, usize, bool);

/// Runs `epochs` (each a list of ops, barrier-terminated) and returns the
/// completed run's full report.
fn run_program_report(
    nprocs: usize,
    protocol: Protocol,
    words: usize,
    epochs: &[Vec<Op>],
    plan: Option<FaultPlan>,
    recovery: RecoveryPolicy,
) -> cvm_dsm::RunReport {
    let mut cfg = DsmConfig::new(nprocs);
    cfg.protocol = protocol;
    cfg.net_loss = plan;
    cfg.recovery = recovery;
    cfg.op_deadline = Duration::from_secs(5);
    let report = Cluster::run(
        cfg,
        |alloc| alloc.alloc("words", (words * 8) as u64).unwrap(),
        |h, &base| {
            let me = h.proc();
            let mut ep = h.epochs();
            for (e, ops) in epochs.iter().enumerate() {
                ep.step(|| {
                    for &(p, w, is_write) in ops {
                        if p % nprocs != me {
                            continue;
                        }
                        let addr = base.word(w as u64);
                        if is_write {
                            h.write(addr, (e * 1000 + w) as u64);
                        } else {
                            let _ = h.read(addr);
                        }
                    }
                });
            }
        },
    )
    .expect("survivable chaos must not fail the run");
    report
}

/// Race reports rendered and sorted for schedule-independent comparison.
fn rendered(report: &cvm_dsm::RunReport) -> Vec<String> {
    let mut v: Vec<String> = report
        .races
        .reports()
        .iter()
        .map(|r| r.render(&report.segments))
        .collect();
    v.sort();
    v
}

/// [`run_program_report`] with the detection mode as a knob (pipelined
/// moves comparison off the barrier's critical path; reports must not
/// care), reduced to the rendered race reports.
fn run_detect_program(
    nprocs: usize,
    protocol: Protocol,
    pipelined: bool,
    words: usize,
    epochs: &[Vec<Op>],
    plan: Option<FaultPlan>,
    recovery: RecoveryPolicy,
) -> Vec<String> {
    let mut cfg = DsmConfig::new(nprocs);
    cfg.protocol = protocol;
    cfg.net_loss = plan;
    cfg.recovery = recovery;
    cfg.op_deadline = Duration::from_secs(5);
    cfg.detect = if pipelined {
        cvm_dsm::DetectConfig::pipelined()
    } else {
        cvm_dsm::DetectConfig::on()
    };
    let report = Cluster::run(
        cfg,
        |alloc| alloc.alloc("words", (words * 8) as u64).unwrap(),
        |h, &base| {
            let me = h.proc();
            let mut ep = h.epochs();
            for (e, ops) in epochs.iter().enumerate() {
                ep.step(|| {
                    for &(p, w, is_write) in ops {
                        if p % nprocs != me {
                            continue;
                        }
                        let addr = base.word(w as u64);
                        if is_write {
                            h.write(addr, (e * 1000 + w) as u64);
                        } else {
                            let _ = h.read(addr);
                        }
                    }
                });
            }
        },
    )
    .expect("a healing partition under Recover must not fail the run");
    rendered(&report)
}

/// [`run_program_report`] reduced to the rendered race reports plus the
/// wire-level counters, when the run had a wire.
fn run_program_full(
    nprocs: usize,
    protocol: Protocol,
    words: usize,
    epochs: &[Vec<Op>],
    plan: Option<FaultPlan>,
    recovery: RecoveryPolicy,
) -> (Vec<String>, Option<ReliabilitySnapshot>) {
    let report = run_program_report(nprocs, protocol, words, epochs, plan, recovery);
    let races = rendered(&report);
    (races, report.reliability)
}

/// [`run_program_full`] when only the race reports matter.
fn run_program(
    nprocs: usize,
    protocol: Protocol,
    words: usize,
    epochs: &[Vec<Op>],
    plan: Option<FaultPlan>,
    recovery: RecoveryPolicy,
) -> Vec<String> {
    run_program_full(nprocs, protocol, words, epochs, plan, recovery).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Faults below the kill threshold are invisible to the application:
    /// whatever races the program has, the detector reports the same ones
    /// (bytes-for-bytes) over a chaotic wire as over perfect channels —
    /// and reproduces them on a rerun of the identical plan.
    #[test]
    fn race_reports_survive_wire_chaos(
        nprocs in 2usize..4,
        words in 1usize..6,
        epochs in proptest::collection::vec(
            proptest::collection::vec((0usize..4, 0usize..6, any::<bool>()), 0..8),
            1..4,
        ),
        drop_rate in 0.0f64..0.3,
        dup_rate in 0.0f64..0.2,
        reorder_rate in 0.0f64..0.15,
        seed in any::<u64>(),
        multi_writer in any::<bool>(),
    ) {
        let protocol = if multi_writer { Protocol::MultiWriter } else { Protocol::SingleWriter };
        let epochs: Vec<Vec<Op>> = epochs
            .iter()
            .map(|ops| ops.iter().map(|&(p, w, is_w)| (p, w % words, is_w)).collect())
            .collect();
        let plan = FaultPlan::new(drop_rate, seed)
            .with_duplication(dup_rate)
            .with_reordering(reorder_rate);
        let clean = run_program(nprocs, protocol, words, &epochs, None, RecoveryPolicy::Abort);
        let faulty = run_program(
            nprocs, protocol, words, &epochs, Some(plan.clone()), RecoveryPolicy::Abort,
        );
        prop_assert_eq!(
            &clean, &faulty,
            "chaotic wire changed the race reports ({:?})", protocol
        );
        let again = run_program(
            nprocs, protocol, words, &epochs, Some(plan), RecoveryPolicy::Abort,
        );
        prop_assert_eq!(&faulty, &again, "same (plan, seed) must reproduce");
    }

    /// A corrupting wire is invisible above the frame gate: every damaged
    /// frame is rejected by the checksum and repaired by retransmission,
    /// so race reports stay byte-identical to a clean wire — for both
    /// protocols, with checkpointing and recovery armed — and the same
    /// `(plan, seed)` reproduces the same reports on a rerun.
    #[test]
    fn race_reports_survive_wire_corruption(
        nprocs in 2usize..4,
        words in 1usize..6,
        epochs in proptest::collection::vec(
            proptest::collection::vec((0usize..4, 0usize..6, any::<bool>()), 0..8),
            2..4,
        ),
        corrupt_rate in 0.05f64..0.3,
        seed in any::<u64>(),
        multi_writer in any::<bool>(),
    ) {
        let protocol = if multi_writer { Protocol::MultiWriter } else { Protocol::SingleWriter };
        let epochs: Vec<Vec<Op>> = epochs
            .iter()
            .map(|ops| ops.iter().map(|&(p, w, is_w)| (p, w % words, is_w)).collect())
            .collect();
        let recover = RecoveryPolicy::Recover { max_attempts: 3 };
        let plan = FaultPlan::clean(seed).with_corruption(corrupt_rate);
        let clean = run_program(nprocs, protocol, words, &epochs, None, recover);
        let (corrupted, snap) = run_program_full(
            nprocs, protocol, words, &epochs, Some(plan.clone()), recover,
        );
        prop_assert_eq!(
            &clean, &corrupted,
            "corrupting wire changed the race reports ({:?})", protocol
        );
        let snap = snap.expect("faulty wire keeps reliability stats");
        // Whatever the plan injected, the frame gate caught: corruption
        // must never be delivered, only dropped and retransmitted.
        prop_assert!(
            snap.corrupt_injected == 0 || snap.corrupt_dropped > 0,
            "injected {} corruptions but dropped none", snap.corrupt_injected
        );
        prop_assert_eq!(snap.decode_errors, 0, "corruption leaked past the checksum");
        let again = run_program(nprocs, protocol, words, &epochs, Some(plan), recover);
        prop_assert_eq!(&corrupted, &again, "same (plan, seed) must reproduce");
    }

    /// A scripted node kill under [`RecoveryPolicy::Recover`] is survivable
    /// for *any* barrier-structured program: the cluster rolls back to the
    /// last complete epoch, restores the victim from its image, and the
    /// completed run's race reports are byte-identical to a fault-free run.
    #[test]
    fn scripted_kill_recovers_with_identical_races(
        nprocs in 2usize..4,
        words in 1usize..6,
        epochs in proptest::collection::vec(
            proptest::collection::vec((0usize..4, 0usize..6, any::<bool>()), 0..8),
            2..5,
        ),
        victim_raw in 0usize..4,
        kill_at in 20u64..120,
        seed in any::<u64>(),
        multi_writer in any::<bool>(),
    ) {
        let protocol = if multi_writer { Protocol::MultiWriter } else { Protocol::SingleWriter };
        let victim = (victim_raw % nprocs) as u16;
        let epochs: Vec<Vec<Op>> = epochs
            .iter()
            .map(|ops| ops.iter().map(|&(p, w, is_w)| (p, w % words, is_w)).collect())
            .collect();
        // Checkpointing on for both runs so the only difference is the kill.
        let recover = RecoveryPolicy::Recover { max_attempts: 3 };
        let wire = |seed: u64| {
            FaultPlan::clean(seed)
                .with_rto(Duration::from_millis(2), Duration::from_millis(16))
                .with_max_retransmits(8)
        };
        let clean = run_program(nprocs, protocol, words, &epochs, Some(wire(seed)), recover);
        let killed = run_program(
            nprocs,
            protocol,
            words,
            &epochs,
            Some(wire(seed).with_kill(ProcId(victim), kill_at)),
            recover,
        );
        // Short programs may finish before event `kill_at`, in which case
        // the kill never fires and the run is trivially identical — the
        // property holds either way, so assert only report identity.
        prop_assert_eq!(
            &clean, &killed,
            "{:?} victim {} killed at {}: recovered race reports must match",
            protocol, victim, kill_at
        );
    }

    /// A transient partition — any victim, any start, healing either fast
    /// enough for retransmission to bridge the outage invisibly or far
    /// beyond the attempt's traffic (forcing peer-death, quorum-fenced
    /// succession when the master is the victim, and rejoin from the cut)
    /// — never changes the race reports: byte-identical to the fault-free
    /// run across both protocols, synchronous and pipelined detection.
    #[test]
    fn transient_partition_keeps_reports_identical(
        nprocs in 2usize..4,
        words in 1usize..6,
        epochs in proptest::collection::vec(
            proptest::collection::vec((0usize..4, 0usize..6, any::<bool>()), 0..8),
            2..5,
        ),
        victim_raw in 0usize..4,
        cut_at in 10u64..120,
        heal_gap in prop_oneof![8u64..60, Just(100_000u64)],
        seed in any::<u64>(),
        // Protocol and detection mode packed to fit the strategy-tuple
        // arity, as in the slow-consumer property above.
        knobs in any::<u64>(),
    ) {
        let protocol = if knobs & 1 == 1 { Protocol::MultiWriter } else { Protocol::SingleWriter };
        let pipelined = knobs & 2 == 2;
        let victim = (victim_raw % nprocs) as u16;
        let epochs: Vec<Vec<Op>> = epochs
            .iter()
            .map(|ops| ops.iter().map(|&(p, w, is_w)| (p, w % words, is_w)).collect())
            .collect();
        let recover = RecoveryPolicy::Recover { max_attempts: 3 };
        let wire = |seed: u64| {
            FaultPlan::clean(seed)
                .with_rto(Duration::from_millis(2), Duration::from_millis(16))
                .with_max_retransmits(8)
        };
        let clean = run_detect_program(
            nprocs, protocol, pipelined, words, &epochs, Some(wire(seed)), recover,
        );
        let cut = run_detect_program(
            nprocs,
            protocol,
            pipelined,
            words,
            &epochs,
            Some(wire(seed).with_partition_healed(ProcId(victim), cut_at, cut_at + heal_gap)),
            recover,
        );
        // Short programs may finish before the window arms; bridged and
        // failed-over outages must all converge on the same bytes.
        prop_assert_eq!(
            &clean, &cut,
            "{:?} pipelined={} victim {} cut at {}+{}: partitioned race reports must match",
            protocol, pipelined, victim, cut_at, heal_gap
        );
    }

    /// Resource governance composes with recovery: a slow consumer behind a
    /// finite-capacity link *and* a scripted kill under
    /// [`RecoveryPolicy::Recover`] still completes with race reports
    /// byte-identical to the same wire without either fault, and the credit
    /// window keeps the sender queues bounded throughout rollback/replay.
    #[test]
    fn slow_consumer_with_recovery_keeps_reports_identical(
        nprocs in 2usize..4,
        words in 1usize..6,
        epochs in proptest::collection::vec(
            proptest::collection::vec((0usize..4, 0usize..6, any::<bool>()), 0..8),
            2..5,
        ),
        kill_at in 20u64..120,
        capacity in 1u32..5,
        seed in any::<u64>(),
        // Slow node, dwell onset, kill victim, and protocol, packed to fit
        // the strategy-tuple arity.
        knobs in any::<u64>(),
    ) {
        let protocol = if knobs & 1 == 1 { Protocol::MultiWriter } else { Protocol::SingleWriter };
        let slow = ((knobs >> 1) as usize % nprocs) as u16;
        let slow_at = (knobs >> 8) % 60;
        let victim = ((knobs >> 16) as usize % nprocs) as u16;
        let epochs: Vec<Vec<Op>> = epochs
            .iter()
            .map(|ops| ops.iter().map(|&(p, w, is_w)| (p, w % words, is_w)).collect())
            .collect();
        let recover = RecoveryPolicy::Recover { max_attempts: 3 };
        let wire = |seed: u64| {
            FaultPlan::clean(seed)
                .with_rto(Duration::from_millis(2), Duration::from_millis(16))
                .with_max_retransmits(8)
        };
        let clean = run_program(nprocs, protocol, words, &epochs, Some(wire(seed)), recover);
        let faulted = wire(seed)
            .with_link_capacity(capacity)
            .with_slow_consumer(ProcId(slow), slow_at, Duration::from_millis(1))
            .with_kill(ProcId(victim), kill_at);
        let report = run_program_report(
            nprocs, protocol, words, &epochs, Some(faulted), recover,
        );
        prop_assert_eq!(
            &clean, &rendered(&report),
            "{:?} slow P{} cap {} victim {}: race reports must match",
            protocol, slow, capacity, victim
        );
        prop_assert!(
            report.resources.queue_high_water <= u64::from(capacity),
            "queue high water {} over capacity {}",
            report.resources.queue_high_water, capacity
        );
    }
}

/// The acceptance bar stated plainly: a corruption-injection run actually
/// exercises the integrity path (`corrupt_dropped > 0`) and still produces
/// race reports byte-identical to the clean run, under both protocols.
///
/// CI's corruption axis sets `CHAOS_CORRUPT_RATE` (default 0.25 here); at
/// an explicit `0`, the faulty wire still frames and checks every
/// datagram but must count nothing.
#[test]
fn corruption_run_drops_frames_and_keeps_reports_identical() {
    let rate: f64 = std::env::var("CHAOS_CORRUPT_RATE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    // Two epochs of racy unsynchronized accesses: proc 0 writes word 0,
    // proc 1 reads it — a guaranteed report to compare.
    let epochs: Vec<Vec<Op>> = vec![
        vec![(0, 0, true), (1, 0, false), (1, 1, true)],
        vec![(0, 1, false), (1, 1, true)],
    ];
    for protocol in [Protocol::SingleWriter, Protocol::MultiWriter] {
        let clean = run_program(2, protocol, 2, &epochs, None, RecoveryPolicy::Abort);
        let plan = FaultPlan::clean(0xC0DE).with_corruption(rate);
        let (corrupted, snap) =
            run_program_full(2, protocol, 2, &epochs, Some(plan), RecoveryPolicy::Abort);
        assert_eq!(clean, corrupted, "{protocol:?} at rate {rate}");
        let snap = snap.expect("faulty wire keeps reliability stats");
        if rate > 0.0 {
            assert!(snap.corrupt_injected > 0, "{protocol:?}: {snap:?}");
            assert!(snap.corrupt_dropped > 0, "{protocol:?}: {snap:?}");
        } else {
            assert_eq!(snap.corrupt_injected, 0, "{protocol:?}: {snap:?}");
            assert_eq!(snap.corrupt_dropped, 0, "{protocol:?}: {snap:?}");
        }
        assert_eq!(snap.decode_errors, 0, "{protocol:?}: {snap:?}");
    }
}

/// The same `(plan, seed)` yields the same corruption stream: scripted
/// `CorruptAt` events strike the same frame ordinals, so the injected
/// count is exactly reproducible run-over-run (rate-based counts include
/// timing-dependent retransmissions; scripted ordinals do not).
#[test]
fn scripted_corruption_is_exactly_reproducible() {
    use cvm_dsm::CorruptKind;
    let epochs: Vec<Vec<Op>> = vec![vec![(0, 0, true), (1, 0, false)]];
    let plan = || {
        FaultPlan::clean(7)
            .with_rto(Duration::from_millis(100), Duration::from_millis(400))
            .with_corrupt_at(ProcId(0), 1, CorruptKind::BitFlip)
            .with_corrupt_at(ProcId(1), 2, CorruptKind::Truncate)
            .with_corrupt_at(ProcId(1), 3, CorruptKind::GarbageTail)
    };
    let (a, snap_a) = run_program_full(
        2,
        Protocol::SingleWriter,
        1,
        &epochs,
        Some(plan()),
        RecoveryPolicy::Abort,
    );
    let (b, snap_b) = run_program_full(
        2,
        Protocol::SingleWriter,
        1,
        &epochs,
        Some(plan()),
        RecoveryPolicy::Abort,
    );
    assert_eq!(a, b);
    let (snap_a, snap_b) = (snap_a.unwrap(), snap_b.unwrap());
    assert_eq!(snap_a.corrupt_injected, 3, "{snap_a:?}");
    assert_eq!(snap_a.corrupt_injected, snap_b.corrupt_injected);
    assert_eq!(snap_a.corrupt_dropped, snap_b.corrupt_dropped);
}
