//! Scripted faults against full cluster runs: kills and partitions must
//! surface as structured [`DsmError`]s within the configured deadline —
//! never a hang, never a panic — and the same `(FaultPlan, seed)` must
//! reproduce the same outcome.

use std::time::{Duration, Instant};

use cvm_dsm::{Cluster, DsmConfig, DsmError, FaultPlan, Protocol, RunError};
use cvm_vclock::ProcId;

/// A cluster whose node 1 is scripted to die mid-run.  The reliability
/// layer's RTO/backoff is tightened so peers declare the corpse dead in
/// tens of milliseconds rather than the deployment defaults.
fn killed_node_config(protocol: Protocol, seed: u64) -> DsmConfig {
    let mut cfg = DsmConfig::new(3);
    cfg.protocol = protocol;
    cfg.op_deadline = Duration::from_secs(2);
    cfg.net_loss = Some(
        FaultPlan::clean(seed)
            .with_rto(Duration::from_millis(2), Duration::from_millis(16))
            .with_max_retransmits(8)
            .with_kill(ProcId(1), 40),
    );
    cfg
}

/// Runs a barrier loop that would take many hundreds of engine events to
/// complete, guaranteeing the scripted fault fires mid-protocol.
fn run_barrier_loop(cfg: DsmConfig) -> (Result<(), RunError>, Duration) {
    let started = Instant::now();
    let result = Cluster::run(
        cfg,
        |alloc| alloc.alloc("words", 3 * 8).unwrap(),
        |h, &base| {
            let me = h.proc();
            for i in 0..200u64 {
                h.write(base.word(me as u64), i);
                h.barrier();
            }
        },
    )
    .map(|_| ());
    (result, started.elapsed())
}

fn assert_kill_diagnosed(protocol: Protocol) {
    let (result, elapsed) = run_barrier_loop(killed_node_config(protocol, 42));
    let err = result.expect_err("a killed node must fail the run");
    assert_eq!(
        err.error,
        DsmError::NodeFailed { proc: 1 },
        "{protocol:?}: the scripted victim must be named"
    );
    // No hang: the op deadline is 2s (barrier workers wait 1.5x so the
    // master classifies first); peer-death detection fires in tens of
    // milliseconds, well before any deadline.  Allow generous slack for
    // the drain on loaded machines.
    assert!(
        elapsed < Duration::from_secs(8),
        "{protocol:?}: diagnosis took {elapsed:?}"
    );
    // Every node drains and contributes partial statistics.
    assert_eq!(err.partial.nodes.len(), 3);
    // The victim's own endpoint reports the kill (Disconnected) milliseconds
    // before peers exhaust retransmits, so `peers_declared_dead` may still be
    // zero at drain time — the structured error above is the contract.
    assert!(
        err.partial.reliability.is_some(),
        "faulty runs carry reliability stats"
    );
}

#[test]
fn killed_node_is_diagnosed_under_single_writer() {
    assert_kill_diagnosed(Protocol::SingleWriter);
}

#[test]
fn killed_node_is_diagnosed_under_multi_writer() {
    assert_kill_diagnosed(Protocol::MultiWriter);
}

#[test]
fn same_fault_plan_reproduces_the_same_diagnosis() {
    for protocol in [Protocol::SingleWriter, Protocol::MultiWriter] {
        let (first, _) = run_barrier_loop(killed_node_config(protocol, 7));
        let (second, _) = run_barrier_loop(killed_node_config(protocol, 7));
        assert_eq!(
            first.expect_err("kill").error,
            second.expect_err("kill").error,
            "{protocol:?}: the scripted fault must reproduce"
        );
    }
}

fn assert_lock_manager_death_diagnosed(protocol: Protocol) {
    // Lock 1's static manager is node 1 (`lock % nprocs`).  All three
    // processes contend on it in a tight loop, so when node 1 dies there
    // are requests queued at (or in flight to) the dead manager.  The
    // survivors' blocked acquires must convert into the structured
    // failure, not a hang.
    let mut cfg = DsmConfig::new(3);
    cfg.protocol = protocol;
    cfg.op_deadline = Duration::from_secs(2);
    cfg.net_loss = Some(
        FaultPlan::clean(31)
            .with_rto(Duration::from_millis(2), Duration::from_millis(16))
            .with_max_retransmits(8)
            .with_kill(ProcId(1), 50),
    );
    let started = Instant::now();
    let result = Cluster::run(
        cfg,
        |alloc| alloc.alloc("counter", 8).unwrap(),
        |h, &ctr| {
            for _ in 0..200 {
                h.lock(1);
                let v = h.read(ctr);
                h.write(ctr, v + 1);
                h.unlock(1);
            }
            h.barrier();
        },
    )
    .map(|_| ());
    let elapsed = started.elapsed();
    let err = result.expect_err("a dead lock manager must fail the run");
    assert_eq!(
        err.error,
        DsmError::NodeFailed { proc: 1 },
        "{protocol:?}: the dead manager must be named"
    );
    assert!(
        elapsed < Duration::from_secs(8),
        "{protocol:?}: diagnosis took {elapsed:?}"
    );
    assert_eq!(err.partial.nodes.len(), 3, "every node drains");
}

#[test]
fn lock_manager_death_is_diagnosed_under_single_writer() {
    assert_lock_manager_death_diagnosed(Protocol::SingleWriter);
}

#[test]
fn lock_manager_death_is_diagnosed_under_multi_writer() {
    assert_lock_manager_death_diagnosed(Protocol::MultiWriter);
}

#[test]
fn partitioned_node_fails_the_run_within_the_deadline() {
    // Node 1 partitions after 20 datagrams: its traffic is eaten in both
    // directions.  Retransmission exhaustion is symmetric — node 1
    // declares its peers dead at the same time they declare *it* dead —
    // so the first diagnosis may name either side; what matters is a
    // prompt structured failure, not a hang.
    let mut cfg = DsmConfig::new(3);
    cfg.op_deadline = Duration::from_secs(2);
    cfg.net_loss = Some(
        FaultPlan::clean(13)
            .with_rto(Duration::from_millis(2), Duration::from_millis(16))
            .with_max_retransmits(8)
            .with_partition(ProcId(1), 20),
    );
    let (result, elapsed) = run_barrier_loop(cfg);
    let err = result.expect_err("a partitioned node must fail the run");
    assert!(
        matches!(err.error, DsmError::NodeFailed { .. }),
        "expected a node-failure diagnosis, got {:?}",
        err.error
    );
    assert!(
        elapsed < Duration::from_secs(8),
        "diagnosis took {elapsed:?}"
    );
    let reliability = err.partial.reliability.as_ref().unwrap();
    assert!(
        reliability.partition_drops > 0,
        "the partition must actually eat datagrams"
    );
}

#[test]
fn lossy_wire_does_not_fail_healthy_runs() {
    // Plain Bernoulli loss (no scripted faults) is repaired end-to-end:
    // the run completes, reports no failure, and the race detector sees
    // the same race-free program it would on perfect channels.
    let mut cfg = DsmConfig::new(3);
    cfg.net_loss = Some(FaultPlan::new(0.2, 99));
    let report = Cluster::run(
        cfg,
        |alloc| alloc.alloc("words", 3 * 8).unwrap(),
        |h, &base| {
            let me = h.proc();
            for i in 0..20u64 {
                h.write(base.word(me as u64), i);
                h.barrier();
            }
        },
    )
    .expect("loss alone must not fail a run");
    assert!(report.races.is_empty());
    let reliability = report.reliability.expect("lossy runs carry stats");
    assert!(reliability.wire_drops > 0, "the wire must actually drop");
    assert!(reliability.retransmissions > 0, "drops must be repaired");
}

#[test]
fn cancel_token_drains_a_running_cluster() {
    // A long barrier loop cancelled mid-run must return the structured
    // `Cancelled` error with a partial report, well inside the op
    // deadline — the cancellation path is the fault path minus the fault.
    let token = cvm_dsm::CancelToken::new();
    let mut cfg = DsmConfig::new(3);
    cfg.op_deadline = Duration::from_secs(30);
    cfg.cancel = Some(token.clone());
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
        })
    };
    let started = Instant::now();
    let err = Cluster::run(
        cfg,
        |alloc| alloc.alloc("words", 3 * 8).unwrap(),
        |h, &base| {
            let me = h.proc();
            for i in 0..100_000u64 {
                h.write(base.word(me as u64), i);
                h.barrier();
            }
        },
    )
    .expect_err("a cancelled run must not complete");
    canceller.join().unwrap();
    assert_eq!(err.error, DsmError::Cancelled);
    assert!(!err.is_transient(), "cancellation must not be retried");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "cancellation must drain promptly, took {:?}",
        started.elapsed()
    );
    // The drain still collected per-node statistics.
    assert_eq!(err.partial.nodes.len(), 3);
}

#[test]
fn pre_cancelled_token_stops_the_run_at_first_poll() {
    let token = cvm_dsm::CancelToken::new();
    token.cancel();
    let mut cfg = DsmConfig::new(2);
    cfg.cancel = Some(token);
    let err = Cluster::run(
        cfg,
        |alloc| alloc.alloc("w", 16).unwrap(),
        |h, &w| {
            let me = h.proc();
            for i in 0..100_000u64 {
                h.write(w.word(me as u64), i);
                h.barrier();
            }
        },
    )
    .expect_err("a pre-cancelled run must not complete");
    assert_eq!(err.error, DsmError::Cancelled);
}
