//! Randomized coherence tests: the DSM must deliver the memory model it
//! promises for properly synchronized programs, at every scale.

use cvm_dsm::{Cluster, DsmConfig, Protocol};
use proptest::prelude::*;

/// Exclusive-writer pattern: each proc owns a random set of words, writes
/// random values, crosses a barrier; everyone must read exactly what the
/// owner wrote (ordered by the barrier), under both protocols.
fn exclusive_writer_case(nprocs: usize, protocol: Protocol, owners: &[usize], values: &[u64]) {
    let report = Cluster::run(
        {
            let mut c = DsmConfig::new(nprocs);
            c.protocol = protocol;
            c
        },
        |alloc| alloc.alloc("words", (owners.len() * 8) as u64).unwrap(),
        |h, &base| {
            let me = h.proc();
            for (w, (&owner, &v)) in owners.iter().zip(values).enumerate() {
                if owner % nprocs == me {
                    h.write(base.word(w as u64), v);
                }
            }
            h.barrier();
            for (w, &v) in values.iter().enumerate() {
                assert_eq!(
                    h.read(base.word(w as u64)),
                    v,
                    "P{me} read stale word {w} under {protocol:?}"
                );
            }
            h.barrier();
        },
    )
    .expect("cluster run");
    // Exclusive writers + barrier ordering: race-free by construction.
    assert!(
        report.races.is_empty(),
        "{protocol:?}: {:?}",
        report.races.reports()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn exclusive_writers_are_coherent_and_race_free(
        nprocs in 1usize..5,
        owners in proptest::collection::vec(0usize..8, 1..40),
        seed in any::<u64>(),
    ) {
        let values: Vec<u64> = owners
            .iter()
            .enumerate()
            .map(|(i, _)| seed.wrapping_mul(i as u64 + 1).wrapping_add(1))
            .collect();
        exclusive_writer_case(nprocs, Protocol::SingleWriter, &owners, &values);
        exclusive_writer_case(nprocs, Protocol::MultiWriter, &owners, &values);
    }

    /// Lock-protected counters over random contention patterns always sum
    /// exactly (mutual exclusion + grant-carried consistency).
    #[test]
    fn random_lock_contention_preserves_counts(
        nprocs in 2usize..5,
        // Per-proc: sequence of (lock, increments) rounds.
        rounds in proptest::collection::vec(
            proptest::collection::vec((0u32..3, 1u64..4), 0..6),
            2..5,
        ),
    ) {
        let nprocs = nprocs.min(rounds.len());
        let rounds = &rounds[..nprocs];
        let mut expected = [0u64; 3];
        for proc_rounds in rounds {
            for &(lock, incs) in proc_rounds {
                expected[lock as usize] += incs;
            }
        }
        let report = Cluster::run(
            DsmConfig::new(nprocs),
            |alloc| alloc.alloc("counters", 3 * 8).unwrap(),
            |h, &base| {
                for &(lock, incs) in &rounds[h.proc()] {
                    h.lock(lock);
                    let addr = base.word(u64::from(lock));
                    let v = h.read(addr);
                    h.write(addr, v + incs);
                    h.unlock(lock);
                }
                h.barrier();
                for (i, &want) in expected.iter().enumerate() {
                    assert_eq!(h.read(base.word(i as u64)), want, "counter {i}");
                }
                h.barrier();
            },
        ).expect("cluster run");
        prop_assert!(report.races.is_empty(), "{:?}", report.races.reports());
    }
}

#[test]
fn lock_fast_path_is_message_free() {
    // A lock reacquired by its manager without contention never leaves the
    // node: all acquisitions are local after the first.
    let report = Cluster::run(
        DsmConfig::new(2),
        |alloc| alloc.alloc("x", 8).unwrap(),
        |h, &x| {
            if h.proc() == 0 {
                // Lock 0's manager is P0: every acquisition is the cached
                // token.
                for i in 0..50 {
                    h.lock(0);
                    h.write(x, i);
                    h.unlock(0);
                }
            }
            h.barrier();
        },
    )
    .expect("cluster run");
    let p0 = &report.nodes[0].stats;
    assert_eq!(p0.locks_local, 50);
    assert_eq!(p0.locks_remote, 0);
}

#[test]
fn lock_token_caching_after_remote_acquire() {
    // P1 acquires lock 0 (managed by P0) once remotely, then reuses the
    // cached token.
    let report = Cluster::run(
        DsmConfig::new(2),
        |alloc| alloc.alloc("x", 8).unwrap(),
        |h, &x| {
            if h.proc() == 1 {
                for i in 0..10 {
                    h.lock(0);
                    h.write(x, i);
                    h.unlock(0);
                }
            }
            h.barrier();
        },
    )
    .expect("cluster run");
    let p1 = &report.nodes[1].stats;
    assert_eq!(p1.locks_remote, 1, "only the first acquisition is remote");
    assert_eq!(p1.locks_local, 9);
}

#[test]
fn lock_chain_rotates_through_all_procs() {
    // Heavy contention on one lock: every proc gets the counter to the
    // right total, and the token moves at least once per proc.
    let nprocs = 4;
    let report = Cluster::run(
        DsmConfig::new(nprocs),
        |alloc| alloc.alloc("n", 8).unwrap(),
        |h, &n| {
            for _ in 0..10 {
                h.lock(2);
                let v = h.read(n);
                h.write(n, v + 1);
                h.unlock(2);
            }
            h.barrier();
            assert_eq!(h.read(n), 40);
        },
    )
    .expect("cluster run");
    for node in &report.nodes {
        assert!(
            node.stats.locks_remote >= 1,
            "P{} never acquired remotely",
            node.proc.0
        );
    }
}
