//! Resource governance under load: credit-based flow control, per-node
//! memory budgets, and bounded checkpoint retention.
//!
//! The contract: link capacity and memory budgets are *performance* knobs,
//! never *correctness* knobs.  For any capacity ≥ 1 and any budget above
//! the per-app minimum, race reports stay byte-identical to an
//! unconstrained run; exhausting the hard budget fails cleanly through the
//! first-error path with a drained partial report — never a panic, a
//! deadlock, or unbounded allocation.

use std::time::{Duration, Instant};

use cvm_dsm::{
    Cluster, DsmConfig, DsmError, FaultPlan, MemBudget, Protocol, RecoveryPolicy, RunError,
    RunReport,
};
use cvm_vclock::ProcId;
use proptest::prelude::*;

/// One access in one barrier epoch: `(proc, word, is_write)`.
type Op = (usize, usize, bool);

/// Runs a barrier-structured litmus program and returns the full report.
fn run_program(
    nprocs: usize,
    protocol: Protocol,
    words: usize,
    epochs: &[Vec<Op>],
    plan: Option<FaultPlan>,
    tweak: impl Fn(&mut DsmConfig),
) -> Result<RunReport, RunError> {
    let mut cfg = DsmConfig::new(nprocs);
    cfg.protocol = protocol;
    cfg.net_loss = plan;
    cfg.op_deadline = Duration::from_secs(5);
    tweak(&mut cfg);
    Cluster::run(
        cfg,
        |alloc| alloc.alloc("words", (words * 8) as u64).unwrap(),
        |h, &base| {
            let me = h.proc();
            let mut ep = h.epochs();
            for (e, ops) in epochs.iter().enumerate() {
                ep.step(|| {
                    for &(p, w, is_write) in ops {
                        if p % nprocs != me {
                            continue;
                        }
                        let addr = base.word(w as u64);
                        if is_write {
                            h.write(addr, (e * 1000 + w) as u64);
                        } else {
                            let _ = h.read(addr);
                        }
                    }
                });
            }
        },
    )
}

/// Race reports rendered and sorted for schedule-independent comparison.
fn rendered(report: &RunReport) -> Vec<String> {
    let mut v: Vec<String> = report
        .races
        .reports()
        .iter()
        .map(|r| r.render(&report.segments))
        .collect();
    v.sort();
    v
}

/// A fixed racy two-epoch program: guarantees non-empty reports to compare.
fn racy_epochs() -> Vec<Vec<Op>> {
    vec![
        vec![(0, 0, true), (1, 0, false), (1, 1, true), (0, 2, true)],
        vec![(0, 1, false), (1, 1, true), (1, 2, false)],
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tentpole invariant: race reports are byte-identical across link
    /// capacities {1, 4, 64, unbounded-equivalent}, for both protocols,
    /// and the credit window bound holds (`queue_high_water` ≤ capacity).
    #[test]
    fn race_reports_identical_across_link_capacities(
        nprocs in 2usize..4,
        words in 1usize..5,
        epochs in proptest::collection::vec(
            proptest::collection::vec((0usize..4, 0usize..5, any::<bool>()), 0..8),
            1..4,
        ),
        seed in any::<u64>(),
        multi_writer in any::<bool>(),
    ) {
        let protocol = if multi_writer { Protocol::MultiWriter } else { Protocol::SingleWriter };
        let epochs: Vec<Vec<Op>> = epochs
            .iter()
            .map(|ops| ops.iter().map(|&(p, w, is_w)| (p, w % words, is_w)).collect())
            .collect();
        let clean = run_program(nprocs, protocol, words, &epochs, None, |_| {})
            .expect("clean run");
        let baseline = rendered(&clean);
        for capacity in [1u32, 4, 64, u32::MAX] {
            let plan = FaultPlan::clean(seed).with_link_capacity(capacity);
            let report = run_program(nprocs, protocol, words, &epochs, Some(plan), |_| {})
                .expect("capacity alone must not fail a run");
            prop_assert_eq!(
                &baseline, &rendered(&report),
                "capacity {} changed the race reports ({:?})", capacity, protocol
            );
            prop_assert!(
                report.resources.queue_high_water <= u64::from(capacity),
                "queue high water {} over capacity {}",
                report.resources.queue_high_water, capacity
            );
        }
    }

    /// Any budget above the per-app minimum degrades gracefully: the soft
    /// limit forces GC passes but the reports stay byte-identical.
    #[test]
    fn soft_budget_pressure_preserves_reports(
        // Below the footprint of a single retained interval record, so the
        // soft limit is crossed (and GC fires) at every interval close.
        soft in 1u64..48,
        seed in any::<u64>(),
        multi_writer in any::<bool>(),
    ) {
        let protocol = if multi_writer { Protocol::MultiWriter } else { Protocol::SingleWriter };
        let epochs = racy_epochs();
        let clean = run_program(2, protocol, 3, &epochs, None, |_| {}).expect("clean run");
        let plan = FaultPlan::clean(seed).with_link_capacity(1);
        let squeezed = run_program(2, protocol, 3, &epochs, Some(plan), |cfg| {
            cfg.budget = MemBudget { soft_bytes: soft, hard_bytes: u64::MAX };
        })
        .expect("soft pressure must not fail a run");
        prop_assert_eq!(&rendered(&clean), &rendered(&squeezed));
        // A byte-level soft limit this small is crossed at every close.
        prop_assert!(squeezed.resources.soft_gcs > 0, "{:?}", squeezed.resources);
    }
}

/// Hard-budget exhaustion surfaces [`DsmError::ResourceExhausted`] through
/// the first-error path with a drained partial report — no panic, no hang.
#[test]
fn hard_budget_exhaustion_fails_cleanly() {
    for protocol in [Protocol::SingleWriter, Protocol::MultiWriter] {
        let started = Instant::now();
        let err = run_program(2, protocol, 3, &racy_epochs(), None, |cfg| {
            cfg.budget = MemBudget::exact(16);
        })
        .expect_err("a 16-byte budget cannot hold an interval record");
        assert!(
            matches!(
                err.error,
                DsmError::ResourceExhausted { bytes, .. } if bytes > 16
            ),
            "{protocol:?}: expected ResourceExhausted, got {:?}",
            err.error
        );
        // Every node drained and contributed partial statistics.
        assert_eq!(err.partial.nodes.len(), 2);
        assert!(
            started.elapsed() < Duration::from_secs(8),
            "{protocol:?}: exhaustion diagnosis took {:?}",
            started.elapsed()
        );
        // The error renders with the budget vocabulary.
        let text = err.error.to_string();
        assert!(text.contains("memory budget"), "{text}");
    }
}

/// A slow consumer behind a capacity-1 link cannot exhaust sender memory:
/// the credit window closes (stalls counted), queues stay bounded, and the
/// run completes with reports identical to an unconstrained run.
#[test]
fn slow_consumer_is_flow_controlled_not_fatal() {
    let epochs = racy_epochs();
    for protocol in [Protocol::SingleWriter, Protocol::MultiWriter] {
        let clean = run_program(3, protocol, 3, &epochs, None, |_| {}).expect("clean run");
        let plan = FaultPlan::clean(11)
            .with_link_capacity(1)
            .with_slow_consumer(ProcId(1), 5, Duration::from_millis(1));
        let slowed = run_program(3, protocol, 3, &epochs, Some(plan), |_| {})
            .expect("a slow consumer must not fail a run");
        assert_eq!(
            rendered(&clean),
            rendered(&slowed),
            "{protocol:?}: slow consumer changed the race reports"
        );
        assert!(
            slowed.resources.queue_high_water <= 1,
            "{protocol:?}: queue high water {} over capacity 1",
            slowed.resources.queue_high_water
        );
    }
}

/// Bounded checkpoint retention composes with recovery: with only one
/// complete cut retained, a scripted kill still rolls back to the newest
/// retained cut and completes with identical reports, while older epochs
/// are evicted as the run advances.
#[test]
fn retention_bound_recovery_steers_to_newest_cut() {
    let epochs: Vec<Vec<Op>> = (0..6)
        .map(|e| vec![(e % 2, 0, true), ((e + 1) % 2, 0, false), (0, 1, true)])
        .collect();
    let wire = |seed: u64| {
        FaultPlan::clean(seed)
            .with_rto(Duration::from_millis(2), Duration::from_millis(16))
            .with_max_retransmits(8)
    };
    for protocol in [Protocol::SingleWriter, Protocol::MultiWriter] {
        let recover = |cfg: &mut DsmConfig| {
            cfg.recovery = RecoveryPolicy::Recover { max_attempts: 3 };
            cfg.ckpt_retain = 1;
        };
        let clean =
            run_program(2, protocol, 3, &epochs, Some(wire(3)), recover).expect("clean run");
        let killed = run_program(
            2,
            protocol,
            3,
            &epochs,
            Some(wire(3).with_kill(ProcId(1), 60)),
            recover,
        )
        .expect("recovery must absorb the kill with one retained cut");
        assert_eq!(
            rendered(&clean),
            rendered(&killed),
            "{protocol:?}: recovered race reports must match"
        );
        // Six epochs against a one-cut bound: eviction must have fired.
        assert!(
            killed.resources.cuts_evicted > 0,
            "{protocol:?}: no cuts evicted — {:?}",
            killed.resources
        );
        assert!(killed.resources.checkpoint_bytes_live > 0);
    }
}

/// A consumer whose dwell exceeds the operation deadline is diagnosed as a
/// structured [`DsmError::Timeout`] (by the overload watchdog or a blocked
/// operation's deadline, whichever classifies first), never a hang or a
/// panic.  Node 1 dwells one second per wire arrival — its own page-fetch
/// reply cannot be processed inside the 300 ms deadline — while node 0 is
/// held out of the barrier long enough that only a timeout diagnosis can
/// fire first.
#[test]
fn overloaded_consumer_times_out_cleanly() {
    let started = Instant::now();
    let mut cfg = DsmConfig::new(2);
    cfg.op_deadline = Duration::from_millis(300);
    cfg.net_loss = Some(
        FaultPlan::clean(17)
            .with_link_capacity(1)
            // Peer-death detection must not classify first.
            .with_max_retransmits(u32::MAX)
            .with_slow_consumer(ProcId(1), 0, Duration::from_secs(1)),
    );
    let err = Cluster::run(
        cfg,
        |alloc| alloc.alloc("word", 8).unwrap(),
        |h, &base| {
            let mut ep = h.epochs();
            ep.step(|| {
                if h.proc() == 1 {
                    // Page 0 is homed on node 0: this blocks on a remote
                    // fetch whose reply sits behind our own dwell.
                    let _ = h.read(base.word(0));
                } else {
                    h.write(base.word(0), 7);
                    // Stay out of the barrier past node 1's op deadline so
                    // the master's missing-arrival diagnosis cannot win.
                    std::thread::sleep(Duration::from_millis(150));
                }
            });
        },
    )
    .expect_err("an overloaded consumer must fail the run");
    assert!(
        matches!(err.error, DsmError::Timeout { .. }),
        "expected a timeout diagnosis, got {:?}",
        err.error
    );
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "diagnosis took {:?}",
        started.elapsed()
    );
    assert_eq!(err.partial.nodes.len(), 2, "both nodes drain");
}
