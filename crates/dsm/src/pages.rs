//! The shared-memory access path and page coherence protocols.
//!
//! Applications access shared memory one word at a time through
//! [`shared_access`]; the software page table stands in for `mprotect`:
//! an access without sufficient rights raises a *software fault* handled
//! exactly as CVM's SIGSEGV handler would — by fetching data or rights
//! from the page's home/owner and retrying.
//!
//! **Single-writer** (the paper's baseline): one writable copy per page;
//! a static home node tracks the current owner and forwards requests;
//! ownership transfers carry the page contents.  Requests that reach a
//! node whose own ownership transfer is still in flight are queued and
//! drained after the local access completes (FIFO links make the queue
//! hold at most reads followed by one ownership transfer).
//!
//! **Multi-writer** (home-based): any node upgrades a readable copy to
//! writable locally by twinning; diffs flush to the home at interval
//! close; faulting nodes fetch the master copy from the home, gated on
//! the write notices they have already seen (so a fetch never returns a
//! copy missing a diff the requester's clock requires).

use std::sync::Arc;

use crossbeam::channel::bounded;
use cvm_page::{Frame, GAddr, PageId, Protection};
use cvm_vclock::ProcId;
use parking_lot::{Mutex, MutexGuard};

use crate::config::Protocol;
use crate::error::DsmError;
use crate::fault::{self, ClusterCtl};
use crate::msg::Msg;
use crate::node::{NodeCore, QueuedPageReq};
use crate::simtime::OverheadCat;

/// One simulated node: protocol state, its sending half, and the shared
/// run-wide failure/teardown control block.
pub(crate) struct Node {
    pub state: Mutex<NodeCore>,
    pub sender: cvm_net::NetSender,
    pub ctl: Arc<ClusterCtl>,
}

/// Application-thread shared access.  Returns the value read (or the value
/// written, for writes).
pub(crate) fn shared_access(node: &Node, addr: GAddr, write: bool, value: u64, site: u32) -> u64 {
    let mut st = node.state.lock();
    let c = st.cfg.costs;
    st.clock.add(OverheadCat::Base, c.access);
    let (page, word) = st.cfg.geometry.locate(addr);
    st.track_access(addr, page, word, write, site);
    loop {
        let prot = st.pages.protection(page);
        match (write, prot) {
            (false, p) if p.readable() => {
                st.stats.shared_reads += 1;
                return st.pages.read_word(page, word);
            }
            (true, Protection::Write) => {
                if !st.cur.dirty.contains(&page) {
                    if st.cfg.protocol == Protocol::MultiWriter {
                        st.pages
                            .frame_mut(page)
                            .expect("writable page must be resident")
                            .ensure_twin();
                    }
                    st.cur.dirty.insert(page);
                }
                st.stats.shared_writes += 1;
                st.pages.write_word(page, word, value);
                if st.pending_local_write.remove(&page) {
                    let me = st.proc;
                    let r = drain_page_queue(&mut st, node, page);
                    fault::check(node, me, r);
                }
                return value;
            }
            (true, Protection::Read) if st.cfg.protocol == Protocol::MultiWriter => {
                // Local upgrade: twin and write; no messages (the whole
                // point of multiple writers).
                let frame = st.pages.frame_mut(page).expect("readable frame");
                frame.ensure_twin();
                frame.prot = Protection::Write;
                st.cur.dirty.insert(page);
                st.stats.shared_writes += 1;
                st.pages.write_word(page, word, value);
                return value;
            }
            _ => {
                st = fault(node, st, page, write);
            }
        }
    }
}

/// Takes a software page fault: resolves it locally when possible, or
/// sends the request and blocks until the reply installs the page.
/// Returns with the state lock re-acquired; the caller retries.
fn fault<'a>(
    node: &'a Node,
    mut st: MutexGuard<'a, NodeCore>,
    page: PageId,
    write: bool,
) -> MutexGuard<'a, NodeCore> {
    let c = st.cfg.costs;
    st.clock.add(OverheadCat::Base, c.fault);
    if write {
        st.stats.write_faults += 1;
    } else {
        st.stats.read_faults += 1;
    }
    let me = st.proc;
    let home = st.home_of(page);
    let deadline = st.cfg.op_deadline;

    match st.cfg.protocol {
        Protocol::SingleWriter => {
            if home == me {
                let owner = st.owner_of(page);
                if owner == me {
                    // First touch at the home: install a zeroed frame; the
                    // home starts out owning its pages.
                    debug_assert!(
                        st.pages.frame(page).is_none(),
                        "home owner with a resident frame cannot fault"
                    );
                    st.pages.install_zeroed(page, Protection::Write);
                    return st;
                }
                // Forward straight to the owner (we are the home).
                let (tx, rx) = bounded(1);
                st.page_wait.insert(page, tx);
                let r = if write {
                    st.home_owner.insert(page, me);
                    let msg = Msg::PageOwnFwd {
                        page,
                        requester: me,
                    };
                    st.send_msg(&node.sender, owner, &msg)
                } else {
                    let msg = Msg::PageReadFwd {
                        page,
                        requester: me,
                    };
                    st.send_msg(&node.sender, owner, &msg)
                };
                fault::check(node, me, r);
                drop(st);
                fault::await_signal(node, &rx, deadline, me, "page reply");
                node.state.lock()
            } else {
                let (tx, rx) = bounded(1);
                st.page_wait.insert(page, tx);
                let msg = if write {
                    Msg::PageOwnReq {
                        page,
                        requester: me,
                    }
                } else {
                    Msg::PageReadReq {
                        page,
                        requester: me,
                    }
                };
                let r = st.send_msg(&node.sender, home, &msg);
                fault::check(node, me, r);
                drop(st);
                fault::await_signal(node, &rx, deadline, me, "page reply");
                node.state.lock()
            }
        }
        Protocol::MultiWriter => {
            let needed: Vec<(ProcId, u32)> = st.mw_seen.get(&page).cloned().unwrap_or_default();
            if home == me {
                let satisfied = {
                    let h = st.mw_home.entry(page).or_default();
                    needed
                        .iter()
                        .all(|(p, idx)| h.applied.get(p).copied().unwrap_or(0) >= *idx)
                };
                if satisfied {
                    if st.pages.frame(page).is_none() {
                        st.pages.install_zeroed(page, Protection::Read);
                    } else {
                        st.pages.protect(page, Protection::Read);
                    }
                    return st;
                }
                // Wait for the missing diffs to arrive at ourselves.
                let (tx, rx) = bounded(1);
                st.mw_home
                    .get_mut(&page)
                    .expect("entry created above")
                    .local_waiter = Some((tx, needed));
                drop(st);
                fault::await_signal(node, &rx, deadline, me, "diff wait");
                node.state.lock()
            } else {
                let (tx, rx) = bounded(1);
                st.page_wait.insert(page, tx);
                let msg = Msg::PageFetchReq {
                    page,
                    requester: me,
                    needed,
                };
                let r = st.send_msg(&node.sender, home, &msg);
                fault::check(node, me, r);
                drop(st);
                fault::await_signal(node, &rx, deadline, me, "page fetch");
                node.state.lock()
            }
        }
    }
}

/// Services remote requests deferred while our own ownership transfer was
/// in flight (called after the local access completes).
pub(crate) fn drain_page_queue(
    st: &mut NodeCore,
    node: &Node,
    page: PageId,
) -> Result<(), DsmError> {
    let Some(queue) = st.page_queue.remove(&page) else {
        return Ok(());
    };
    for req in queue {
        match req {
            QueuedPageReq::Read(requester) => reply_read(st, node, page, requester)?,
            QueuedPageReq::Own(requester) => transfer_ownership(st, node, page, requester)?,
        }
    }
    Ok(())
}

fn page_data(st: &mut NodeCore, page: PageId) -> Vec<u64> {
    let c = st.cfg.costs;
    let data = st
        .pages
        .frame(page)
        .expect("serving a page we do not hold")
        .data
        .to_vec();
    st.clock
        .add(OverheadCat::Base, data.len() as u64 * c.copy_per_word);
    st.stats.pages_sent += 1;
    data
}

fn reply_read(
    st: &mut NodeCore,
    node: &Node,
    page: PageId,
    requester: ProcId,
) -> Result<(), DsmError> {
    let data = page_data(st, page);
    st.send_msg(&node.sender, requester, &Msg::PageReadReply { page, data })
}

fn transfer_ownership(
    st: &mut NodeCore,
    node: &Node,
    page: PageId,
    requester: ProcId,
) -> Result<(), DsmError> {
    debug_assert!(
        st.pages.protection(page).writable(),
        "transfer by non-owner"
    );
    let data = page_data(st, page);
    st.pages.protect(page, Protection::Read);
    st.send_msg(&node.sender, requester, &Msg::PageOwnReply { page, data })
}

/// Home node: a read-copy request (single-writer).
pub(crate) fn on_page_read_req(
    st: &mut NodeCore,
    node: &Node,
    page: PageId,
    requester: ProcId,
) -> Result<(), DsmError> {
    debug_assert_eq!(st.home_of(page), st.proc);
    let owner = st.owner_of(page);
    if owner == st.proc {
        // First genuine touch installs the zeroed master copy; if our own
        // ownership reclaim is in flight the fwd handler defers instead.
        if st.pages.frame(page).is_none() && !st.page_wait.contains_key(&page) {
            st.pages.install_zeroed(page, Protection::Write);
        }
        on_page_read_fwd(st, node, page, requester)
    } else {
        let msg = Msg::PageReadFwd { page, requester };
        st.send_msg(&node.sender, owner, &msg)
    }
}

/// Home node: an ownership request (single-writer).
pub(crate) fn on_page_own_req(
    st: &mut NodeCore,
    node: &Node,
    page: PageId,
    requester: ProcId,
) -> Result<(), DsmError> {
    debug_assert_eq!(st.home_of(page), st.proc);
    let owner = st.owner_of(page);
    st.home_owner.insert(page, requester);
    if owner == st.proc {
        if st.pages.frame(page).is_none() && !st.page_wait.contains_key(&page) {
            st.pages.install_zeroed(page, Protection::Write);
        }
        on_page_own_fwd(st, node, page, requester)
    } else {
        let msg = Msg::PageOwnFwd { page, requester };
        st.send_msg(&node.sender, owner, &msg)
    }
}

/// Believed owner: a forwarded read-copy request.
pub(crate) fn on_page_read_fwd(
    st: &mut NodeCore,
    node: &Node,
    page: PageId,
    requester: ProcId,
) -> Result<(), DsmError> {
    if st.page_wait.contains_key(&page)
        || st.pending_local_write.contains(&page)
        || !st.pages.protection(page).writable()
    {
        // Our own ownership transfer is still in flight: defer.
        st.page_queue
            .entry(page)
            .or_default()
            .push_back(QueuedPageReq::Read(requester));
        Ok(())
    } else {
        reply_read(st, node, page, requester)
    }
}

/// Believed owner: a forwarded ownership request.
pub(crate) fn on_page_own_fwd(
    st: &mut NodeCore,
    node: &Node,
    page: PageId,
    requester: ProcId,
) -> Result<(), DsmError> {
    if st.page_wait.contains_key(&page)
        || st.pending_local_write.contains(&page)
        || !st.pages.protection(page).writable()
    {
        st.page_queue
            .entry(page)
            .or_default()
            .push_back(QueuedPageReq::Own(requester));
        Ok(())
    } else {
        transfer_ownership(st, node, page, requester)
    }
}

/// Faulting node: page contents arrive (read copy or ownership).
pub(crate) fn on_page_reply(
    st: &mut NodeCore,
    page: PageId,
    data: Vec<u64>,
    own: bool,
) -> Result<(), DsmError> {
    let prot = if own {
        Protection::Write
    } else {
        Protection::Read
    };
    if own {
        st.pending_local_write.insert(page);
    }
    st.pages.install(page, Frame::from_data(data, prot));
    let Some(tx) = st.page_wait.remove(&page) else {
        return Err(DsmError::Protocol {
            context: "page reply without a waiting fault",
        });
    };
    let _ = tx.send(());
    Ok(())
}

/// Home node: a multi-writer fetch, gated on required diffs.
pub(crate) fn on_page_fetch_req(
    st: &mut NodeCore,
    node: &Node,
    page: PageId,
    requester: ProcId,
    needed: Vec<(ProcId, u32)>,
) -> Result<(), DsmError> {
    debug_assert_eq!(st.home_of(page), st.proc);
    let satisfied = {
        let h = st.mw_home.entry(page).or_default();
        needed
            .iter()
            .all(|(p, idx)| h.applied.get(p).copied().unwrap_or(0) >= *idx)
    };
    if satisfied {
        st.reply_mw_fetch(&node.sender, page, requester)
    } else {
        st.mw_home
            .get_mut(&page)
            .expect("entry created above")
            .waiting
            .push((requester, needed));
        Ok(())
    }
}

/// Home node: diffs arriving from a remote writer.
pub(crate) fn on_diff_flush(
    st: &mut NodeCore,
    node: &Node,
    writer: ProcId,
    interval: u32,
    diffs: Vec<cvm_page::Diff>,
) -> Result<(), DsmError> {
    let c = st.cfg.costs;
    for diff in diffs {
        let page = diff.page;
        debug_assert_eq!(st.home_of(page), st.proc);
        if st.pages.frame(page).is_none() {
            // Master copies survive invalidation (data retained), but the
            // very first touch may come from a remote writer.
            st.pages.install_zeroed(page, Protection::Invalid);
        }
        st.clock
            .add(OverheadCat::Base, diff.len() as u64 * c.diff_per_word);
        let frame = st.pages.frame_mut(page).expect("just ensured");
        diff.apply(&mut frame.data);
        let h = st.mw_home.entry(page).or_default();
        let e = h.applied.entry(writer).or_insert(0);
        *e = (*e).max(interval);
    }
    st.service_mw_waiters(&node.sender)?;
    // A barrier checkpoint deferred on these very watermarks may now be
    // able to complete (no-op when none is pending).
    crate::checkpoint::maybe_complete(st, node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DsmConfig;
    use cvm_net::{NetConfig, Network};
    use cvm_vclock::ProcId;

    fn two_nodes() -> (Node, Node, Vec<cvm_net::Endpoint>) {
        let cfg = DsmConfig::new(2);
        let (eps, _) = Network::new(2, NetConfig::default());
        let n0 = Node {
            state: Mutex::new(NodeCore::new(cfg.clone(), ProcId(0))),
            sender: eps[0].sender(),
            ctl: Arc::new(ClusterCtl::new()),
        };
        let n1 = Node {
            state: Mutex::new(NodeCore::new(cfg, ProcId(1))),
            sender: eps[1].sender(),
            ctl: Arc::new(ClusterCtl::new()),
        };
        (n0, n1, eps)
    }

    #[test]
    fn home_first_touch_installs_owned_zeroed_page() {
        let (n0, _n1, _eps) = two_nodes();
        // Page 0 is homed at P0; a local write fault self-resolves.
        let g = n0.state.lock().cfg.geometry;
        let addr = g.addr_of(PageId(0), 3);
        let v = shared_access(&n0, addr, true, 99, 0);
        assert_eq!(v, 99);
        let st = n0.state.lock();
        assert_eq!(st.pages.protection(PageId(0)), Protection::Write);
        assert_eq!(st.pages.read_word(PageId(0), 3), 99);
        assert!(st.cur.dirty.contains(&PageId(0)));
        assert_eq!(st.stats.write_faults, 1);
        assert_eq!(st.stats.shared_writes, 1);
    }

    #[test]
    fn read_after_write_hits_locally() {
        let (n0, _n1, _eps) = two_nodes();
        let g = n0.state.lock().cfg.geometry;
        let addr = g.addr_of(PageId(0), 0);
        shared_access(&n0, addr, true, 7, 0);
        let v = shared_access(&n0, addr, false, 0, 0);
        assert_eq!(v, 7);
        // Second access takes no fault.
        assert_eq!(n0.state.lock().stats.read_faults, 0);
    }

    #[test]
    fn remote_request_queues_while_ownership_in_flight() {
        let (n0, _n1, _eps) = two_nodes();
        let mut st = n0.state.lock();
        // Simulate an in-flight local fault on page 0.
        let (tx, _rx) = bounded(1);
        st.page_wait.insert(PageId(0), tx);
        on_page_read_fwd(&mut st, &n0, PageId(0), ProcId(1)).unwrap();
        assert_eq!(st.page_queue[&PageId(0)].len(), 1);
        on_page_own_fwd(&mut st, &n0, PageId(0), ProcId(1)).unwrap();
        assert_eq!(st.page_queue[&PageId(0)].len(), 2);
    }
}

#[cfg(test)]
mod mw_tests {
    use super::*;
    use crate::config::{DsmConfig, Protocol};
    use cvm_net::{NetConfig, Network};
    use cvm_vclock::ProcId;

    fn mw_node(proc: u16) -> (Node, Vec<cvm_net::Endpoint>) {
        let mut cfg = DsmConfig::new(2);
        cfg.protocol = Protocol::MultiWriter;
        let (eps, _) = Network::new(2, NetConfig::default());
        let node = Node {
            state: Mutex::new(NodeCore::new(cfg, ProcId(proc))),
            sender: eps[proc as usize].sender(),
            ctl: Arc::new(ClusterCtl::new()),
        };
        (node, eps)
    }

    #[test]
    fn fetch_waits_for_required_diffs() {
        // Home = P0 for page 0.  A fetch needing P1's interval 3 must not
        // be answered until that diff arrives.
        let (home, eps) = mw_node(0);
        {
            let mut st = home.state.lock();
            on_page_fetch_req(&mut st, &home, PageId(0), ProcId(1), vec![(ProcId(1), 3)]).unwrap();
            assert_eq!(
                st.mw_home[&PageId(0)].waiting.len(),
                1,
                "fetch must queue until the diff arrives"
            );
            // Diff for interval 2 is not enough.
            on_diff_flush(
                &mut st,
                &home,
                ProcId(1),
                2,
                vec![cvm_page::Diff {
                    page: PageId(0),
                    entries: vec![(0, 7)],
                }],
            )
            .unwrap();
            assert_eq!(st.mw_home[&PageId(0)].waiting.len(), 1);
            // Interval 3 satisfies the gate; the reply goes out.
            on_diff_flush(
                &mut st,
                &home,
                ProcId(1),
                3,
                vec![cvm_page::Diff {
                    page: PageId(0),
                    entries: vec![(1, 9)],
                }],
            )
            .unwrap();
            assert!(st.mw_home[&PageId(0)].waiting.is_empty());
            assert_eq!(st.stats.pages_sent, 1);
        }
        // The reply carries the master copy with both diffs applied.
        use cvm_net::wire::Wire as _;
        let pkt = eps[1].try_recv().expect("fetch reply sent");
        let decoded = crate::msg::Msg::from_bytes(&pkt.payload).unwrap();
        match decoded {
            crate::msg::Msg::PageFetchReply { page, data } => {
                assert_eq!(page, PageId(0));
                assert_eq!(data[0], 7);
                assert_eq!(data[1], 9);
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }

    #[test]
    fn fetch_with_no_requirements_answers_immediately() {
        let (home, eps) = mw_node(0);
        {
            let mut st = home.state.lock();
            on_page_fetch_req(&mut st, &home, PageId(0), ProcId(1), vec![]).unwrap();
            assert!(st
                .mw_home
                .get(&PageId(0))
                .is_none_or(|h| h.waiting.is_empty()));
        }
        assert!(eps[1].try_recv().is_ok(), "immediate reply expected");
    }
}
