//! Deterministic virtual time.
//!
//! The paper reports wall-clock slowdowns on 250 MHz Alphas over ATM; those
//! absolute numbers are functions of 1996 hardware.  What *is* reproducible
//! is the structure of the overhead: which mechanism costs what, relative
//! to the uninstrumented run.  Every node therefore carries a virtual cycle
//! clock advanced by an explicit cost model:
//!
//! * local costs (accesses, instrumentation calls, fault handling, interval
//!   bookkeeping, comparison work) add cycles directly, attributed to one
//!   of the paper's Figure 3 overhead categories;
//! * messages carry their sender's virtual timestamp; a receiver processing
//!   a message advances to `max(own, sent_at + wire latency + bytes ×
//!   per-byte)` — waiting time therefore *emerges* from the protocol rather
//!   than being modelled directly, including the serialization of interval
//!   and bitmap comparison at the barrier master that drives Figure 4's
//!   scaling behaviour.
//!
//! Per-category cost totals are exactly reproducible for deterministic
//! applications.  End-to-end virtual *times* are reproducible when message
//! handling happens at quiescent points (e.g. single-writer barrier apps);
//! protocols that service asynchronous requests mid-computation (e.g.
//! multi-writer home fetches) pick up a few percent of jitter, because the
//! single per-node clock serializes service handling with whatever
//! application progress the wall-clock interleaving happened to charge
//! first — the same perturbation a real single-CPU node experiences.
//! Lock-racing applications additionally vary with the acquisition order,
//! mirroring the nondeterminism of the original testbed.

/// Simulated CPU frequency: 250 MHz, the paper's Alpha workstations.
pub const CLOCK_HZ: u64 = 250_000_000;

/// Overhead attribution categories (the bars of the paper's Figure 3),
/// plus `Base` for work the uninstrumented system also performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum OverheadCat {
    /// Work present in the uninstrumented baseline.
    Base = 0,
    /// "CVM Mods": detection data structures + read-notice bandwidth.
    CvmMods = 1,
    /// "Proc Call": the inserted procedure-call overhead (ATOM cannot
    /// inline instrumentation).
    ProcCall = 2,
    /// "Access Check": deciding shared vs private and setting the bitmap
    /// bit inside the analysis routine.
    AccessCheck = 3,
    /// "Intervals": the concurrent-interval comparison algorithm.
    Intervals = 4,
    /// "Bitmaps": the extra barrier round and bitmap comparisons.
    Bitmaps = 5,
}

/// Number of overhead categories.
pub const NCATS: usize = 6;

impl OverheadCat {
    /// All categories in display order.
    pub const ALL: [OverheadCat; NCATS] = [
        OverheadCat::Base,
        OverheadCat::CvmMods,
        OverheadCat::ProcCall,
        OverheadCat::AccessCheck,
        OverheadCat::Intervals,
        OverheadCat::Bitmaps,
    ];

    /// Human-readable label matching the paper's figure legend.
    pub fn label(self) -> &'static str {
        match self {
            OverheadCat::Base => "Base",
            OverheadCat::CvmMods => "CVM Mods",
            OverheadCat::ProcCall => "Proc Call",
            OverheadCat::AccessCheck => "Access Check",
            OverheadCat::Intervals => "Intervals",
            OverheadCat::Bitmaps => "Bitmaps",
        }
    }
}

/// Cycle costs of primitive operations.
///
/// Values are calibrated to 250 MHz Alpha / 155 Mbit ATM magnitudes: a
/// procedure call with spilled registers costs on the order of 10² cycles,
/// small-message latency is tens of microseconds, and wire bandwidth is
/// roughly 13 cycles per byte at this clock.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// One un-instrumented memory access (cache-average).
    pub access: u64,
    /// Procedure-call overhead of an instrumentation call.
    pub proc_call: u64,
    /// Shared-segment check + bitmap-bit set inside the analysis routine.
    pub access_check: u64,
    /// Software fault handling (signal delivery + protocol entry).
    pub fault: u64,
    /// One-way small-message latency (cycles).
    pub msg_latency: u64,
    /// Per-byte wire cost (cycles/byte).
    pub per_byte: u64,
    /// Per-byte sender-side packetization cost (cycles/byte).
    pub send_per_byte: u64,
    /// One version-vector (interval) comparison.
    pub vv_compare: u64,
    /// Bitmap comparison, per 64-word block.
    pub bitmap_block_cmp: u64,
    /// Creating/logging an interval structure (base CVM).
    pub interval_setup: u64,
    /// Extra per-interval detection bookkeeping (read notices, bitmaps).
    pub interval_detect_extra: u64,
    /// Handling one lock request/grant.
    pub lock_handling: u64,
    /// Barrier master per-arrival processing.
    pub barrier_arrival: u64,
    /// Making or applying a diff, per word.
    pub diff_per_word: u64,
    /// Copying a page, per word.
    pub copy_per_word: u64,
    /// Serializing one word of recovery image at a barrier checkpoint
    /// (charged only when [`RecoveryPolicy::Recover`](crate::RecoveryPolicy)
    /// is active, so the default policy stays bit-identical).
    pub checkpoint_per_word: u64,
    /// Deserializing one word of recovery image during a restore.
    pub restore_per_word: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // Cache-average cost of one application access, including the
            // surrounding address arithmetic and loop control it amortizes
            // (1996 Alphas stalled long on misses).
            access: 60,
            // The call itself is the small piece (the paper measures the
            // removable ATOM procedure-call overhead at ~6.7% of total
            // overhead); the shared-segment check + bitmap update inside
            // the analysis routine dominates the per-call cost.
            proc_call: 15,
            access_check: 120,
            fault: 3_000,
            msg_latency: 25_000,
            per_byte: 13,
            send_per_byte: 4,
            vv_compare: 12,
            bitmap_block_cmp: 4,
            interval_setup: 500,
            interval_detect_extra: 700,
            lock_handling: 900,
            barrier_arrival: 600,
            diff_per_word: 3,
            copy_per_word: 2,
            // Checkpoint serialization is a straight memory copy plus
            // framing; restore additionally re-installs protection state.
            checkpoint_per_word: 2,
            restore_per_word: 3,
        }
    }
}

impl CostModel {
    /// Transit time of a message of `bytes` encoded bytes.
    #[inline]
    pub fn transit(&self, bytes: u64) -> u64 {
        self.msg_latency + bytes * self.per_byte
    }
}

/// A node's virtual clock with per-category attribution.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    now: u64,
    cats: [u64; NCATS],
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Reconstructs a clock from a checkpointed `(now, cats)` snapshot.
    pub fn from_parts(now: u64, cats: [u64; NCATS]) -> Self {
        VirtualClock { now, cats }
    }

    /// Current virtual time in cycles.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances by `cycles`, attributed to `cat`.
    #[inline]
    pub fn add(&mut self, cat: OverheadCat, cycles: u64) {
        self.now += cycles;
        self.cats[cat as usize] += cycles;
    }

    /// Synchronizes with an incoming message sent at `sent_at` whose
    /// transit time is `transit`: the clock jumps forward if the message
    /// arrives "later" than local time.  Waiting time is not attributed to
    /// any category; it emerges in the total.
    #[inline]
    pub fn recv(&mut self, sent_at: u64, transit: u64) {
        self.now = self.now.max(sent_at + transit);
    }

    /// Jumps to `t` if it is in the future (barrier releases).
    #[inline]
    pub fn advance_to(&mut self, t: u64) {
        self.now = self.now.max(t);
    }

    /// Cycles attributed to `cat` so far.
    pub fn cat(&self, cat: OverheadCat) -> u64 {
        self.cats[cat as usize]
    }

    /// All category accumulators.
    pub fn cats(&self) -> [u64; NCATS] {
        self.cats
    }

    /// Virtual seconds elapsed.
    pub fn seconds(&self) -> f64 {
        self.now as f64 / CLOCK_HZ as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_and_attributes() {
        let mut c = VirtualClock::new();
        c.add(OverheadCat::Base, 100);
        c.add(OverheadCat::ProcCall, 40);
        c.add(OverheadCat::Base, 10);
        assert_eq!(c.now(), 150);
        assert_eq!(c.cat(OverheadCat::Base), 110);
        assert_eq!(c.cat(OverheadCat::ProcCall), 40);
        assert_eq!(c.cat(OverheadCat::Bitmaps), 0);
    }

    #[test]
    fn recv_jumps_only_forward() {
        let mut c = VirtualClock::new();
        c.add(OverheadCat::Base, 1_000);
        c.recv(100, 200); // Arrives at 300 < 1000: no jump.
        assert_eq!(c.now(), 1_000);
        c.recv(2_000, 500); // Arrives at 2500: jump.
        assert_eq!(c.now(), 2_500);
        // Waiting is not attributed.
        assert_eq!(c.cat(OverheadCat::Base), 1_000);
    }

    #[test]
    fn transit_scales_with_bytes() {
        let m = CostModel::default();
        assert_eq!(m.transit(0), m.msg_latency);
        assert_eq!(m.transit(100), m.msg_latency + 100 * m.per_byte);
    }

    #[test]
    fn seconds_uses_alpha_clock() {
        let mut c = VirtualClock::new();
        c.add(OverheadCat::Base, CLOCK_HZ);
        assert!((c.seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn labels_match_figure3() {
        assert_eq!(OverheadCat::CvmMods.label(), "CVM Mods");
        assert_eq!(OverheadCat::ALL.len(), NCATS);
    }
}
