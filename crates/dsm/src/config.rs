//! Run configuration.

use cvm_net::reliable::LossConfig;
use cvm_net::NetConfig;
use cvm_page::{GAddr, Geometry};
use cvm_race::{OverlapStrategy, PairEnumeration};

use crate::replay::SyncSchedule;
use crate::simtime::CostModel;

/// Which coherence protocol backs the shared pages.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Protocol {
    /// Single-writer: one writable copy, ownership moves through the page
    /// home.  The paper's prototype uses this protocol "to minimize
    /// complexity" (§6.2).
    #[default]
    SingleWriter,
    /// Multi-writer, home-based: concurrent writers twin pages and flush
    /// diffs to the home at interval close.
    MultiWriter,
}

/// How write accesses are detected for the race detector.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WriteDetection {
    /// Both loads and stores are instrumented (the paper's implementation).
    #[default]
    Instrumentation,
    /// Write bitmaps are derived from multi-writer diffs (§6.5): store
    /// instrumentation is skipped, at the cost of missing races that
    /// overwrite a value with itself.  Requires [`Protocol::MultiWriter`].
    Diffs,
}

/// §6.1's second-run facility: gather access sites touching one address in
/// one barrier epoch (after replaying the synchronization order).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Watch {
    /// The racy address from the first run's report.
    pub addr: GAddr,
    /// The barrier epoch the race was detected in.
    pub epoch: u64,
}

/// What `Cluster::run` does when a node dies mid-run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RecoveryPolicy {
    /// Drain and return the structured failure (pre-checkpoint behavior).
    /// No checkpoints are taken, no recovery messages are exchanged, and no
    /// recovery costs are charged — runs are bit-identical to a build
    /// without the checkpoint subsystem.
    #[default]
    Abort,
    /// Checkpoint every node's recovery image at each barrier release and,
    /// on a node failure, roll the cluster back to the last epoch for which
    /// every node holds an image, restore replacement node threads from
    /// those images, and re-enter the barrier loop at that epoch.
    Recover {
        /// Recovery attempts before giving up and surfacing the failure
        /// (each attempt rolls back to the newest complete epoch).
        max_attempts: u32,
    },
}

/// Where the barrier-master role lands when the master itself dies under
/// [`RecoveryPolicy::Recover`].
///
/// Race reports are byte-identical under either policy: detection sorts
/// interval records canonically before planning, so its output does not
/// depend on which node hosts the master.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FailoverPolicy {
    /// The lowest-numbered survivor deterministically assumes the master
    /// role on the next recovery attempt (a `MasterHandoff` round
    /// announces the seat and the resume epoch before the epoch loop
    /// restarts).  The dead node is still resurrected from its checkpoint
    /// image, but as a worker — the seat stays off the node that just
    /// proved flaky.
    #[default]
    Succession,
    /// Keep the master pinned to proc 0 across recoveries (the
    /// pre-failover behavior): the resurrected node 0 resumes the role.
    Pinned,
}

/// Per-node memory budget over *retained* detection and consistency state:
/// interval records, access bitmaps, multi-writer twins, and this node's
/// live checkpoint images.
///
/// Crossing `soft_bytes` triggers proactive degradation — consistency-info
/// GC of provably cluster-known records plus checkpoint-cut eviction down
/// to the newest complete cut — and counts a `soft_gcs` on the node.
/// Crossing `hard_bytes` *after* that GC fails the operation with
/// [`DsmError::ResourceExhausted`](crate::DsmError::ResourceExhausted),
/// which unwinds through the cluster's first-error path: the run returns a
/// drained partial report rather than allocating until the process dies.
///
/// Budget checks never charge virtual time and the unlimited default takes
/// no action at all, so race reports and cost accounting stay
/// byte-identical to an unbudgeted run for any budget above the
/// application's actual peak.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemBudget {
    /// Soft limit: crossing it triggers GC/eviction, not failure.
    pub soft_bytes: u64,
    /// Hard limit: crossing it (post-GC) fails the run cleanly.
    pub hard_bytes: u64,
}

impl Default for MemBudget {
    fn default() -> Self {
        MemBudget {
            soft_bytes: u64::MAX,
            hard_bytes: u64::MAX,
        }
    }
}

impl MemBudget {
    /// Both limits set to the same value.
    pub fn exact(bytes: u64) -> Self {
        MemBudget {
            soft_bytes: bytes,
            hard_bytes: bytes,
        }
    }

    /// Whether this budget can never trip (the default).
    pub fn is_unlimited(&self) -> bool {
        self.soft_bytes == u64::MAX && self.hard_bytes == u64::MAX
    }
}

/// Race-detection configuration (off for the uninstrumented baseline runs).
#[derive(Clone, Copy, Debug)]
pub struct DetectConfig {
    /// Master switch: when off, CVM runs unmodified (no read notices, no
    /// bitmaps, no extra barrier round, no instrumentation cost).
    pub enabled: bool,
    /// Instrumented binary on an *unmodified* CVM: accesses pay the
    /// procedure-call and access-check costs, but no notices, bitmaps, or
    /// detection exist.  This is the intermediate configuration the paper
    /// measures to separate instrumentation overhead from the CVM
    /// modifications in Figure 3.
    pub instrumentation_only: bool,
    /// Report only "first" races (§6.4) instead of all races.
    pub first_races_only: bool,
    /// Page-list intersection strategy for the comparison algorithm.
    pub overlap: OverlapStrategy,
    /// Concurrent-pair enumeration strategy (the paper's simple scan, or
    /// the binary-search pruning its discussion alludes to).
    pub enumeration: PairEnumeration,
    /// Worker threads for the barrier master's planning and word-level
    /// comparison phases: `0` uses the host's available parallelism, `1`
    /// is the paper's serial master.  Race reports and detector statistics
    /// are bit-identical for every worker count (and therefore so is the
    /// simulated cost accounting); only wall-clock time changes.
    pub workers: usize,
    /// Source of write-access information.
    pub write_detection: WriteDetection,
    /// Optional §6.1 watchpoint for replay runs.
    pub watch: Option<Watch>,
    /// Pipelined detection epochs: the barrier master releases the barrier
    /// as soon as epoch `N`'s consistency information has settled and runs
    /// the comparison for epoch `N` on a dedicated stage thread while the
    /// nodes compute epoch `N+1`.  Race reports are delivered one epoch
    /// deferred (flushed at run end) with byte-identical content and
    /// ordering to the synchronous run; under
    /// [`RecoveryPolicy::Recover`] a checkpoint cut commits only after its
    /// epoch's detection has drained, so recovery images carry the same
    /// race log either way.  Off by default (the paper's synchronous
    /// master).
    pub pipelined: bool,
    /// Fault injection: panic the pipelined stage thread when it dequeues
    /// the detection job for this epoch.  Exercises the stage-thread
    /// panic-containment path (the panic must surface as a structured
    /// [`DsmError::Protocol`](crate::DsmError::Protocol) through the
    /// run-wide first-error cell, never a hang).  `None` (the default)
    /// injects nothing.
    pub stage_panic_epoch: Option<u64>,
}

impl DetectConfig {
    /// Detection fully enabled with the paper's defaults.
    pub fn on() -> Self {
        DetectConfig {
            enabled: true,
            instrumentation_only: false,
            first_races_only: false,
            overlap: OverlapStrategy::Auto,
            enumeration: PairEnumeration::Pruned,
            workers: 0,
            write_detection: WriteDetection::Instrumentation,
            watch: None,
            pipelined: false,
            stage_panic_epoch: None,
        }
    }

    /// Detection fully enabled with the pipelined epoch stage: the barrier
    /// releases before the comparison runs, and reports arrive one epoch
    /// deferred but byte-identical to [`DetectConfig::on`].
    pub fn pipelined() -> Self {
        DetectConfig {
            pipelined: true,
            ..DetectConfig::on()
        }
    }

    /// Instrumented binary, unmodified CVM (Figure 3's middle ground).
    pub fn instrumentation_only() -> Self {
        DetectConfig {
            instrumentation_only: true,
            ..DetectConfig::on()
        }
    }

    /// Detection disabled (baseline CVM).
    pub fn off() -> Self {
        DetectConfig {
            enabled: false,
            ..DetectConfig::on()
        }
    }
}

/// Full configuration of a simulated CVM cluster run.
#[derive(Clone, Debug)]
pub struct DsmConfig {
    /// Number of processes (one per simulated node).
    pub nprocs: usize,
    /// Page geometry of the shared segment.
    pub geometry: Geometry,
    /// Shared-segment capacity in bytes.
    pub shared_capacity: u64,
    /// Coherence protocol.
    pub protocol: Protocol,
    /// Race-detection settings.
    pub detect: DetectConfig,
    /// Network limits.
    pub net: NetConfig,
    /// Run over a faulty wire with the reliability protocol (CVM's UDP
    /// deployment) instead of perfect channels.  The
    /// [`FaultPlan`](cvm_net::FaultPlan) ranges from plain Bernoulli loss
    /// to scripted partitions and kills.
    pub net_loss: Option<LossConfig>,
    /// Deadline for any single blocking protocol operation (a lock
    /// acquire, a page fetch, a barrier arrival round).  When a node dies
    /// or partitions, waiting peers convert the would-be deadlock into a
    /// structured [`DsmError`](crate::DsmError) within this bound instead
    /// of hanging.  A barrier wait is bounded by the *slowest peer's
    /// computation*, not by protocol latency — the 8-process TSP run
    /// spends minutes of wall clock between barriers — so the default is
    /// very generous; fault tests shorten it (scripted kills are anyway
    /// detected in milliseconds by the reliability layer's max-retransmit
    /// threshold, well before any deadline).
    pub op_deadline: std::time::Duration,
    /// Virtual-time cost constants.
    pub costs: CostModel,
    /// Record per-process trace logs for the post-mortem baseline
    /// ([`cvm_race::trace`]): computation events with access bitmaps plus
    /// synchronization events with pairing information.  Tracing pays the
    /// same instrumentation costs as online detection but keeps growing
    /// state instead of garbage-collected state.
    pub trace: bool,
    /// Record the synchronization order of this run.
    pub record_sync: bool,
    /// Enforce a previously recorded synchronization order (§6.1 replay).
    pub replay: Option<SyncSchedule>,
    /// What to do when a node dies mid-run: abort (default) or restore
    /// from barrier-epoch checkpoints and complete the run.
    pub recovery: RecoveryPolicy,
    /// Per-node budget over retained records/bitmaps/twins/checkpoint
    /// images.  Unlimited by default (no behavior change at all).
    pub budget: MemBudget,
    /// Complete checkpoint cuts retained in the in-process store: older
    /// cuts are evicted as newer ones complete.  Recovery always steers to
    /// the newest retained complete cut, so any value ≥ 1 is safe; the
    /// default keeps one cut of slack for a node that dies mid-commit.
    pub ckpt_retain: usize,
    /// Where the barrier-master role lands when the master dies under
    /// [`RecoveryPolicy::Recover`]: deterministic succession to the
    /// lowest-numbered survivor (default), or pinned to proc 0.
    pub failover: FailoverPolicy,
    /// External cancellation: when the token fires, every service loop
    /// routes [`DsmError::Cancelled`](crate::DsmError::Cancelled) through
    /// the first-error path and the run drains with a partial report.
    /// `None` (the default) makes runs uncancellable from outside.
    pub cancel: Option<crate::fault::CancelToken>,
}

impl DsmConfig {
    /// A cluster of `nprocs` nodes with detection on and defaults
    /// everywhere else.
    pub fn new(nprocs: usize) -> Self {
        DsmConfig {
            nprocs,
            geometry: Geometry::default(),
            shared_capacity: 64 << 20,
            protocol: Protocol::default(),
            detect: DetectConfig::on(),
            net: NetConfig::default(),
            net_loss: None,
            op_deadline: std::time::Duration::from_secs(1800),
            costs: CostModel::default(),
            trace: false,
            record_sync: false,
            replay: None,
            recovery: RecoveryPolicy::default(),
            budget: MemBudget::default(),
            ckpt_retain: 2,
            failover: FailoverPolicy::default(),
            cancel: None,
        }
    }

    /// Returns `true` when barrier-epoch checkpoints are being taken (the
    /// recovery policy is [`RecoveryPolicy::Recover`]).
    pub fn checkpointing(&self) -> bool {
        matches!(self.recovery, RecoveryPolicy::Recover { .. })
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical combinations (zero processes, diff-based write
    /// detection without the multi-writer protocol).
    pub fn validate(&self) {
        assert!(self.nprocs > 0, "cluster needs at least one process");
        assert!(
            self.nprocs <= u16::MAX as usize,
            "too many processes for ProcId"
        );
        if self.detect.enabled && self.detect.write_detection == WriteDetection::Diffs {
            assert_eq!(
                self.protocol,
                Protocol::MultiWriter,
                "diff-based write detection requires the multi-writer protocol"
            );
        }
        assert!(
            self.budget.hard_bytes >= self.budget.soft_bytes,
            "hard budget below soft budget"
        );
        assert!(self.ckpt_retain >= 1, "must retain at least one cut");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        DsmConfig::new(8).validate();
        DsmConfig::new(1).validate();
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_procs_invalid() {
        DsmConfig::new(0).validate();
    }

    #[test]
    #[should_panic(expected = "multi-writer")]
    fn diff_detection_requires_multiwriter() {
        let mut c = DsmConfig::new(2);
        c.detect.write_detection = WriteDetection::Diffs;
        c.validate();
    }

    #[test]
    fn diff_detection_with_multiwriter_is_valid() {
        let mut c = DsmConfig::new(2);
        c.protocol = Protocol::MultiWriter;
        c.detect.write_detection = WriteDetection::Diffs;
        c.validate();
    }

    #[test]
    fn detect_on_off_toggles() {
        assert!(DetectConfig::on().enabled);
        assert!(!DetectConfig::off().enabled);
    }

    #[test]
    fn pipelined_defaults_off_and_composes() {
        assert!(!DetectConfig::on().pipelined);
        assert!(!DetectConfig::off().pipelined);
        let p = DetectConfig::pipelined();
        assert!(p.pipelined && p.enabled && !p.instrumentation_only);
    }

    #[test]
    fn budget_defaults_unlimited() {
        let b = MemBudget::default();
        assert!(b.is_unlimited());
        assert!(!MemBudget::exact(1 << 20).is_unlimited());
    }

    #[test]
    #[should_panic(expected = "hard budget below soft")]
    fn inverted_budget_invalid() {
        let mut c = DsmConfig::new(2);
        c.budget = MemBudget {
            soft_bytes: 100,
            hard_bytes: 50,
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one cut")]
    fn zero_retention_invalid() {
        let mut c = DsmConfig::new(2);
        c.ckpt_retain = 0;
        c.validate();
    }

    #[test]
    fn failover_defaults_to_succession_and_no_injection() {
        let c = DsmConfig::new(3);
        assert_eq!(c.failover, FailoverPolicy::Succession);
        assert_eq!(c.detect.stage_panic_epoch, None);
        assert_eq!(DetectConfig::pipelined().stage_panic_epoch, None);
    }
}
