//! The application-facing API: what a CVM program sees.

use std::sync::Arc;

use cvm_page::GAddr;

use crate::pages::{shared_access, Node};
use crate::simtime::OverheadCat;

/// A process's handle onto the DSM: shared accesses, synchronization, and
/// the cost-model hooks applications use to model their private work.
///
/// One handle exists per simulated process, owned by its application
/// thread.  All shared accesses are word-granularity, as tracked by the
/// instrumentation.
pub struct ProcHandle {
    pub(crate) node: Arc<Node>,
    pub(crate) proc: usize,
    pub(crate) nprocs: usize,
}

impl ProcHandle {
    /// This process's rank (0-based).
    pub fn proc(&self) -> usize {
        self.proc
    }

    /// Number of processes in the cluster.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Reads one shared word.
    pub fn read(&self, addr: GAddr) -> u64 {
        shared_access(&self.node, addr, false, 0, 0)
    }

    /// Writes one shared word.
    pub fn write(&self, addr: GAddr, value: u64) {
        shared_access(&self.node, addr, true, value, 0);
    }

    /// Reads one shared word, tagged with an access-site id (the modelled
    /// program counter used by §6.1 replay debugging).
    pub fn read_at(&self, addr: GAddr, site: u32) -> u64 {
        shared_access(&self.node, addr, false, 0, site)
    }

    /// Writes one shared word, tagged with an access-site id.
    pub fn write_at(&self, addr: GAddr, value: u64, site: u32) {
        shared_access(&self.node, addr, true, value, site);
    }

    /// Reads a shared `f64`.
    pub fn read_f64(&self, addr: GAddr) -> f64 {
        f64::from_bits(self.read(addr))
    }

    /// Writes a shared `f64`.
    pub fn write_f64(&self, addr: GAddr, value: f64) {
        self.write(addr, value.to_bits());
    }

    /// Acquires a lock (release-consistent acquire access).
    pub fn lock(&self, lock: u32) {
        crate::locks::app_lock(&self.node, lock);
    }

    /// Releases a lock (release-consistent release access).
    pub fn unlock(&self, lock: u32) {
        crate::locks::app_unlock(&self.node, lock);
    }

    /// Global barrier; the race detector runs at the master (paper §4).
    pub fn barrier(&self) {
        crate::barrier::app_barrier(&self.node, false);
    }

    /// Global consolidation for lock-only programs (§6.3): runs the same
    /// gather/detect/release machinery outside any program barrier.
    pub fn consolidate(&self) {
        crate::barrier::app_barrier(&self.node, true);
    }

    /// Models `cycles` of private computation (loop bodies, arithmetic).
    pub fn compute(&self, cycles: u64) {
        let mut st = self.node.state.lock();
        st.clock.add(OverheadCat::Base, cycles);
    }

    /// Models `calls` instrumented accesses that turn out to be private
    /// data — the majority of dynamic analysis-routine calls (Table 3).
    ///
    /// Each costs one base access always, plus the procedure call and the
    /// access check when detection is on.
    pub fn private_traffic(&self, calls: u64) {
        let mut st = self.node.state.lock();
        let c = st.cfg.costs;
        st.clock.add(OverheadCat::Base, calls * c.access);
        if st.cfg.detect.enabled {
            st.clock.add(OverheadCat::ProcCall, calls * c.proc_call);
            st.clock
                .add(OverheadCat::AccessCheck, calls * c.access_check);
            st.analysis.count_private(calls);
        }
    }

    /// Number of races reported to this node so far (workers learn about
    /// races from barrier release messages).
    pub fn races_so_far(&self) -> usize {
        self.node.state.lock().race_log.len()
    }

    /// This node's current virtual time in cycles.
    pub fn virtual_now(&self) -> u64 {
        self.node.state.lock().clock.now()
    }

    /// First barrier epoch this process must actually execute: `0` on a
    /// fresh start, the restored epoch cursor after a checkpoint recovery.
    pub fn resume_epoch(&self) -> u64 {
        self.node.state.lock().resume_epoch
    }

    /// Epoch-entry cursor for recovery-aware programs.
    ///
    /// Structure the program as a sequence of [`EpochStepper::step`] calls,
    /// one per barrier phase; on a node restored from a checkpoint the
    /// already-completed phases are skipped (their effects live in the
    /// restored pages), and execution rejoins the cluster at the barrier
    /// loop.  On a fresh run every phase executes and each `step` costs
    /// exactly one `barrier()` — nothing else.
    pub fn epochs(&self) -> EpochStepper<'_> {
        EpochStepper {
            h: self,
            resume: self.resume_epoch(),
            next: 0,
        }
    }
}

/// Cursor pairing each barrier phase with its global epoch number so a
/// restored process can skip phases already covered by its checkpoint.
/// Created by [`ProcHandle::epochs`].
pub struct EpochStepper<'a> {
    h: &'a ProcHandle,
    resume: u64,
    next: u64,
}

impl EpochStepper<'_> {
    /// Runs `work` then `barrier()` — unless this phase completed before
    /// the checkpoint this node was restored from, in which case both are
    /// skipped (the restored state already reflects them, epoch cursor
    /// included).
    pub fn step(&mut self, work: impl FnOnce()) {
        if self.next >= self.resume {
            work();
            self.h.barrier();
        }
        self.next += 1;
    }

    /// The epoch the next [`step`](Self::step) call belongs to.
    pub fn next_epoch(&self) -> u64 {
        self.next
    }

    /// `true` while the cursor is still skipping checkpointed phases.
    pub fn skipping(&self) -> bool {
        self.next < self.resume
    }
}
