//! The application-facing API: what a CVM program sees.

use std::sync::Arc;

use cvm_page::GAddr;

use crate::pages::{shared_access, Node};
use crate::simtime::OverheadCat;

/// A process's handle onto the DSM: shared accesses, synchronization, and
/// the cost-model hooks applications use to model their private work.
///
/// One handle exists per simulated process, owned by its application
/// thread.  All shared accesses are word-granularity, as tracked by the
/// instrumentation.
pub struct ProcHandle {
    pub(crate) node: Arc<Node>,
    pub(crate) proc: usize,
    pub(crate) nprocs: usize,
}

impl ProcHandle {
    /// This process's rank (0-based).
    pub fn proc(&self) -> usize {
        self.proc
    }

    /// Number of processes in the cluster.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Reads one shared word.
    pub fn read(&self, addr: GAddr) -> u64 {
        shared_access(&self.node, addr, false, 0, 0)
    }

    /// Writes one shared word.
    pub fn write(&self, addr: GAddr, value: u64) {
        shared_access(&self.node, addr, true, value, 0);
    }

    /// Reads one shared word, tagged with an access-site id (the modelled
    /// program counter used by §6.1 replay debugging).
    pub fn read_at(&self, addr: GAddr, site: u32) -> u64 {
        shared_access(&self.node, addr, false, 0, site)
    }

    /// Writes one shared word, tagged with an access-site id.
    pub fn write_at(&self, addr: GAddr, value: u64, site: u32) {
        shared_access(&self.node, addr, true, value, site);
    }

    /// Reads a shared `f64`.
    pub fn read_f64(&self, addr: GAddr) -> f64 {
        f64::from_bits(self.read(addr))
    }

    /// Writes a shared `f64`.
    pub fn write_f64(&self, addr: GAddr, value: f64) {
        self.write(addr, value.to_bits());
    }

    /// Acquires a lock (release-consistent acquire access).
    pub fn lock(&self, lock: u32) {
        crate::locks::app_lock(&self.node, lock);
    }

    /// Releases a lock (release-consistent release access).
    pub fn unlock(&self, lock: u32) {
        crate::locks::app_unlock(&self.node, lock);
    }

    /// Global barrier; the race detector runs at the master (paper §4).
    pub fn barrier(&self) {
        crate::barrier::app_barrier(&self.node, false);
    }

    /// Global consolidation for lock-only programs (§6.3): runs the same
    /// gather/detect/release machinery outside any program barrier.
    pub fn consolidate(&self) {
        crate::barrier::app_barrier(&self.node, true);
    }

    /// Models `cycles` of private computation (loop bodies, arithmetic).
    pub fn compute(&self, cycles: u64) {
        let mut st = self.node.state.lock();
        st.clock.add(OverheadCat::Base, cycles);
    }

    /// Models `calls` instrumented accesses that turn out to be private
    /// data — the majority of dynamic analysis-routine calls (Table 3).
    ///
    /// Each costs one base access always, plus the procedure call and the
    /// access check when detection is on.
    pub fn private_traffic(&self, calls: u64) {
        let mut st = self.node.state.lock();
        let c = st.cfg.costs;
        st.clock.add(OverheadCat::Base, calls * c.access);
        if st.cfg.detect.enabled {
            st.clock.add(OverheadCat::ProcCall, calls * c.proc_call);
            st.clock
                .add(OverheadCat::AccessCheck, calls * c.access_check);
            st.analysis.count_private(calls);
        }
    }

    /// Number of races reported to this node so far (workers learn about
    /// races from barrier release messages).
    pub fn races_so_far(&self) -> usize {
        self.node.state.lock().race_log.len()
    }

    /// This node's current virtual time in cycles.
    pub fn virtual_now(&self) -> u64 {
        self.node.state.lock().clock.now()
    }
}
