//! Synchronization-order record & replay (paper §6.1).
//!
//! Identifying the *instructions* of a race requires program-counter
//! information the first run does not keep.  The paper's remedy: record the
//! synchronization order of run 1, enforce the same order in run 2, and
//! gather access sites only for the conflicting address in the racy epoch.
//! Lock-grant order is the only source of nondeterminism in these programs
//! (barriers are inherently ordered), so the schedule is simply, per lock,
//! the sequence of processes the manager forwarded it to.

use std::collections::HashMap;

use cvm_vclock::ProcId;

/// A recorded synchronization order: per lock, the grant sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyncSchedule {
    grants: HashMap<u32, Vec<ProcId>>,
}

impl SyncSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        SyncSchedule::default()
    }

    /// Records that `lock` was granted to `proc` (recording run).
    pub fn record(&mut self, lock: u32, proc: ProcId) {
        self.grants.entry(lock).or_default().push(proc);
    }

    /// Grant sequence of one lock.
    pub fn sequence(&self, lock: u32) -> &[ProcId] {
        self.grants.get(&lock).map_or(&[], Vec::as_slice)
    }

    /// Total recorded grants.
    pub fn len(&self) -> usize {
        self.grants.values().map(Vec::len).sum()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges per-manager partial schedules into one (each lock is managed
    /// by exactly one node, so the maps are disjoint).
    ///
    /// # Panics
    ///
    /// Panics if both schedules recorded the same lock.
    pub fn merge(&mut self, other: SyncSchedule) {
        for (lock, seq) in other.grants {
            let prev = self.grants.insert(lock, seq);
            assert!(prev.is_none(), "lock {lock} recorded by two managers");
        }
    }

    /// The recorded grant sequences as `(lock, grants)` pairs, sorted by
    /// lock — a canonical form for checkpoint serialization.
    pub fn entries(&self) -> Vec<(u32, Vec<ProcId>)> {
        let mut out: Vec<_> = self
            .grants
            .iter()
            .map(|(l, seq)| (*l, seq.clone()))
            .collect();
        out.sort_unstable_by_key(|(l, _)| *l);
        out
    }

    /// Rebuilds a schedule from [`entries`](Self::entries) output.
    pub fn from_entries(entries: Vec<(u32, Vec<ProcId>)>) -> Self {
        SyncSchedule {
            grants: entries.into_iter().collect(),
        }
    }
}

/// Replay cursor over a [`SyncSchedule`], used by lock managers to hold
/// back requests that arrive ahead of their recorded turn.
#[derive(Clone, Debug)]
pub struct ReplayCursor {
    schedule: SyncSchedule,
    next: HashMap<u32, usize>,
}

impl ReplayCursor {
    /// Creates a cursor at the beginning of `schedule`.
    pub fn new(schedule: SyncSchedule) -> Self {
        ReplayCursor {
            schedule,
            next: HashMap::new(),
        }
    }

    /// The process whose request for `lock` must be forwarded next, or
    /// `None` once the recorded sequence is exhausted (FIFO afterwards).
    pub fn expected(&self, lock: u32) -> Option<ProcId> {
        let i = self.next.get(&lock).copied().unwrap_or(0);
        self.schedule.sequence(lock).get(i).copied()
    }

    /// Advances past one grant of `lock`.
    pub fn advance(&mut self, lock: u32) {
        *self.next.entry(lock).or_insert(0) += 1;
    }

    /// The cursor's positions as sorted `(lock, grants consumed)` pairs —
    /// a canonical form for checkpoint serialization.
    pub fn positions(&self) -> Vec<(u32, u32)> {
        let mut out: Vec<_> = self
            .next
            .iter()
            .filter(|(_, n)| **n > 0)
            .map(|(l, n)| (*l, *n as u32))
            .collect();
        out.sort_unstable_by_key(|(l, _)| *l);
        out
    }

    /// Rewinds/forwards the cursor to previously saved
    /// [`positions`](Self::positions).
    pub fn restore_positions(&mut self, positions: &[(u32, u32)]) {
        self.next = positions.iter().map(|&(l, n)| (l, n as usize)).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_sequence() {
        let mut s = SyncSchedule::new();
        s.record(1, ProcId(0));
        s.record(1, ProcId(2));
        s.record(3, ProcId(1));
        assert_eq!(s.sequence(1), &[ProcId(0), ProcId(2)]);
        assert_eq!(s.sequence(3), &[ProcId(1)]);
        assert_eq!(s.sequence(9), &[]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn merge_disjoint_managers() {
        let mut a = SyncSchedule::new();
        a.record(0, ProcId(1));
        let mut b = SyncSchedule::new();
        b.record(1, ProcId(0));
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "two managers")]
    fn merge_conflict_panics() {
        let mut a = SyncSchedule::new();
        a.record(0, ProcId(1));
        let mut b = SyncSchedule::new();
        b.record(0, ProcId(0));
        a.merge(b);
    }

    #[test]
    fn cursor_walks_sequence_then_exhausts() {
        let mut s = SyncSchedule::new();
        s.record(7, ProcId(1));
        s.record(7, ProcId(0));
        let mut c = ReplayCursor::new(s);
        assert_eq!(c.expected(7), Some(ProcId(1)));
        c.advance(7);
        assert_eq!(c.expected(7), Some(ProcId(0)));
        c.advance(7);
        assert_eq!(c.expected(7), None);
        // Unrecorded locks have no constraint.
        assert_eq!(c.expected(8), None);
    }
}
